"""Packaging for the TAGLETS reproduction.

Kept as a classic ``setup.py`` so ``pip install -e .`` works on offline
environments without the ``wheel`` package (legacy ``setup.py develop``
path).  The only runtime dependency is NumPy: ``repro`` (and in particular
the ``repro.nn`` training engine) must import with no extras installed,
which ``tests/test_packaging.py`` enforces.
"""

from setuptools import find_packages, setup

setup(
    name="repro-taglets",
    version="0.2.0",
    description=("Reproduction of TAGLETS: a system for automatic "
                 "semi-supervised learning with auxiliary data (MLSys 2022)"),
    author="paper-repo-growth",
    license="Apache-2.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.20"],
    classifiers=[
        "Programming Language :: Python :: 3",
        "License :: OSI Approved :: Apache Software License",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
