"""Setuptools shim so ``pip install -e .`` works on offline environments
without the ``wheel`` package (legacy ``setup.py develop`` path).  All
project metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
