"""Pytest fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  They all
draw from the same experimental grid (method × dataset × shots × split ×
backbone × seed), so a session-scoped :class:`~_bench_lib.RecordCache`
memoizes every cell: a figure benchmark that needs the same TAGLETS runs as a
table benchmark reuses them instead of re-training.

Grid size is controlled by environment variables so the default run stays
laptop-friendly while a full run reproduces the paper's complete grid:

* ``REPRO_BENCH_SEEDS``     — comma-separated training seeds  (default ``0``)
* ``REPRO_BENCH_SPLITS``    — comma-separated split seeds     (default ``0``)
* ``REPRO_BENCH_BACKBONES`` — comma-separated backbones       (default ``resnet50``)
* ``REPRO_BENCH_FULL=1``    — shorthand for seeds 0,1,2 / splits 0,1,2 /
  backbones resnet50,bit (the paper's full grid)
* ``REPRO_BENCH_SCALE``     — ``small`` (default) or ``full`` workspace

Each benchmark prints the regenerated rows/series and also writes them to
``benchmarks/results/<name>.txt`` (compare against the paper via EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import sys

import pytest

# Resolve ``_bench_lib`` regardless of pytest's rootdir: collecting the whole
# repo (rootdir ``/.../repo``) does not put ``benchmarks/`` on sys.path, so
# insert it explicitly before the import.
_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
if _BENCH_DIR not in sys.path:
    sys.path.insert(0, _BENCH_DIR)

from _bench_lib import BenchGrid, RecordCache
from repro.evaluation import ExperimentRunner
from repro.workspace import build_workspace


def pytest_collection_modifyitems(items):
    """Mark everything under ``benchmarks/`` with the ``bench`` marker."""
    for item in items:
        if _BENCH_DIR in str(getattr(item, "fspath", "")):
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def bench_grid() -> BenchGrid:
    return BenchGrid()


@pytest.fixture(scope="session")
def bench_workspace():
    """The benchmark workspace (graph + world + SCADS + backbones + datasets)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    return build_workspace(scale=scale, seed=0)


@pytest.fixture(scope="session")
def record_cache(bench_workspace) -> RecordCache:
    return RecordCache(ExperimentRunner(bench_workspace))
