"""Shared helpers for the benchmark harness (grid, cache, reporting).

Every benchmark regenerates one of the paper's tables or figures.  They all
draw from the same experimental grid (method × dataset × shots × split ×
backbone × seed), so a session-scoped :class:`RecordCache` memoizes every
cell: a figure benchmark that needs the same TAGLETS runs as a table
benchmark reuses them instead of re-training.

Grid size is controlled by environment variables so the default run stays
laptop-friendly while a full run reproduces the paper's complete grid:

* ``REPRO_BENCH_SEEDS``     — comma-separated training seeds  (default ``0``)
* ``REPRO_BENCH_SPLITS``    — comma-separated split seeds     (default ``0``)
* ``REPRO_BENCH_BACKBONES`` — comma-separated backbones       (default ``resnet50``)
* ``REPRO_BENCH_FULL=1``    — shorthand for seeds 0,1,2 / splits 0,1,2 /
  backbones resnet50,bit (the paper's full grid)

Each benchmark prints the regenerated rows/series and also writes them to
``benchmarks/results/<name>.txt`` so they can be compared against the paper
after the run (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.evaluation import ExperimentResult, ExperimentRunner
from repro.workspace import build_workspace

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def _env_list(name: str, default: str) -> List[str]:
    return [item.strip() for item in os.environ.get(name, default).split(",")
            if item.strip()]


def _env_int_list(name: str, default: str) -> List[int]:
    return [int(item) for item in _env_list(name, default)]


class BenchGrid:
    """The experimental grid the benchmarks sweep, derived from the environment."""

    def __init__(self) -> None:
        full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
        self.seeds = _env_int_list("REPRO_BENCH_SEEDS", "0,1,2" if full else "0")
        self.split_seeds = _env_int_list("REPRO_BENCH_SPLITS",
                                         "0,1,2" if full else "0")
        self.backbones = _env_list("REPRO_BENCH_BACKBONES",
                                   "resnet50,bit" if full else "resnet50")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"BenchGrid(seeds={self.seeds}, splits={self.split_seeds}, "
                f"backbones={self.backbones})")


class RecordCache:
    """Memoizes experiment cells so benchmarks can share runs."""

    def __init__(self, runner: ExperimentRunner):
        self.runner = runner
        self._cache: Dict[Tuple, ExperimentResult] = {}

    def get(self, method: str, dataset: str, shots: int, split_seed: int,
            backbone: str, seed: int) -> ExperimentResult:
        key = (method, dataset, shots, split_seed, backbone, seed)
        if key not in self._cache:
            self._cache[key] = self.runner.evaluate(method, dataset, shots,
                                                    split_seed, backbone, seed)
        return self._cache[key]

    def collect(self, methods: Sequence[str], datasets: Sequence[str],
                shots_list: Sequence[int], grid: BenchGrid,
                split_seeds: Optional[Sequence[int]] = None
                ) -> List[ExperimentResult]:
        """Gather (running if needed) all records of a sub-grid."""
        records: List[ExperimentResult] = []
        for dataset in datasets:
            for shots in shots_list:
                for split_seed in (split_seeds or grid.split_seeds):
                    for backbone in grid.backbones:
                        for method in methods:
                            for seed in grid.seeds:
                                records.append(self.get(method, dataset, shots,
                                                        split_seed, backbone, seed))
        return records


def write_report(name: str, text: str) -> str:
    """Print a regenerated table/series and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return path


def update_bench_record(path: str, section: str, payload: dict) -> None:
    """Merge one section into a ``BENCH_*.json`` trajectory file.

    Shared by the engine and serving throughput benchmarks: preserves the
    other sections, refreshes the timestamp, and stamps host metadata once.
    """
    import json
    import platform
    from datetime import datetime, timezone

    import numpy as np

    record = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    record["created"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    record.setdefault("host", {
        "cpus": os.cpu_count(),
        "numpy": np.__version__,
        "python": platform.python_version(),
    })
    record[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=False)
        handle.write("\n")


