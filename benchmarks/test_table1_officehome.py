"""Table 1 — OfficeHome-Product and OfficeHome-Clipart, split 0.

Regenerates the paper's Table 1: accuracy of the baselines, TAGLETS, and
TAGLETS with pruned SCADS for 1/5/20 shots on the two OfficeHome variants.
The paper's qualitative findings this bench should reproduce:

* TAGLETS has the best accuracy at 1 and 5 shots for both datasets,
* at 20 shots the methods are roughly tied,
* pruning SCADS lowers TAGLETS' accuracy but it stays competitive,
* OfficeHome-Clipart (strong domain shift) is harder than Product.
"""

import pytest

from _bench_lib import write_report
from repro.evaluation import format_results_table
from repro.evaluation.runner import TABLE_METHODS, TABLE_PRUNED_METHODS

DATASETS = ("officehome_product", "officehome_clipart")
SHOTS = (1, 5, 20)
METHODS = tuple(TABLE_METHODS) + tuple(TABLE_PRUNED_METHODS)


@pytest.mark.parametrize("dataset", DATASETS)
def test_table1(benchmark, dataset, record_cache, bench_grid):
    def regenerate():
        return record_cache.collect(METHODS, [dataset], SHOTS, bench_grid,
                                    split_seeds=[0])

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    table = format_results_table(records, dataset=dataset, shots_list=list(SHOTS),
                                 methods=list(METHODS),
                                 backbones=bench_grid.backbones, split_seed=0,
                                 title=f"Table 1 — {dataset} (split 0)")
    write_report(f"table1_{dataset}", table)

    taglets = [r for r in records if r.method == "taglets" and r.shots == 1]
    finetune = [r for r in records if r.method == "finetune" and r.shots == 1]
    assert taglets and finetune
    # Qualitative shape check: TAGLETS wins the 1-shot setting on average.
    mean = lambda rs: sum(r.accuracy for r in rs) / len(rs)
    assert mean(taglets) > mean(finetune)
