"""Table 2 — Grocery Store and Flickr Material Database, split 0.

Regenerates the paper's Table 2: Grocery Store (1/5 shots — the dataset is
too small for 20 shots, as in the paper) and FMD (1/5/20 shots).  Expected
shape: TAGLETS best at 1 and 5 shots; roughly tied with the strongest
baseline at 20 shots on FMD; pruning degrades TAGLETS but it remains
competitive with the baselines.
"""

import pytest

from _bench_lib import write_report
from repro.evaluation import format_results_table
from repro.evaluation.runner import TABLE_METHODS, TABLE_PRUNED_METHODS

METHODS = tuple(TABLE_METHODS) + tuple(TABLE_PRUNED_METHODS)
CASES = (("grocery_store", (1, 5)), ("fmd", (1, 5, 20)))


@pytest.mark.parametrize("dataset,shots_list", CASES,
                         ids=[case[0] for case in CASES])
def test_table2(benchmark, dataset, shots_list, record_cache, bench_grid):
    def regenerate():
        return record_cache.collect(METHODS, [dataset], shots_list, bench_grid,
                                    split_seeds=[0])

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    table = format_results_table(records, dataset=dataset,
                                 shots_list=list(shots_list),
                                 methods=list(METHODS),
                                 backbones=bench_grid.backbones, split_seed=0,
                                 title=f"Table 2 — {dataset} (split 0)")
    write_report(f"table2_{dataset}", table)

    mean = lambda rs: sum(r.accuracy for r in rs) / len(rs)
    one_shot_taglets = [r for r in records if r.method == "taglets" and r.shots == 1]
    one_shot_finetune = [r for r in records if r.method == "finetune" and r.shots == 1]
    assert mean(one_shot_taglets) > mean(one_shot_finetune)
