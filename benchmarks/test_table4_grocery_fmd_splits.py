"""Table 4 — Grocery Store and FMD on splits 1 and 2.

The appendix repeats Table 2 on two additional splits.  By default this bench
runs split 1 only (``REPRO_BENCH_TABLE4_SPLITS=1,2`` or ``REPRO_BENCH_FULL=1``
for both).  Grocery Store reuses its predetermined test set across splits, as
in the real dataset.
"""

import os

import pytest

from _bench_lib import write_report
from repro.evaluation import format_results_table
from repro.evaluation.runner import TABLE_METHODS, TABLE_PRUNED_METHODS

METHODS = tuple(TABLE_METHODS) + tuple(TABLE_PRUNED_METHODS)
CASES = (("grocery_store", (1, 5)), ("fmd", (1, 5, 20)))


def _extra_splits():
    if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
        default = "1,2"
    else:
        default = "1"
    raw = os.environ.get("REPRO_BENCH_TABLE4_SPLITS", default)
    return [int(s) for s in raw.split(",") if s.strip()]


@pytest.mark.parametrize("dataset,shots_list", CASES,
                         ids=[case[0] for case in CASES])
def test_table4(benchmark, dataset, shots_list, record_cache, bench_grid):
    splits = _extra_splits()

    def regenerate():
        return record_cache.collect(METHODS, [dataset], shots_list, bench_grid,
                                    split_seeds=splits)

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    blocks = []
    for split_seed in splits:
        blocks.append(format_results_table(
            records, dataset=dataset, shots_list=list(shots_list),
            methods=list(METHODS), backbones=bench_grid.backbones,
            split_seed=split_seed,
            title=f"Table 4 — {dataset} (split {split_seed})"))
    write_report(f"table4_{dataset}", "\n\n".join(blocks))

    mean = lambda rs: sum(r.accuracy for r in rs) / len(rs)
    taglets = [r for r in records if r.method == "taglets" and r.shots == 1]
    finetune = [r for r in records if r.method == "finetune" and r.shots == 1]
    assert mean(taglets) > mean(finetune)
