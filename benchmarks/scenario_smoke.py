"""Scenario-matrix smoke: sweep the representative grid subset, assert gates.

This is the CI ``scenario-smoke`` job (NOT advisory — every check is an
exact floor):

1. build the pinned scenario workspace,
2. run the ``SMOKE_SCENARIOS`` subset (one cell per regime family) with both
   the TAGLETS pipeline and the supervised fine-tuning baseline,
3. assert every calibrated gate over those rows — per-scenario accuracy
   floors plus the taglets-beats-supervised margin floors in the scarce-label
   regimes,
4. assert every scenario-grid training loop replayed with ZERO eager
   fallbacks,
5. cross-check the committed ``SCENARIOS.json`` scoreboard: it must cover
   every grid scenario, its floors must match the in-code gate registry, and
   every recorded gate outcome must be a pass.

``--full`` sweeps the whole grid instead of the subset; ``--write``
additionally regenerates ``SCENARIOS.json`` from the full sweep (use it when
adding scenarios or recalibrating floors).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.scenarios import (SCENARIO_GRID, SMOKE_SCENARIOS, GateFailure,
                             ScenarioRunner, default_registry,
                             format_scoreboard, load_scoreboard,
                             scenario_workspace, write_scoreboard)

SCOREBOARD_PATH = os.path.join(os.path.dirname(__file__), "..",
                               "SCENARIOS.json")


def check_scoreboard_consistency(registry) -> None:
    """The committed scoreboard must mirror the in-code grid and gates."""
    scoreboard = load_scoreboard(SCOREBOARD_PATH)
    recorded = scoreboard["scenarios"]
    missing = sorted(set(SCENARIO_GRID) - set(recorded))
    if missing:
        raise SystemExit(f"SCENARIOS.json is missing grid scenarios: {missing}")
    for name, entry in recorded.items():
        recorded_floors = {(g["metric"], g["method"], g["floor"])
                           for g in entry["gates"]}
        registry_floors = {(g.metric, g.method, g.floor)
                           for g in registry.gates_for(name)}
        if recorded_floors != registry_floors:
            raise SystemExit(
                f"SCENARIOS.json floors for {name!r} diverge from the gate "
                f"registry: recorded {sorted(recorded_floors)}, registry "
                f"{sorted(registry_floors)} — rerun with --full --write")
        failed = [g for g in entry["gates"] if not g["passed"]]
        if failed:
            raise SystemExit(
                f"SCENARIOS.json records breached gates for {name!r}: {failed}")
    print(f"SCENARIOS.json consistent: {len(recorded)} scenarios, "
          f"{sum(len(e['gates']) for e in recorded.values())} recorded gates, "
          f"all passing")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="sweep the whole grid, not just the smoke subset")
    parser.add_argument("--write", action="store_true",
                        help="regenerate SCENARIOS.json (implies --full)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="training seeds per cell (default 1)")
    args = parser.parse_args()
    if args.write:
        args.full = True

    names = tuple(SCENARIO_GRID) if args.full else SMOKE_SCENARIOS
    specs = [SCENARIO_GRID[name] for name in names]
    print(f"Scenario {'full grid' if args.full else 'smoke subset'}: "
          f"{len(specs)} scenarios x (taglets + finetune) x "
          f"{args.seeds} seed(s)")

    started = time.perf_counter()
    workspace = scenario_workspace()
    print(f"workspace built in {time.perf_counter() - started:.1f}s")

    runner = ScenarioRunner(workspace)
    rows = runner.run_grid(specs, methods=("taglets", "finetune"),
                           seeds=tuple(range(args.seeds)))
    registry = default_registry()
    try:
        reports = registry.assert_all(rows, require_all=args.full)
    except GateFailure as failure:
        print(format_scoreboard(rows))
        print(f"\nFAIL: {failure}")
        return 1

    print(format_scoreboard(rows, reports))
    print(f"\nswept {len(rows)} rows in {time.perf_counter() - started:.1f}s")

    # Zero-fallback invariant: every scenario training loop is a static
    # graph; an eager fallback means the replay executor regressed.
    fallback_rows = [row for row in rows if row.fallbacks]
    if fallback_rows:
        print(f"FAIL: replay fallbacks in scenario loops: "
              f"{[(r.scenario, r.fallbacks) for r in fallback_rows]}")
        return 1
    print("zero replay fallbacks across every scenario loop")

    if args.write:
        write_scoreboard(SCOREBOARD_PATH, rows, reports)
        print(f"wrote {os.path.abspath(SCOREBOARD_PATH)}")

    check_scoreboard_consistency(registry)
    print("\nscenario smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
