"""Figures 12 and 13 — ensemble / end-model gain on splits 1 and 2.

The appendix repeats the ensembling analysis (Figures 6/9) on the other two
splits.  Defaults mirror the Figure 10/11 bench; widen with
``REPRO_BENCH_FIG12_SPLITS`` / ``REPRO_BENCH_FIG12_DATASETS`` or
``REPRO_BENCH_FULL=1``.
"""

import os

import pytest

from _bench_lib import write_report
from repro.evaluation import ensemble_improvement_series, format_series

METHODS = ("taglets", "taglets_prune0", "taglets_prune1")
SHOTS_BY_DATASET = {"officehome_product": (1, 5, 20), "officehome_clipart": (1, 5, 20),
                    "fmd": (1, 5, 20), "grocery_store": (1, 5)}


def _splits():
    default = "1,2" if os.environ.get("REPRO_BENCH_FULL", "0") == "1" else "1"
    return [int(s) for s in os.environ.get("REPRO_BENCH_FIG12_SPLITS",
                                           default).split(",") if s.strip()]


def _datasets():
    default = ("officehome_product,officehome_clipart,fmd,grocery_store"
               if os.environ.get("REPRO_BENCH_FULL", "0") == "1"
               else "officehome_product,fmd")
    return [d.strip() for d in os.environ.get("REPRO_BENCH_FIG12_DATASETS",
                                              default).split(",") if d.strip()]


def test_figure12_13(benchmark, record_cache, bench_grid):
    splits = _splits()
    datasets = _datasets()
    backbone = bench_grid.backbones[0]

    def regenerate():
        records = []
        for dataset in datasets:
            records.extend(record_cache.collect(
                METHODS, [dataset], SHOTS_BY_DATASET[dataset], bench_grid,
                split_seeds=splits))
        return records

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    blocks = []
    positive_cells = 0
    total_cells = 0
    for split_seed in splits:
        for dataset in datasets:
            gains = ensemble_improvement_series(records, dataset=dataset,
                                                backbone=backbone,
                                                split_seed=split_seed)
            flattened = {f"{shots}-shot / {prune}": cell
                         for (shots, prune), cell in sorted(gains.items())}
            blocks.append(format_series(
                flattened, title=f"Figures 12/13 — ensemble / end-model gain "
                                 f"({dataset}, split {split_seed})"))
            for cell in gains.values():
                total_cells += 1
                if cell["ensemble_gain"].mean > 0:
                    positive_cells += 1
    write_report("figure12_13_ensemble_gain_splits", "\n\n".join(blocks))
    # Shape check: the ensemble improves over the average module in the vast
    # majority of cells.
    assert positive_cells >= int(0.75 * total_cells)
