"""Figure 6 — ensemble and end-model gain over the average module accuracy
(OfficeHome-Product).

The paper shows that, for every shot count and pruning level, ensembling the
taglets improves over the average accuracy of the individual modules (by at
least ~7 points in the paper), and that the distilled end model stays close
to the ensemble.
"""

import pytest

from _bench_lib import write_report
from repro.evaluation import ensemble_improvement_series, format_series

DATASET = "officehome_product"
SHOTS = (1, 5, 20)
METHODS = ("taglets", "taglets_prune0", "taglets_prune1")


def test_figure6(benchmark, record_cache, bench_grid):
    backbone = bench_grid.backbones[0]

    def regenerate():
        return record_cache.collect(METHODS, [DATASET], SHOTS, bench_grid,
                                    split_seeds=[0])

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    gains = ensemble_improvement_series(records, dataset=DATASET, backbone=backbone,
                                        split_seed=0)
    flattened = {f"{shots}-shot / {prune}": cell
                 for (shots, prune), cell in sorted(gains.items())}
    write_report("figure6_ensemble_gain_officehome_product",
                 format_series(flattened,
                               title=f"Figure 6 — ensemble / end-model gain over "
                                     f"average module accuracy ({DATASET})"))

    # Shape check: the ensemble improves over the average module in every cell.
    for cell in gains.values():
        assert cell["ensemble_gain"].mean > 0
