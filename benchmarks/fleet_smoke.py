"""Fleet chaos smoke for CI: kill a serving worker mid-traffic, lose nothing.

Stands up a 2-process serving fleet (worker processes behind the routing
front end), fires concurrent client traffic through the router, SIGKILLs
one replica while requests are in flight, and fails if:

* any client request errors — replica death must be absorbed by the
  router's retry/failover path (plus the parent-held listening socket:
  connections parked in the backlog are answered by the replacement);
* any served probability row differs by one bit from offline inference at
  the serving quantum — routing, retries, and failovers must be invisible
  in the output;
* the killed replica does not respawn healthy on its original port — the
  single replacement-respawn path must restore full capacity.

All three checks are exact everywhere (no perf ratios involved); the
fleet *throughput* story lives in ``test_serve_throughput.py``.  Run with
``PYTHONPATH=src python benchmarks/fleet_smoke.py``.
"""

from __future__ import annotations

import os
import sys
import tempfile
import threading
import time

import numpy as np

from repro.backbones.backbone import BackboneSpec, ClassificationModel, Encoder
from repro.distill import EndModel
from repro.serve import (BatchingConfig, FleetConfig, RouterConfig,
                         ServingFleet, export_end_model, load_servable,
                         replicated_specs)

SPEC = BackboneSpec(name="resnet50", input_dim=64, hidden_dims=(128, 128),
                    feature_dim=64, pretraining="imagenet1k-analog")
NUM_CLASSES = 10
NUM_REQUESTS = 400
NUM_CLIENTS = 4
QUANTUM = 32
KILL_AFTER = 40     # requests served before the SIGKILL lands


def main() -> int:
    cpus = len(os.sched_getaffinity(0))
    print(f"fleet smoke: {cpus} CPU(s) available to this process")

    with tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-") as tmp:
        artifact = os.path.join(tmp, "artifact")
        encoder = Encoder(SPEC, rng=np.random.default_rng(0))
        model = ClassificationModel(encoder, NUM_CLASSES,
                                    rng=np.random.default_rng(1))
        export_end_model(EndModel(model), artifact,
                         class_names=[f"c{i}" for i in range(NUM_CLASSES)])
        inputs = np.random.default_rng(2).normal(
            size=(NUM_REQUESTS, SPEC.input_dim))
        offline = load_servable(artifact).predict_proba(inputs,
                                                        batch_size=QUANTUM)

        config = FleetConfig(
            batching=BatchingConfig(max_batch_size=QUANTUM, max_latency_ms=2,
                                    cache_size=0),
            router=RouterConfig(health_interval=0.1))
        specs = replicated_specs([("smoke", artifact)], 2)
        print("spawning a 2-process fleet...")
        with ServingFleet(specs, config) as fleet:
            victim = fleet.replica_ids()[0]
            port_before = dict(fleet.addresses())[victim][1]
            errors: list = []
            mismatches: list = []
            served = threading.Semaphore(0)

            def client(indices):
                for i in indices:
                    try:
                        response = fleet.router.predict(
                            inputs[i], model="smoke",
                            return_probabilities=True)
                        row = np.asarray(response["probabilities"][0])
                        if not np.array_equal(row, offline[i]):
                            mismatches.append(i)
                    except Exception as error:  # noqa: BLE001
                        errors.append((i, error))
                    served.release()

            threads = [threading.Thread(target=client,
                                        args=(range(k, NUM_REQUESTS,
                                                    NUM_CLIENTS),))
                       for k in range(NUM_CLIENTS)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for _ in range(KILL_AFTER):
                served.acquire()
            print(f"SIGKILL {victim} after {KILL_AFTER} requests, "
                  f"traffic still flowing...")
            fleet.kill_replica(victim)
            for thread in threads:
                thread.join(timeout=300)
            elapsed = time.perf_counter() - start

            respawned = fleet.router.wait_healthy(2, timeout=30)
            port_after = dict(fleet.addresses())[victim][1]
            alive = fleet.processes_alive()
            router_stats = fleet.stats()["_router"]
            print(f"{NUM_REQUESTS} requests in {elapsed:.2f}s "
                  f"({NUM_REQUESTS / elapsed:.0f}/s) — "
                  f"{len(errors)} failed, {len(mismatches)} wrong-bits, "
                  f"{router_stats['retries']} retries, "
                  f"{router_stats['failovers']} failovers")
            print(f"respawn: healthy={respawned} "
                  f"port {port_before}->{port_after} "
                  f"processes_alive={alive} "
                  f"respawns={fleet.router.replica(victim).respawns}")

            failures = []
            if errors:
                failures.append(f"{len(errors)} client request(s) failed: "
                                f"{errors[:3]}")
            if mismatches:
                failures.append(f"{len(mismatches)} served row(s) not "
                                f"bit-identical to offline")
            if not respawned:
                failures.append("killed replica did not respawn healthy")
            if port_after != port_before:
                failures.append(f"replica moved ports "
                                f"{port_before}->{port_after}")
            if not all(alive.values()):
                failures.append(f"dead worker process(es): {alive}")
            if failures:
                for failure in failures:
                    print(f"FAIL: {failure}")
                return 1
    print("fleet smoke OK: replica death was invisible to clients")
    return 0


if __name__ == "__main__":
    sys.exit(main())
