"""Figures 10 and 11 — per-module accuracy under pruning on splits 1 and 2.

The appendix repeats the module-level pruning analysis (Figures 5/8) on the
other two train/test splits.  By default this bench covers split 1 on
OfficeHome-Product and FMD; set ``REPRO_BENCH_FIG10_SPLITS=1,2`` and/or
``REPRO_BENCH_FIG10_DATASETS`` (comma-separated) to widen, or
``REPRO_BENCH_FULL=1`` for the paper's full grid.
"""

import os

import pytest

from _bench_lib import write_report
from repro.evaluation import format_series, module_accuracy_series

METHODS = ("taglets", "taglets_prune0", "taglets_prune1")
SHOTS_BY_DATASET = {"officehome_product": (1, 5, 20), "officehome_clipart": (1, 5, 20),
                    "fmd": (1, 5, 20), "grocery_store": (1, 5)}


def _splits():
    default = "1,2" if os.environ.get("REPRO_BENCH_FULL", "0") == "1" else "1"
    return [int(s) for s in os.environ.get("REPRO_BENCH_FIG10_SPLITS",
                                           default).split(",") if s.strip()]


def _datasets():
    default = ("officehome_product,officehome_clipart,fmd,grocery_store"
               if os.environ.get("REPRO_BENCH_FULL", "0") == "1"
               else "officehome_product,fmd")
    return [d.strip() for d in os.environ.get("REPRO_BENCH_FIG10_DATASETS",
                                              default).split(",") if d.strip()]


def test_figure10_11(benchmark, record_cache, bench_grid):
    splits = _splits()
    datasets = _datasets()
    backbone = bench_grid.backbones[0]

    def regenerate():
        records = []
        for dataset in datasets:
            records.extend(record_cache.collect(
                METHODS, [dataset], SHOTS_BY_DATASET[dataset], bench_grid,
                split_seeds=splits))
        return records

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    blocks = []
    for split_seed in splits:
        for dataset in datasets:
            series = module_accuracy_series(records, dataset=dataset,
                                            backbone=backbone,
                                            split_seed=split_seed)
            flattened = {module: {f"{shots}s/{prune}": aggregate
                                  for (shots, prune), aggregate in cells.items()}
                         for module, cells in series.items()}
            blocks.append(format_series(
                flattened, title=f"Figures 10/11 — module accuracy vs pruning "
                                 f"({dataset}, split {split_seed})"))
    write_report("figure10_11_module_pruning_splits", "\n\n".join(blocks))
    assert records
