"""Measure ``parallel_modules`` on this host and print a verdict.

ROADMAP open item: parallel taglet training is bit-identical to sequential
but added nothing on the 1-CPU reference container; the question is whether
it pays off on a multi-core host (e.g. the GitHub CI runner, which invokes
this script in the smoke job).  Run with::

    PYTHONPATH=src python benchmarks/measure_parallel_modules.py
"""

from __future__ import annotations

import os
import time

from repro.core import Controller, ControllerConfig, Task
from repro.kg import GraphSpec
from repro.modules import ZslKgModule
from repro.synth import WorldSpec
from repro.workspace import Workspace, WorkspaceSpec

REPEATS = 3


def build_task() -> Task:
    spec = WorkspaceSpec(graph=GraphSpec(num_filler_concepts=300, seed=0),
                         world=WorldSpec(seed=0),
                         scads_images_per_concept=30, seed=0)
    workspace = Workspace(spec)
    split = workspace.make_task_split("fmd", shots=5, split_seed=0)
    return Task.from_split(split, scads=workspace.scads,
                           backbone=workspace.backbone("resnet50"),
                           wanted_num_related_class=3,
                           images_per_related_class=8)


def measure(task: Task, parallel: bool) -> float:
    timings = []
    for _ in range(REPEATS):
        ZslKgModule._pretrained_cache.clear()
        controller = Controller(config=ControllerConfig(
            parallel_modules=parallel, dtype="float32", seed=0))
        start = time.perf_counter()
        controller.run(task)
        timings.append(time.perf_counter() - start)
    return min(timings)


def main() -> None:
    cpus = os.cpu_count()
    print(f"host: {cpus} CPU(s); four paper-default modules, fmd 5-shot, "
          f"best of {REPEATS}")
    task = build_task()
    measure(task, parallel=False)  # warm BLAS and caches
    sequential = measure(task, parallel=False)
    parallel = measure(task, parallel=True)
    speedup = sequential / parallel
    print(f"sequential: {sequential:.2f}s  parallel: {parallel:.2f}s  "
          f"speedup: {speedup:.2f}x")
    if speedup >= 1.15:
        print(f"verdict: parallel_modules pays off on this {cpus}-core host "
              "— consider enabling it by default here")
    else:
        print(f"verdict: parallel_modules adds nothing on this {cpus}-core "
              "host (GIL/BLAS contention); keep it opt-in")


if __name__ == "__main__":
    main()
