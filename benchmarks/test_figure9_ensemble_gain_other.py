"""Figure 9 — ensemble and end-model gain for OfficeHome-Clipart, FMD and
Grocery Store (split 0).

Same measurement as Figure 6 on the other three tasks: the ensemble improves
over the average module accuracy regardless of the pruning level, and the end
model stays close to the ensemble.
"""

import pytest

from _bench_lib import write_report
from repro.evaluation import ensemble_improvement_series, format_series

METHODS = ("taglets", "taglets_prune0", "taglets_prune1")
CASES = (("officehome_clipart", (1, 5, 20)),
         ("fmd", (1, 5, 20)),
         ("grocery_store", (1, 5)))


@pytest.mark.parametrize("dataset,shots_list", CASES,
                         ids=[case[0] for case in CASES])
def test_figure9(benchmark, dataset, shots_list, record_cache, bench_grid):
    backbone = bench_grid.backbones[0]

    def regenerate():
        return record_cache.collect(METHODS, [dataset], shots_list, bench_grid,
                                    split_seeds=[0])

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    gains = ensemble_improvement_series(records, dataset=dataset, backbone=backbone,
                                        split_seed=0)
    flattened = {f"{shots}-shot / {prune}": cell
                 for (shots, prune), cell in sorted(gains.items())}
    write_report(f"figure9_ensemble_gain_{dataset}",
                 format_series(flattened,
                               title=f"Figure 9 — ensemble / end-model gain "
                                     f"({dataset})"))

    positive = sum(1 for cell in gains.values() if cell["ensemble_gain"].mean > 0)
    assert positive >= len(gains) - 1  # allow one noisy cell on reduced grids
