"""Figure 8 — per-module accuracy under pruning for the remaining datasets
(OfficeHome-Clipart, FMD, Grocery Store; split 0).

Same measurement as Figure 5, on the other three tasks.  Grocery Store is
evaluated at 1/5 shots only, as in the paper.
"""

import pytest

from _bench_lib import write_report
from repro.evaluation import format_series, module_accuracy_series

METHODS = ("taglets", "taglets_prune0", "taglets_prune1")
CASES = (("officehome_clipart", (1, 5, 20)),
         ("fmd", (1, 5, 20)),
         ("grocery_store", (1, 5)))


@pytest.mark.parametrize("dataset,shots_list", CASES,
                         ids=[case[0] for case in CASES])
def test_figure8(benchmark, dataset, shots_list, record_cache, bench_grid):
    backbone = bench_grid.backbones[0]

    def regenerate():
        return record_cache.collect(METHODS, [dataset], shots_list, bench_grid,
                                    split_seeds=[0])

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    series = module_accuracy_series(records, dataset=dataset, backbone=backbone,
                                    split_seed=0)
    flattened = {module: {f"{shots}s/{prune}": aggregate
                          for (shots, prune), aggregate in cells.items()}
                 for module, cells in series.items()}
    write_report(f"figure8_module_pruning_{dataset}",
                 format_series(flattened,
                               title=f"Figure 8 — module accuracy vs pruning "
                                     f"({dataset}, {backbone})"))

    transfer = series["transfer"]
    min_shots = min(shots_list)
    assert transfer[(min_shots, "no_pruning")].mean >= \
        transfer[(min_shots, "prune_level_1")].mean - 0.05
