"""Artifact appendix (Appendix B) — the CIFAR-style demo task.

The paper's artifact ships a demo in which the target task is CIFAR-10 with
CIFAR-100 as auxiliary data, and the expectation is that TAGLETS
"significantly outperforms" the fine-tuning baseline (41.5% in the artifact).
Here the demo task is the ``cifar_demo`` synthetic dataset (a generic
10-class task) with the full SCADS as auxiliary data.
"""

import pytest

from _bench_lib import write_report
from repro.evaluation import format_results_table

METHODS = ("finetune", "taglets")
SHOTS = (5,)


def test_artifact_demo(benchmark, record_cache, bench_grid):
    def regenerate():
        return record_cache.collect(METHODS, ["cifar_demo"], SHOTS, bench_grid,
                                    split_seeds=[0])

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    table = format_results_table(records, dataset="cifar_demo",
                                 shots_list=list(SHOTS), methods=list(METHODS),
                                 backbones=bench_grid.backbones, split_seed=0,
                                 title="Artifact demo — cifar_demo (5-shot)")
    write_report("artifact_demo", table)

    mean = lambda method: sum(r.accuracy for r in records if r.method == method) / \
        max(1, sum(1 for r in records if r.method == method))
    assert mean("taglets") > mean("finetune")
