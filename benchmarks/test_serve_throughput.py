"""Serving-layer benchmark: micro-batched vs unbatched request throughput.

Records ``BENCH_serve.json`` at the repo root: request latency (p50/p99)
and throughput for the same concurrent client workload served

* unbatched — ``max_batch_size=1``, one fused forward per request (what a
  naive serving loop does), and
* micro-batched — ``max_batch_size=32``, requests fused into shared
  forwards by the :class:`~repro.serve.MicroBatcher`,

plus the LRU prediction-cache hot path, a served 3-member taglet
*ensemble* (the quality-over-latency deployment; one request costs three
member forwards), and the same end-model workload drained by
``num_workers=2`` (forwards release the GIL, so the ratio vs one worker is
the machine's parallel headroom — expect ~1× on the 1-CPU reference
container, >1 on multi-core hosts), and the **multi-process fleet** rows:
the same artifact behind the routing front end, 1 vs 2 worker processes
driven over real HTTP (``fleet_http_*``).  Acceptance: batched throughput
≥ 3× unbatched at batch 32; fleet-of-2 ≥ 1.8× fleet-of-1 on multi-core
hosts (informational on 1-CPU, where the ratio is recorded alongside
``fleet_cpus``); and served probabilities bit-identical to the offline
``EndModel.predict_proba`` / ``TagletEnsemble`` voting on the same inputs
at the serving quantum.

Run with ``pytest benchmarks/test_serve_throughput.py`` (the ``bench``
marker keeps it out of tier-1).
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from _bench_lib import update_bench_record

from repro.backbones.backbone import BackboneSpec, ClassificationModel, Encoder
from repro.distill import EndModel
from repro.ensemble import TagletEnsemble
from repro.modules.base import ModelTaglet
from repro.serve import (BatchingConfig, FleetConfig, RouterConfig, Server,
                         ServingFleet, export_end_model, export_ensemble,
                         load_servable, replicated_specs)
from repro.serve.batching import run_at_quantum

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                          "BENCH_serve.json")

#: The end model's architecture: the production-scale backbone shape of the
#: engine benchmark (BENCH_engine.json's backbone_shaped row) — serving is
#: measured at the size the paper actually deploys, a full backbone, not the
#: reduced task-sized one the test workspace trains.
SPEC = BackboneSpec(name="resnet50", input_dim=64, hidden_dims=(128, 128),
                    feature_dim=64, pretraining="imagenet1k-analog")
NUM_CLASSES = 10
NUM_REQUESTS = 2048
NUM_CLIENTS = 8
REPEATS = 3
#: the multi-process rows go through real HTTP (serialize + socket + route),
#: so they use a smaller request count than the in-process rows
FLEET_REQUESTS = 512
FLEET_REPEATS = 2


NUM_MEMBERS = 3


def _make_model(seed: int) -> ClassificationModel:
    encoder = Encoder(SPEC, rng=np.random.default_rng(seed))
    return ClassificationModel(encoder, NUM_CLASSES,
                               rng=np.random.default_rng(seed + 1))


def _make_artifact(tmp_path) -> str:
    path = str(tmp_path / "bench-artifact")
    export_end_model(EndModel(_make_model(0)), path,
                     class_names=[f"c{i}" for i in range(NUM_CLASSES)])
    return path


def _make_ensemble(tmp_path):
    ensemble = TagletEnsemble([ModelTaglet(f"member_{i}",
                                           _make_model(10 + 2 * i))
                               for i in range(NUM_MEMBERS)])
    path = str(tmp_path / "bench-ensemble")
    export_ensemble(ensemble, path,
                    class_names=[f"c{i}" for i in range(NUM_CLASSES)])
    return ensemble, path


def _drive(artifact: str, config: BatchingConfig, inputs: np.ndarray,
           compiled: bool = True) -> dict:
    """Serve ``inputs`` as single-example requests under saturation.

    Open-loop heavy-traffic shape: ``NUM_CLIENTS`` producer threads submit
    their requests as fast as the server accepts them; per-request latency
    is submit → future-resolution (so it includes queueing delay — the cost
    an overloaded unbatched server actually imposes on its callers).
    ``compiled=False`` serves through the tape-based module forward (the
    pre-v2 serving path — the history-comparable naive baseline).
    """
    server = Server(batching=config)
    server.register("bench", load_servable(artifact, compiled=compiled))
    submitted = np.zeros(len(inputs))
    completed = np.zeros(len(inputs))
    futures: list = [None] * len(inputs)
    errors: list = []

    def client(indices):
        try:
            for i in indices:
                submitted[i] = time.perf_counter()
                future = server.submit(inputs[i], model="bench")
                futures[i] = future
                future.add_done_callback(
                    lambda _f, i=i: completed.__setitem__(i, time.perf_counter()))
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)

    threads = [threading.Thread(target=client,
                                args=(range(k, len(inputs), NUM_CLIENTS),))
               for k in range(NUM_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for future in futures:
        future.result(timeout=120)
    elapsed = time.perf_counter() - start
    # result() can return before the done-callbacks have all run (futures
    # notify waiters first); wait until every completion timestamp landed
    # so no latency is computed against a zero.
    deadline = time.perf_counter() + 30
    while not completed.all():
        if time.perf_counter() > deadline:  # pragma: no cover - bench guard
            raise AssertionError("completion callbacks did not all fire")
        time.sleep(0.001)
    stats = server.stats()["bench@1"]
    server.close()
    assert not errors, errors
    latencies = completed - submitted
    return {
        "requests": len(inputs),
        "clients": NUM_CLIENTS,
        "throughput_req_per_sec": round(len(inputs) / elapsed, 1),
        "latency_p50_ms": round(float(np.percentile(latencies, 50)) * 1000, 3),
        "latency_p99_ms": round(float(np.percentile(latencies, 99)) * 1000, 3),
        "mean_batch_size": stats["mean_batch_size"],
        "cache_hits": stats["cache_hits"],
    }


def _drive_fleet(artifact: str, replicas: int, inputs: np.ndarray) -> dict:
    """Serve ``inputs`` through a fleet of worker *processes* via the router.

    Unlike :func:`_drive` (in-process futures), every request here crosses a
    real process boundary — JSON serialization, a socket hop, routing — so
    the single-replica fleet row is the honest HTTP baseline and the
    replicas-vs-1 ratio isolates what process-level parallelism buys.
    """
    specs = replicated_specs([("bench", artifact)], replicas)
    config = FleetConfig(
        batching=BatchingConfig(max_batch_size=32, max_latency_ms=2,
                                cache_size=0),
        router=RouterConfig(health_interval=0.5))
    latencies = np.zeros(len(inputs))
    errors: list = []
    with ServingFleet(specs, config) as fleet:

        def client(indices):
            try:
                for i in indices:
                    begin = time.perf_counter()
                    fleet.router.predict(inputs[i], model="bench")
                    latencies[i] = time.perf_counter() - begin
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=client,
                                    args=(range(k, len(inputs), NUM_CLIENTS),))
                   for k in range(NUM_CLIENTS)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    assert not errors, errors
    return {
        "replicas": replicas,
        "requests": len(inputs),
        "clients": NUM_CLIENTS,
        "throughput_req_per_sec": round(len(inputs) / elapsed, 1),
        "latency_p50_ms": round(float(np.percentile(latencies, 50)) * 1000, 3),
        "latency_p99_ms": round(float(np.percentile(latencies, 99)) * 1000, 3),
    }


def test_serve_throughput(tmp_path):
    artifact = _make_artifact(tmp_path)
    servable = load_servable(artifact)
    rng = np.random.default_rng(2)
    inputs = rng.normal(size=(NUM_REQUESTS, SPEC.input_dim))

    # Acceptance: serving never changes a prediction — served probabilities
    # are bit-identical to offline inference at the same batch quantum, and
    # match full-batch offline inference to BLAS round-off (different gemm
    # row counts reduce in different orders; see BatchingConfig).
    offline = servable.predict_proba(inputs, batch_size=32)
    with Server(batching=BatchingConfig(max_batch_size=32,
                                        cache_size=0)) as check:
        check.load("bench", artifact)
        futures = [check.submit(row, model="bench") for row in inputs[:256]]
        served = np.stack([f.result(timeout=60) for f in futures])
    assert np.array_equal(served, offline[:256])
    assert np.allclose(offline, servable.predict_proba(inputs),
                       rtol=1e-12, atol=1e-14)

    # Warm-up, then measure both configurations on identical workloads
    # (best of REPEATS — the shared single CPU is noisy; the maximum
    # throughput is the least-perturbed observation of each path).
    _drive(artifact, BatchingConfig(max_batch_size=32, max_latency_ms=2,
                                    cache_size=0), inputs[:256])

    def best_of(config, artifact=artifact, compiled=True) -> dict:
        runs = [_drive(artifact, config, inputs, compiled=compiled)
                for _ in range(REPEATS)]
        return max(runs, key=lambda run: run["throughput_req_per_sec"])

    # The naive baseline (one forward per request) is measured through the
    # tape-based module forward — the serving path every earlier BENCH
    # record used — so the batched-vs-unbatched ratio stays comparable
    # across the benchmark's history.  The compiled-forward naive loop is
    # recorded as its own row: the per-request win of compiling servable
    # forwards to raw NumPy kernels.
    unbatched = best_of(BatchingConfig(max_batch_size=1, cache_size=0),
                        compiled=False)
    unbatched_compiled = best_of(BatchingConfig(max_batch_size=1,
                                                cache_size=0))
    batched = best_of(BatchingConfig(max_batch_size=32, max_latency_ms=2,
                                     cache_size=0))
    # The cache hot path: every request repeats one of 32 distinct inputs.
    hot = _drive(artifact,
                 BatchingConfig(max_batch_size=32, max_latency_ms=2,
                                cache_size=1024),
                 inputs[rng.integers(0, 32, size=NUM_REQUESTS)])

    # Multi-worker draining of the same end-model workload.  Forwards are
    # compiled raw-NumPy kernels (lock-free, GIL-releasing BLAS), so the
    # ratio over one worker measures the host's parallel headroom: ~1x on
    # the 1-CPU reference container, >1x on multi-core runners (advisory —
    # bit-determinism is asserted either way by tier-1).
    workers2 = best_of(BatchingConfig(max_batch_size=32, max_latency_ms=2,
                                      cache_size=0, num_workers=2))
    workers_ratio = (workers2["throughput_req_per_sec"]
                     / batched["throughput_req_per_sec"])

    # The served taglet ensemble (quality over latency): every request
    # costs NUM_MEMBERS member forwards plus the vote average, so its
    # throughput bounds at ~1/NUM_MEMBERS of the end model's.
    ensemble, ensemble_path = _make_ensemble(tmp_path)
    ensemble_offline = run_at_quantum(
        lambda rows: ensemble.predict_proba(rows, batch_size=None),
        inputs[:256], 32)
    with Server(batching=BatchingConfig(max_batch_size=32,
                                        cache_size=0)) as check:
        check.load("bench", ensemble_path)
        futures = [check.submit(row, model="bench") for row in inputs[:256]]
        ensemble_served = np.stack([f.result(timeout=120) for f in futures])
    assert np.array_equal(ensemble_served, ensemble_offline)
    ensemble_row = best_of(BatchingConfig(max_batch_size=32,
                                          max_latency_ms=2, cache_size=0),
                           artifact=ensemble_path)
    ensemble_row["members"] = NUM_MEMBERS

    # Multi-process fleet rows: the same artifact behind the routing front
    # end, 1 worker process vs 2, driven over real HTTP.  The 2-vs-1 ratio
    # is what process-level scaling buys past the GIL: >= 1.8x expected on
    # multi-core hosts, ~1x (informational) on the 1-CPU reference
    # container where two processes share one core.
    cpus = len(os.sched_getaffinity(0))
    fleet_inputs = inputs[:FLEET_REQUESTS]

    def best_fleet(replicas: int) -> dict:
        runs = [_drive_fleet(artifact, replicas, fleet_inputs)
                for _ in range(FLEET_REPEATS)]
        return max(runs, key=lambda run: run["throughput_req_per_sec"])

    fleet1 = best_fleet(1)
    fleet2 = best_fleet(2)
    fleet_ratio = (fleet2["throughput_req_per_sec"]
                   / fleet1["throughput_req_per_sec"])

    speedup = (batched["throughput_req_per_sec"]
               / unbatched["throughput_req_per_sec"])
    compiled_gain = (unbatched_compiled["throughput_req_per_sec"]
                     / unbatched["throughput_req_per_sec"])
    payload = {
        "workload": (f"{NUM_REQUESTS} single-example requests from "
                     f"{NUM_CLIENTS} client threads, end model "
                     f"{SPEC.input_dim}->{list(SPEC.hidden_dims)}->"
                     f"{NUM_CLASSES}; ensemble = {NUM_MEMBERS} such members, "
                     f"renormalized vote average; unbatched baseline runs "
                     f"the tape-based module forward (pre-v2 path, "
                     f"history-comparable)"),
        "unbatched_batch1": unbatched,
        "unbatched_batch1_compiled": unbatched_compiled,
        "compiled_vs_module_unbatched_throughput": round(compiled_gain, 2),
        "microbatched_batch32": batched,
        "cached_hot_requests": hot,
        "microbatched_batch32_workers2": workers2,
        "workers2_vs_1_throughput": round(workers_ratio, 2),
        "ensemble_batch32": ensemble_row,
        "batched_vs_unbatched_throughput": round(speedup, 2),
        "fleet_http_1_process": fleet1,
        "fleet_http_2_processes": fleet2,
        "fleet2_vs_1_throughput": round(fleet_ratio, 2),
        "fleet_cpus": cpus,
        "served_bit_identical_to_offline": True,
        "ensemble_bit_identical_to_offline_voting": True,
    }
    update_bench_record(BENCH_PATH, "serve_throughput", payload)
    print(f"\nserving: unbatched {unbatched['throughput_req_per_sec']}/s "
          f"(compiled {unbatched_compiled['throughput_req_per_sec']}/s, "
          f"{compiled_gain:.2f}x) -> "
          f"batched {batched['throughput_req_per_sec']}/s ({speedup:.2f}x), "
          f"cache-hot {hot['throughput_req_per_sec']}/s, "
          f"2 workers {workers2['throughput_req_per_sec']}/s "
          f"({workers_ratio:.2f}x vs 1), ensemble "
          f"{ensemble_row['throughput_req_per_sec']}/s, fleet-over-HTTP "
          f"{fleet1['throughput_req_per_sec']}/s -> "
          f"{fleet2['throughput_req_per_sec']}/s "
          f"({fleet_ratio:.2f}x, {cpus} CPU(s))")
    assert speedup >= 3.0, (
        f"micro-batching must be >=3x unbatched throughput, got {speedup:.2f}x")
    assert compiled_gain >= 1.0, (
        f"compiled forwards must not serve slower than the module path, "
        f"got {compiled_gain:.2f}x")
    assert hot["cache_hits"] > 0
    if cpus > 1:
        # The tentpole bar — only meaningful where two worker processes can
        # actually run in parallel; on a 1-CPU host the ratio is recorded
        # as informational (two processes time-slicing one core).
        assert fleet_ratio >= 1.8, (
            f"a 2-process fleet must be >=1.8x a 1-process fleet on a "
            f"multi-core host ({cpus} CPUs), got {fleet_ratio:.2f}x")
