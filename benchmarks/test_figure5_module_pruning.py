"""Figure 5 — per-module accuracy under pruning on OfficeHome-Product.

For the Multi-task, Transfer, FixMatch and ZSL-KG modules (ResNet backbone),
the paper plots accuracy at 1/5/20 shots for no pruning, prune level 0 and
prune level 1.  Expected shape:

* modules benefit from closely-related auxiliary data (accuracy drops as the
  pruning level increases),
* the benefit shrinks as the number of labeled shots grows,
* ZSL-KG is invariant to the amount of labeled data.
"""

import pytest

from _bench_lib import write_report
from repro.evaluation import format_series, module_accuracy_series

DATASET = "officehome_product"
SHOTS = (1, 5, 20)
METHODS = ("taglets", "taglets_prune0", "taglets_prune1")


def test_figure5(benchmark, record_cache, bench_grid):
    backbone = bench_grid.backbones[0]

    def regenerate():
        return record_cache.collect(METHODS, [DATASET], SHOTS, bench_grid,
                                    split_seeds=[0])

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    series = module_accuracy_series(records, dataset=DATASET, backbone=backbone,
                                    split_seed=0)
    flattened = {module: {f"{shots}s/{prune}": aggregate
                          for (shots, prune), aggregate in cells.items()}
                 for module, cells in series.items()}
    write_report("figure5_module_pruning_officehome_product",
                 format_series(flattened,
                               title=f"Figure 5 — module accuracy vs pruning "
                                     f"({DATASET}, {backbone})"))

    # Shape checks: at the 1-shot setting at least one SCADS-consuming module
    # clearly loses accuracy when the auxiliary data is pruned to level 1
    # (single-seed per-module comparisons are noisy, so we check the effect
    # exists rather than requiring it for every module), and ZSL-KG is
    # unaffected by the number of shots.
    drops = [series[m][(1, "no_pruning")].mean - series[m][(1, "prune_level_1")].mean
             for m in ("multitask", "transfer", "fixmatch")]
    assert max(drops) > 0.03
    zsl = series["zsl_kg"]
    assert abs(zsl[(1, "no_pruning")].mean - zsl[(20, "no_pruning")].mean) < 0.05
