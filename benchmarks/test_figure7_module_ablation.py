"""Figure 7 — accuracy change when a module is removed from TAGLETS.

The paper removes each of the four modules in turn (1- and 5-shot settings,
all datasets) and plots the distribution of the resulting change in end-model
accuracy.  Negative values mean the removed module was contributing.  The
expected shape: removing any module hurts in at least half of the settings.

By default this bench ablates on FMD and Grocery Store (the two smaller
tasks); set ``REPRO_BENCH_FIG7_DATASETS`` to a comma-separated list to widen.
"""

import os

import pytest

from _bench_lib import write_report
from repro.evaluation import (format_series, module_removal_deltas,
                              taglets_method)
from repro.modules import DEFAULT_MODULES

SHOTS = (1, 5)


def _datasets():
    raw = os.environ.get("REPRO_BENCH_FIG7_DATASETS", "fmd,grocery_store")
    return [d.strip() for d in raw.split(",") if d.strip()]


def test_figure7(benchmark, record_cache, bench_grid):
    datasets = _datasets()
    # Register one leave-one-out variant of TAGLETS per module.
    ablated_methods = {}
    for removed in DEFAULT_MODULES:
        name = f"taglets_no_{removed}"
        modules = tuple(m for m in DEFAULT_MODULES if m != removed)
        record_cache.runner.register(taglets_method(name, modules=modules))
        ablated_methods[removed] = name

    def regenerate():
        full = record_cache.collect(["taglets"], datasets, SHOTS, bench_grid,
                                    split_seeds=[0])
        ablated = {removed: record_cache.collect([name], datasets, SHOTS,
                                                 bench_grid, split_seeds=[0])
                   for removed, name in ablated_methods.items()}
        return full, ablated

    full_records, ablated_records = benchmark.pedantic(regenerate, rounds=1,
                                                       iterations=1)
    deltas = module_removal_deltas(full_records, ablated_records)
    write_report("figure7_module_ablation",
                 format_series({m: {"delta": agg} for m, agg in deltas.items()},
                               title="Figure 7 — accuracy change when removing a "
                                     "module (negative = module helps)"))

    assert set(deltas) == set(DEFAULT_MODULES)
    # Shape check: removing at least half of the modules hurts on average.
    hurting = sum(1 for aggregate in deltas.values() if aggregate.mean < 0)
    assert hurting >= len(DEFAULT_MODULES) // 2
