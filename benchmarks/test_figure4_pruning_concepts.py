"""Figure 4 — related concepts retrieved for a target class under pruning.

The paper illustrates, for the target classes ``plastic`` and ``stone``, the
ten most related SCADS concepts with no pruning, at prune level 0, and at
prune level 1.  The qualitative expectation: without pruning the retrieved
concepts are close relatives (cling film, plastic bag, ...); at level 0 they
are lateral cousins; at level 1 they are only distantly related.  We verify
that quantitatively via the visual-prototype distance of the retrieved
concepts to the target class.
"""

import numpy as np
import pytest

from _bench_lib import write_report

TARGET_CLASSES = ("plastic", "stone")
TOP_K = 10
PRUNE_LEVELS = (None, 0, 1)


def _retrieve(workspace, target_class, prune_level):
    dataset = workspace.dataset("fmd")
    spec = [c for c in dataset.classes if c.name == target_class][0]
    bundle = workspace.scads.pruned([spec], prune_level) if prune_level is not None \
        else workspace.scads
    candidates = bundle.scads.concepts_with_images()
    ranked = bundle.embedding.related_concepts(spec.concept, top_k=TOP_K,
                                               candidates=candidates)
    return [concept for concept, _ in ranked]


def test_figure4(benchmark, bench_workspace):
    def regenerate():
        table = {}
        for target in TARGET_CLASSES:
            table[target] = {level: _retrieve(bench_workspace, target, level)
                             for level in PRUNE_LEVELS}
        return table

    retrieved = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    lines = ["Figure 4 — top related concepts under pruning",
             "=" * 52]
    distances = {}
    for target, by_level in retrieved.items():
        lines.append(f"\nTarget class: {target}")
        for level, concepts in by_level.items():
            label = "no pruning" if level is None else f"prune level {level}"
            lines.append(f"  {label:>14}: " + ", ".join(concepts))
            distances[(target, level)] = float(np.mean(
                [bench_workspace.world.prototype_distance(target, c)
                 for c in concepts]))
        lines.append("  mean visual distance of retrieved concepts: "
                     + ", ".join(f"{label}={distances[(target, lvl)]:.2f}"
                                 for label, lvl in
                                 [("none", None), ("p0", 0), ("p1", 1)]))
    write_report("figure4_pruning_concepts", "\n".join(lines))

    # Shape check: prune level 1 retrieves clearly more distant concepts for
    # every target class; level 0 sits between no pruning and level 1 on
    # average (per-class it can tie with no pruning within noise, since the
    # surviving lateral cousins are deliberately still related).
    for target in TARGET_CLASSES:
        assert distances[(target, None)] < distances[(target, 1)]
        assert distances[(target, 0)] < distances[(target, 1)]
    mean_none = np.mean([distances[(t, None)] for t in TARGET_CLASSES])
    mean_level_0 = np.mean([distances[(t, 0)] for t in TARGET_CLASSES])
    assert mean_level_0 >= mean_none - 0.1
