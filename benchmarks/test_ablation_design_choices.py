"""Ablations of TAGLETS design choices (beyond the paper's figures).

DESIGN.md calls out three design decisions worth ablating:

1. **Graph-based auxiliary selection vs. random selection** — SCADS picks
   auxiliary concepts by semantic similarity; the ablation replaces the
   selection with uniformly random concepts (same budget) and measures the
   Transfer module's accuracy.
2. **Soft vs. hard pseudo labels in the distillation stage** — Eq. 6/7 use
   soft labels; the ablation hardens them to one-hot before training the end
   model.
3. **Auxiliary budget (N × K)** — how accuracy responds to the number of
   related concepts N retrieved per class.
"""

import numpy as np
import pytest

from _bench_lib import write_report
from repro.core import Controller, ControllerConfig, Task
from repro.distill import EndModelConfig, train_end_model
from repro.modules import TransferModule
from repro.modules.base import ModuleInput
from repro.scads.query import AuxiliarySelection

DATASET = "fmd"
SHOTS = 1


def _split_and_task(workspace, backbone_name, num_related=5, images_per_concept=30):
    split = workspace.make_task_split(DATASET, shots=SHOTS, split_seed=0)
    backbone = workspace.backbone(backbone_name)
    task = Task.from_split(split, scads=workspace.scads, backbone=backbone,
                           wanted_num_related_class=num_related,
                           images_per_related_class=images_per_concept)
    return split, task


def _random_selection(workspace, split, num_related, images_per_concept, seed=0):
    """Same auxiliary budget as SCADS selection, but concepts chosen uniformly."""
    rng = np.random.default_rng(seed)
    candidates = workspace.scads.scads.concepts_with_images()
    count = min(len(candidates), split.num_classes * num_related)
    chosen = rng.choice(candidates, size=count, replace=False).tolist()
    features, labels = [], []
    for label, concept in enumerate(chosen):
        images = workspace.scads.scads.get_images(concept, limit=images_per_concept,
                                                  rng=rng)
        features.append(images)
        labels.append(np.full(len(images), label))
    return AuxiliarySelection(features=np.concatenate(features),
                              labels=np.concatenate(labels).astype(np.int64),
                              concepts=chosen)


def test_ablation_selection_strategy(benchmark, bench_workspace, bench_grid):
    """SCADS graph-based selection vs random auxiliary selection."""
    backbone_name = bench_grid.backbones[0]
    split, task = _split_and_task(bench_workspace, backbone_name)
    backbone = bench_workspace.backbone(backbone_name)

    def run():
        controller = Controller(modules=["transfer"], config=ControllerConfig(seed=0))
        scads_selection = controller.select_auxiliary_data(task)
        random_selection = _random_selection(bench_workspace, split, 5, 30)
        accuracies = {}
        for name, selection in [("scads_selection", scads_selection),
                                ("random_selection", random_selection)]:
            data = ModuleInput(classes=split.classes,
                               labeled_features=split.labeled_features,
                               labeled_labels=split.labeled_labels,
                               unlabeled_features=split.unlabeled_features,
                               auxiliary=selection, backbone=backbone,
                               scads=bench_workspace.scads, seed=0)
            taglet = TransferModule().train(data)
            accuracies[name] = taglet.accuracy(split.test_features, split.test_labels)
        return accuracies

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_selection_strategy",
                 "Ablation — auxiliary selection strategy (Transfer module, "
                 f"{DATASET} {SHOTS}-shot)\n"
                 + "\n".join(f"  {name:>18}: {value * 100:.2f}%"
                             for name, value in accuracies.items()))
    assert accuracies["scads_selection"] > accuracies["random_selection"]


def test_ablation_soft_vs_hard_pseudo_labels(benchmark, bench_workspace, bench_grid):
    """Soft (Eq. 7) vs hardened pseudo labels in the distillation stage."""
    backbone_name = bench_grid.backbones[0]
    split, task = _split_and_task(bench_workspace, backbone_name)

    def run():
        controller = Controller(config=ControllerConfig(seed=0))
        result = controller.run(task)
        hard_end_model = train_end_model(
            backbone=task.backbone, labeled_features=task.labeled_features,
            labeled_labels=task.labeled_labels,
            pseudo_features=task.unlabeled_features,
            pseudo_probabilities=result.pseudo_labels,
            num_classes=task.num_classes,
            config=EndModelConfig(harden_pseudo_labels=True), seed=0)
        return {
            "soft_pseudo_labels": result.end_model_accuracy(split.test_features,
                                                            split.test_labels),
            "hard_pseudo_labels": hard_end_model.accuracy(split.test_features,
                                                          split.test_labels),
            "ensemble": result.ensemble_accuracy(split.test_features,
                                                 split.test_labels),
        }

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_soft_vs_hard_pseudo_labels",
                 "Ablation — distillation targets "
                 f"({DATASET} {SHOTS}-shot)\n"
                 + "\n".join(f"  {name:>20}: {value * 100:.2f}%"
                             for name, value in accuracies.items()))
    # Both variants must stay within a reasonable band of the ensemble.
    assert accuracies["soft_pseudo_labels"] > 0
    assert accuracies["hard_pseudo_labels"] > 0


def test_ablation_auxiliary_budget(benchmark, bench_workspace, bench_grid):
    """Accuracy of the Transfer module as the number of related concepts N grows."""
    backbone_name = bench_grid.backbones[0]
    backbone = bench_workspace.backbone(backbone_name)
    budgets = (1, 3, 5, 10)

    def run():
        split = bench_workspace.make_task_split(DATASET, shots=SHOTS, split_seed=0)
        accuracies = {}
        for num_related in budgets:
            selection = bench_workspace.scads.select(
                split.classes, num_related_concepts=num_related,
                images_per_concept=30, rng=np.random.default_rng(0))
            data = ModuleInput(classes=split.classes,
                               labeled_features=split.labeled_features,
                               labeled_labels=split.labeled_labels,
                               unlabeled_features=split.unlabeled_features,
                               auxiliary=selection, backbone=backbone,
                               scads=bench_workspace.scads, seed=0)
            taglet = TransferModule().train(data)
            accuracies[num_related] = taglet.accuracy(split.test_features,
                                                      split.test_labels)
        return accuracies

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablation_auxiliary_budget",
                 "Ablation — related concepts per class (Transfer module, "
                 f"{DATASET} {SHOTS}-shot)\n"
                 + "\n".join(f"  N={n:>2}: {value * 100:.2f}%"
                             for n, value in accuracies.items()))
    assert max(accuracies.values()) >= accuracies[budgets[0]]
