"""Capacity-model benchmark: the analytic model vs the real servable.

Where ``capacity_smoke.py`` validates the model against a servable with a
*known* service law, this benchmark closes the loop against the real
thing: the production-shaped end-model artifact (the same ``SPEC`` as
``test_serve_throughput.py``), calibrated live, then validated with the
traffic harness.  Records ``capacity_model_*`` rows in
``BENCH_serve.json``:

* ``capacity_model_calibration`` — the fitted affine service law
  (base + per-row cost, dispatch overhead) of the compiled forward;
* ``capacity_model_throughput`` — predicted capacity vs the served rate
  under a 2x-capacity open-loop overload (must agree within
  :data:`~repro.serve.capacity.THROUGHPUT_ERROR_BOUND`);
* ``capacity_model_latency`` — predicted vs observed p50/p99 under a
  Poisson load at ~30% utilization (within
  :data:`~repro.serve.capacity.LATENCY_ERROR_BOUND`), with **zero**
  deadline-violating responses;
* ``capacity_model_autotune`` — the config the SLO inverter picks and
  the observed p99 it delivers (must meet the SLO live);
* ``capacity_model_admission`` — shed rate and served-request latency of
  an admission-gated server under an adversarial spike storm.

The servable here is deliberately *larger* than the serving-throughput
benchmark's (wider layers, batch quantum 8): the capacity model predicts
the service side only, so validating it requires a workload where the
forward dominates the per-request dispatch cost.  At the
``test_serve_throughput.py`` scale the forward is ~4 us/row and the
Python harness itself is the bottleneck — any "capacity" measured there
is a property of the load generator, not the server.

Run with ``pytest benchmarks/test_capacity_model.py`` (the ``bench``
marker keeps it out of tier-1; the CI gate on model accuracy is
``capacity_smoke.py``, whose sleep-based service law is deterministic on
a noisy shared runner).
"""

from __future__ import annotations

import os

import numpy as np

from _bench_lib import update_bench_record

from repro.backbones.backbone import BackboneSpec, ClassificationModel, Encoder
from repro.distill import EndModel
from repro.serve import (AdmissionController, BatchingConfig, CapacityModel,
                         SLO, Server, TrafficGenerator, adversarial_trace,
                         calibrate_service_model, compare_prediction,
                         export_end_model, load_servable, poisson_trace)
from repro.serve.capacity import (LATENCY_ERROR_BOUND,
                                  THROUGHPUT_ERROR_BOUND)

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                          "BENCH_serve.json")

#: Sized so the forward dominates dispatch: ~250 us of service per request
#: at the batch-8 quantum vs ~20 us of harness cost (see module docstring).
SPEC = BackboneSpec(name="resnet50", input_dim=512, hidden_dims=(1024, 1024),
                    feature_dim=256, pretraining="imagenet1k-analog")
NUM_CLASSES = 10
BATCH = 8
REPEATS = 2


def _make_artifact(tmp_path) -> str:
    encoder = Encoder(SPEC, rng=np.random.default_rng(0))
    model = ClassificationModel(encoder, NUM_CLASSES,
                                rng=np.random.default_rng(1))
    path = str(tmp_path / "capacity-artifact")
    export_end_model(EndModel(model), path,
                     class_names=[f"c{i}" for i in range(NUM_CLASSES)])
    return path


def test_capacity_model(tmp_path):
    artifact = _make_artifact(tmp_path)
    servable = load_servable(artifact)
    cpus = len(os.sched_getaffinity(0))

    # Calibrate the service law of the real compiled forward.
    service = calibrate_service_model(servable.predict_proba,
                                      input_dim=SPEC.input_dim,
                                      dtype=servable.dtype)
    model = CapacityModel(service, cpus=cpus)
    config = BatchingConfig(max_batch_size=BATCH, max_latency_ms=2.0,
                            cache_size=0)
    capacity = model.capacity(config)
    update_bench_record(BENCH_PATH, "capacity_model_calibration", {
        "servable": f"end model {SPEC.input_dim}->"
                    f"{list(SPEC.hidden_dims)}->{NUM_CLASSES}",
        "base_ms": round(service.base_s * 1e3, 4),
        "per_row_ms": round(service.per_row_s * 1e3, 5),
        "overhead_us_per_request": round(service.overhead_s * 1e6, 1),
        "cpus": cpus,
        "batch_quantum": BATCH,
        "predicted_capacity_req_per_sec": round(capacity, 1),
    })

    def replay(trace, batching=config, deadline_ms=None, admission=None):
        with Server(batching=batching, admission=admission) as server:
            server.register("bench", servable)
            generator = TrafficGenerator(server, model="bench", seed=0)
            return generator.run(trace, deadline_ms=deadline_ms)

    # Throughput: a 2x-capacity open-loop overload must be served at the
    # predicted capacity (best of REPEATS — the shared CPU is noisy and
    # the maximum is the least-perturbed observation).
    overload = max((replay(poisson_trace(2.0 * capacity, 1.0, seed=s))
                    for s in range(REPEATS)), key=lambda r: r.throughput())
    throughput_error = abs(overload.throughput() - capacity) / capacity
    update_bench_record(BENCH_PATH, "capacity_model_throughput", {
        "workload": "open-loop Poisson at 2x predicted capacity, 1 s",
        "predicted_capacity_req_per_sec": round(capacity, 1),
        "observed_req_per_sec": round(overload.throughput(), 1),
        "rel_error": round(throughput_error, 3),
        "bound": THROUGHPUT_ERROR_BOUND,
    })

    # Latency: Poisson at ~30% utilization, p50/p99 within the bound and
    # the deadline promise exact.
    rate = 0.3 * capacity
    prediction = model.predict(config, rate)
    light = replay(poisson_trace(rate, 3.0, seed=3), deadline_ms=1000.0)
    errors = compare_prediction(light, prediction)
    update_bench_record(BENCH_PATH, "capacity_model_latency", {
        "workload": f"open-loop Poisson at {rate:.0f} req/s "
                    f"(~30% utilization), 3 s, deadline 1000 ms",
        "predicted_p50_ms": round(prediction.p50_ms, 2),
        "observed_p50_ms": round(light.p50_ms(), 2),
        "predicted_p99_ms": round(prediction.p99_ms, 2),
        "observed_p99_ms": round(light.p99_ms(), 2),
        "p50_rel_error": round(errors["p50_rel_error"], 3),
        "p99_rel_error": round(errors["p99_rel_error"], 3),
        "bound": LATENCY_ERROR_BOUND,
        "deadline_violations": light.deadline_violations(),
    })

    # Autotune: invert the model for a p99 SLO and serve at the answer.
    slo = SLO(p99_ms=50.0)
    tuned, tuned_prediction = model.autotune(slo, arrival_rate=rate)
    tuned_report = replay(poisson_trace(rate, 2.0, seed=4),
                          batching=tuned, deadline_ms=1000.0)
    update_bench_record(BENCH_PATH, "capacity_model_autotune", {
        "slo_p99_ms": slo.p99_ms,
        "arrival_rate_req_per_sec": round(rate, 1),
        "chosen_batch": tuned.max_batch_size,
        "chosen_window_ms": tuned.max_latency_ms,
        "chosen_workers": tuned.num_workers,
        "predicted_p99_ms": round(tuned_prediction.p99_ms, 2),
        "observed_p99_ms": round(tuned_report.p99_ms(), 2),
        "slo_met_live": bool(tuned_report.p99_ms() <= slo.p99_ms),
    })

    # Admission: adversarial spikes at 3x capacity against a gated server —
    # excess is shed as 429s, served requests still meet their deadlines.
    admission = AdmissionController(model, config, max_delay_ms=50.0)
    storm = replay(adversarial_trace(3.0 * capacity, 1.0,
                                     spike_every_s=0.25, seed=5),
                   deadline_ms=250.0, admission=admission)
    update_bench_record(BENCH_PATH, "capacity_model_admission", {
        "workload": "adversarial spikes at 3x capacity, 1 s, "
                    "admission budget 50 ms, deadline 250 ms",
        "sent": storm.sent,
        "served": storm.ok,
        "shed_429": storm.count("overloaded"),
        "shed_rate": round(storm.shed_rate(), 3),
        "served_p99_ms": round(storm.p99_ms(), 2),
        "deadline_violations": storm.deadline_violations(),
    })

    print(f"\ncapacity model: s(B) = {service.base_s * 1e3:.3f} ms + "
          f"{service.per_row_s * 1e3:.4f} ms/row, capacity "
          f"{capacity:.0f} req/s; observed {overload.throughput():.0f} req/s "
          f"(rel {throughput_error:.3f}); p99 predicted "
          f"{prediction.p99_ms:.1f} ms observed {light.p99_ms():.1f} ms; "
          f"autotune -> batch {tuned.max_batch_size} "
          f"(p99 {tuned_report.p99_ms():.1f} <= {slo.p99_ms:.0f} ms); "
          f"storm shed {storm.shed_rate():.0%}")

    assert throughput_error < THROUGHPUT_ERROR_BOUND
    assert errors["p99_rel_error"] < LATENCY_ERROR_BOUND
    assert light.deadline_violations() == 0
    assert tuned_report.p99_ms() <= slo.p99_ms
    assert storm.count("overloaded") > 0
    assert storm.ok > 0
    assert storm.deadline_violations() == 0
