"""Capacity-model smoke for CI: predictions must match live traffic.

Stands up a real :class:`~repro.serve.Server` over a servable with an
*exactly known* service law (the forward sleeps ``base + per_row * B`` —
sleeping releases the GIL like a BLAS call, so service time stays
deterministic even on a noisy shared runner), then closes the loop the
capacity program promises:

1. **Calibrate** the service model from the live servable and check the
   fitted law against the ground truth it was constructed with.
2. **Validate light-load predictions**: replay a Poisson trace at ~35% of
   predicted capacity through the server (open loop) and assert observed
   throughput/p50/p99 within the documented error bounds
   (:data:`~repro.serve.capacity.THROUGHPUT_ERROR_BOUND`,
   :data:`~repro.serve.capacity.LATENCY_ERROR_BOUND`).
3. **Validate capacity**: replay a trace at 2x predicted capacity and
   assert the served rate lands within the throughput bound of the
   prediction.
4. **Autotune**: invert the model for a stated p99 SLO, serve at the
   returned config, and assert the *observed* p99 meets the SLO.
5. **Admission control**: replay an adversarial (synchronized-spike)
   trace against an admission-gated server and assert load is shed as
   429s while served requests still meet their deadlines.

Throughout, the deadline promise is asserted exactly: **zero** responses
complete successfully after their own deadline.  Every check here is
exact or within the documented bounds — this job is NOT advisory.  Run
with ``PYTHONPATH=src python benchmarks/capacity_smoke.py``.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.serve import (AdmissionController, BatchingConfig, CapacityModel,
                         SLO, Servable, Server, TrafficGenerator,
                         adversarial_trace, calibrate_service_model,
                         compare_prediction, poisson_trace)
from repro.serve.capacity import (LATENCY_ERROR_BOUND,
                                  THROUGHPUT_ERROR_BOUND)

BASE_S = 0.005
PER_ROW_S = 0.0005
INPUT_DIM = 8
NUM_CLASSES = 5


class SleepServable(Servable):
    """A servable whose forward cost is exactly the affine law."""

    def __init__(self):
        self.manifest = {"name": "sleepy"}
        self.path = None
        self.class_names = [f"c{i}" for i in range(NUM_CLASSES)]
        self.dtype = np.dtype(np.float64)
        self.fingerprint = "sleepy-v1"

    @property
    def num_classes(self) -> int:
        return NUM_CLASSES

    @property
    def input_dim(self) -> int:
        return INPUT_DIM

    def predict_proba(self, features, batch_size=None):
        rows = np.atleast_2d(np.asarray(features))
        time.sleep(BASE_S + PER_ROW_S * len(rows))
        return np.full((len(rows), NUM_CLASSES), 1.0 / NUM_CLASSES)

    def describe(self) -> dict:
        return {"name": "sleepy", "base_s": BASE_S, "per_row_s": PER_ROW_S}


def check(label: str, condition: bool, detail: str) -> None:
    print(f"  {'PASS' if condition else 'FAIL'}: {label} ({detail})")
    if not condition:
        raise AssertionError(f"{label}: {detail}")


def main() -> int:
    cpus = len(os.sched_getaffinity(0))
    print(f"capacity smoke: {cpus} CPU(s) available to this process")
    servable = SleepServable()

    # 1. Calibration recovers the known law.
    print("calibrating against the live servable...")
    service = calibrate_service_model(servable.predict_proba,
                                      input_dim=INPUT_DIM,
                                      batch_sizes=(1, 4, 16), repeats=3,
                                      probe_requests=128)
    print(f"  fitted s(B) = {service.base_s * 1e3:.3f} ms "
          f"+ {service.per_row_s * 1e3:.4f} ms/row "
          f"(truth {BASE_S * 1e3:.1f} + {PER_ROW_S * 1e3:.2f}), "
          f"overhead {service.overhead_s * 1e6:.0f} us/req")
    check("calibration recovers base cost",
          abs(service.base_s - BASE_S) / BASE_S < 0.5,
          f"fitted {service.base_s * 1e3:.3f} ms vs true {BASE_S * 1e3:.1f} ms")
    check("calibration recovers per-row cost",
          abs(service.per_row_s - PER_ROW_S) / PER_ROW_S < 0.5,
          f"fitted {service.per_row_s * 1e3:.4f} ms vs true "
          f"{PER_ROW_S * 1e3:.2f} ms")

    model = CapacityModel(service, cpus=cpus)
    config = BatchingConfig(max_batch_size=16, max_latency_ms=2.0,
                            cache_size=0)
    capacity = model.capacity(config)
    print(f"predicted capacity at batch 16: {capacity:.0f} req/s")

    # 2. Light-load predictions within the documented bounds.
    rate = 0.35 * capacity
    prediction = model.predict(config, rate)
    print(f"light load ({rate:.0f} req/s): predicted "
          f"p50 {prediction.p50_ms:.1f} ms, p99 {prediction.p99_ms:.1f} ms")
    with Server(batching=config) as server:
        server.register("default", servable)
        generator = TrafficGenerator(server, seed=0)
        report = generator.run(poisson_trace(rate, 3.0, seed=1),
                               deadline_ms=1000.0)
    errors = compare_prediction(report, prediction)
    print(f"  observed: {report.throughput():.0f} req/s, "
          f"p50 {report.p50_ms():.1f} ms, p99 {report.p99_ms():.1f} ms")
    check("no failed requests under light load",
          report.ok == report.sent, f"{report.summary()}")
    check("light-load throughput within bound",
          errors["throughput_rel_error"] < THROUGHPUT_ERROR_BOUND,
          f"rel error {errors['throughput_rel_error']:.3f} "
          f"< {THROUGHPUT_ERROR_BOUND}")
    check("light-load p50 within bound",
          errors["p50_rel_error"] < LATENCY_ERROR_BOUND,
          f"rel error {errors['p50_rel_error']:.3f} < {LATENCY_ERROR_BOUND}")
    check("light-load p99 within bound",
          errors["p99_rel_error"] < LATENCY_ERROR_BOUND,
          f"rel error {errors['p99_rel_error']:.3f} < {LATENCY_ERROR_BOUND}")
    check("zero deadline-violating responses (light load)",
          report.deadline_violations() == 0,
          f"{report.deadline_violations()} late successes")

    # 3. Saturated throughput lands at predicted capacity.
    with Server(batching=config) as server:
        server.register("default", servable)
        generator = TrafficGenerator(server, seed=0)
        saturated = generator.run(poisson_trace(2.0 * capacity, 1.0, seed=2))
    observed = saturated.throughput()
    rel = abs(observed - capacity) / capacity
    print(f"saturated (2x capacity open loop): served {observed:.0f} req/s "
          f"vs predicted {capacity:.0f} req/s (rel error {rel:.3f})")
    check("saturated throughput within bound",
          rel < THROUGHPUT_ERROR_BOUND,
          f"rel error {rel:.3f} < {THROUGHPUT_ERROR_BOUND}")

    # 4. The autotuned config meets its SLO in a live run.
    slo = SLO(p99_ms=80.0)
    tuned, tuned_prediction = model.autotune(slo, arrival_rate=0.25 * capacity)
    print(f"autotune for p99 <= {slo.p99_ms:.0f} ms at "
          f"{0.25 * capacity:.0f} req/s -> batch {tuned.max_batch_size}, "
          f"window {tuned.max_latency_ms} ms, {tuned.num_workers} worker(s) "
          f"(predicted p99 {tuned_prediction.p99_ms:.1f} ms)")
    with Server(batching=tuned) as server:
        server.register("default", servable)
        generator = TrafficGenerator(server, seed=0)
        tuned_report = generator.run(
            poisson_trace(0.25 * capacity, 3.0, seed=3), deadline_ms=1000.0)
    print(f"  observed p99 {tuned_report.p99_ms():.1f} ms over "
          f"{tuned_report.sent} requests")
    check("autotuned config meets its SLO live",
          tuned_report.ok == tuned_report.sent
          and tuned_report.p99_ms() <= slo.p99_ms,
          f"observed p99 {tuned_report.p99_ms():.1f} ms <= {slo.p99_ms:.0f} ms")

    # 5. Admission control sheds adversarial overload as 429s, and what is
    #    served still meets its deadline.
    admission = AdmissionController(model, config, max_delay_ms=100.0)
    with Server(batching=config, admission=admission) as server:
        server.register("default", servable)
        generator = TrafficGenerator(server, seed=0)
        storm = generator.run(
            adversarial_trace(3.0 * capacity, 1.2, spike_every_s=0.3, seed=4),
            deadline_ms=400.0)
        stats = server.stats()["default@1"]
    summary = storm.summary()
    print(f"adversarial storm (3x capacity, spikes): {summary}")
    check("admission shed part of the storm (429)",
          storm.count("overloaded") > 0, f"{storm.count('overloaded')} shed")
    check("admitted traffic was served",
          storm.ok > 0, f"{storm.ok} served")
    check("zero deadline-violating responses (storm)",
          storm.deadline_violations() == 0,
          f"{storm.deadline_violations()} late successes")
    check("every arrival accounted for",
          sum(storm.count(o) for o in
              ("ok", "expired", "overloaded", "shed", "rejected", "error"))
          == storm.sent, f"{summary}")
    check("batcher counters conserve accepted traffic",
          stats["requests"] == stats["served"] + stats["expired"]
          + stats["shed"] + stats["errors"], f"{stats}")

    print("capacity smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
