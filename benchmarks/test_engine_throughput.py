"""Engine and pipeline throughput benchmarks (the ``BENCH_*`` trajectory).

Measures the three layers of the training fast path and records them in
``BENCH_engine.json`` at the repo root so future perf PRs are judged against
a tracked baseline:

* training steps/sec of the autograd engine — seed-compatible path
  (primitive-composed ops, tape-on inference, float64) vs the fused float64
  and fused float32 paths;
* inference throughput with and without the ``no_grad`` tape bypass;
* end-to-end ``Controller.run`` — the seed sequential/float64 path vs the
  parallel + float32 fast path (the acceptance criterion: ≥2×).

Run with ``pytest benchmarks/test_engine_throughput.py`` (the ``bench``
marker keeps it out of tier-1).
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone

import numpy as np
import pytest

from repro.core import Controller, ControllerConfig, Task
from repro.kg import GraphSpec
from repro.modules import ZslKgModule
from repro.nn import (MLP, TrainConfig, default_dtype, predict_proba,
                      seed_compat_mode, train_classifier)
from repro.synth import WorldSpec
from repro.workspace import Workspace, WorkspaceSpec

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                          "BENCH_engine.json")


def update_bench(section: str, payload: dict) -> None:
    record = {}
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    record["created"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
    record.setdefault("host", {
        "cpus": os.cpu_count(),
        "numpy": np.__version__,
        "python": platform.python_version(),
    })
    record[section] = payload
    with open(BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=False)
        handle.write("\n")


# --------------------------------------------------------------------------- #
# Layer 1: raw engine throughput
# --------------------------------------------------------------------------- #
TRAIN_N, TRAIN_D, TRAIN_C = 512, 64, 10
TRAIN_EPOCHS = 20


def _train_once(dtype=None, compat=False) -> float:
    """Train a backbone-sized MLP and return wall-clock seconds."""
    rng = np.random.default_rng(0)
    features = rng.normal(size=(TRAIN_N, TRAIN_D))
    labels = rng.integers(0, TRAIN_C, size=TRAIN_N)
    import contextlib
    start = time.perf_counter()
    with contextlib.ExitStack() as stack:
        if compat:
            stack.enter_context(seed_compat_mode())
        if dtype is not None:
            stack.enter_context(default_dtype(dtype))
        model = MLP(TRAIN_D, [128, 128], TRAIN_C, rng=np.random.default_rng(1))
        train_classifier(model, features, labels,
                         TrainConfig(epochs=TRAIN_EPOCHS, batch_size=64, seed=0))
    return time.perf_counter() - start


def test_training_steps_per_sec():
    steps = TRAIN_EPOCHS * (TRAIN_N // 64)
    # Warm up BLAS/caches, then measure.
    _train_once()
    timings = {
        "seed_compat_float64": _train_once(compat=True),
        "fused_float64": _train_once(),
        "fused_float32": _train_once(dtype=np.float32),
    }
    result = {name: round(steps / seconds, 1)
              for name, seconds in timings.items()}
    result["fused_float32_speedup_vs_seed"] = round(
        timings["seed_compat_float64"] / timings["fused_float32"], 2)
    update_bench("training_steps_per_sec", result)
    assert result["fused_float32_speedup_vs_seed"] > 1.0


def test_inference_throughput():
    rng = np.random.default_rng(2)
    features = rng.normal(size=(4096, TRAIN_D))
    model = MLP(TRAIN_D, [128, 128], TRAIN_C, rng=np.random.default_rng(3))

    def measure(compat: bool, repeats: int = 20) -> float:
        import contextlib
        with contextlib.ExitStack() as stack:
            if compat:
                stack.enter_context(seed_compat_mode())
            predict_proba(model, features)  # warm-up
            start = time.perf_counter()
            for _ in range(repeats):
                predict_proba(model, features, batch_size=None)
            elapsed = time.perf_counter() - start
        return repeats * len(features) / elapsed

    result = {
        "seed_compat_tape_examples_per_sec": round(measure(compat=True), 0),
        "no_grad_examples_per_sec": round(measure(compat=False), 0),
    }
    result["no_grad_speedup"] = round(
        result["no_grad_examples_per_sec"]
        / result["seed_compat_tape_examples_per_sec"], 2)
    update_bench("inference_throughput", result)
    assert result["no_grad_speedup"] > 1.0


# --------------------------------------------------------------------------- #
# Layer 2: end-to-end Controller.run on the synthetic workload
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def bench_task():
    spec = WorkspaceSpec(graph=GraphSpec(num_filler_concepts=300, seed=0),
                         world=WorldSpec(seed=0),
                         scads_images_per_concept=30, seed=0)
    workspace = Workspace(spec)
    split = workspace.make_task_split("fmd", shots=5, split_seed=0)
    return Task.from_split(split, scads=workspace.scads,
                           backbone=workspace.backbone("resnet50"),
                           wanted_num_related_class=3,
                           images_per_related_class=8)


def _run_controller(task, parallel: bool, dtype, compat: bool,
                    repeats: int = 3) -> float:
    """Best-of-``repeats`` wall clock of a full paper-default-budget run.

    Best-of-N because the reference container is a single shared CPU: the
    minimum is the least-perturbed observation of each path.
    """
    import contextlib
    timings = []
    for _ in range(repeats):
        # Clear the ZSL-KG pretraining cache so every run trains from scratch.
        ZslKgModule._pretrained_cache.clear()
        config = ControllerConfig(parallel_modules=parallel, dtype=dtype,
                                  seed=0)
        controller = Controller(config=config)  # the four default modules
        start = time.perf_counter()
        with contextlib.ExitStack() as stack:
            if compat:
                stack.enter_context(seed_compat_mode())
            controller.run(task)
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_controller_seed_vs_fast_path(bench_task):
    """Acceptance criterion: parallel + float32 fast path ≥2× the seed path."""
    # Warm BLAS/caches once before timing anything.
    _run_controller(bench_task, parallel=False, dtype=None, compat=False,
                    repeats=1)
    seed_seconds = _run_controller(bench_task, parallel=False, dtype=None,
                                   compat=True)
    fast_seconds = _run_controller(bench_task, parallel=True, dtype="float32",
                                   compat=False)
    # Secondary decomposition so the trajectory shows where the time goes.
    fused_sequential_f64 = _run_controller(bench_task, parallel=False,
                                           dtype=None, compat=False,
                                           repeats=1)
    speedup = seed_seconds / fast_seconds
    update_bench("controller_run", {
        "workload": ("fmd 5-shot, tiny workspace, four paper-default modules "
                     "+ end model, best of 3 runs"),
        "seed_sequential_float64_sec": round(seed_seconds, 2),
        "fused_sequential_float64_sec": round(fused_sequential_f64, 2),
        "fast_parallel_float32_sec": round(fast_seconds, 2),
        "speedup_fast_vs_seed": round(speedup, 2),
    })
    print(f"\nController.run: seed {seed_seconds:.2f}s -> "
          f"fast {fast_seconds:.2f}s ({speedup:.2f}x)")
    assert speedup >= 2.0, (
        f"fast path must be >=2x the seed sequential/float64 path, "
        f"got {speedup:.2f}x")
