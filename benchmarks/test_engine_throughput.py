"""Engine and pipeline throughput benchmarks (the ``BENCH_*`` trajectory).

Measures the three layers of the training fast path and records them in
``BENCH_engine.json`` at the repo root so future perf PRs are judged against
a tracked baseline:

* training steps/sec of the autograd engine — seed-compatible path
  (primitive-composed ops, tape-on inference, float64) vs the fused float64
  and fused float32 paths;
* inference throughput with and without the ``no_grad`` tape bypass;
* end-to-end ``Controller.run`` — the seed sequential/float64 path vs the
  parallel + float32 fast path (the acceptance criterion: ≥2×).

Run with ``pytest benchmarks/test_engine_throughput.py`` (the ``bench``
marker keeps it out of tier-1).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _bench_lib import update_bench_record

from repro.core import Controller, ControllerConfig, Task
from repro.kg import GraphSpec
from repro.modules import ZslKgModule
from repro.nn import (MLP, Adam, GraphReplay, TrainConfig, default_dtype,
                      predict_proba, seed_compat_mode, train_classifier)
from repro.nn.modules import Linear, Module, ReLU
from repro.synth import WorldSpec
from repro.workspace import Workspace, WorkspaceSpec

BENCH_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                          "BENCH_engine.json")


def update_bench(section: str, payload: dict) -> None:
    update_bench_record(BENCH_PATH, section, payload)


# --------------------------------------------------------------------------- #
# Layer 1: raw engine throughput
# --------------------------------------------------------------------------- #
# Three training-loop shapes, each measured on the seed-compatible path, the
# fused eager paths, and the graph replay executor (``replay_*`` rows):
#
# * ``backbone_shaped`` — the large MLP of PR 1's baseline (BLAS-dominated,
#   so replay's per-step Python savings show least here);
# * ``task_shaped``     — the loop the pipeline actually runs all day: the
#   task backbone (24 -> 48 -> 32) plus head on a few-shot dataset;
# * ``pretrain_shaped`` — the ZSL-KG class-encoder pretrain step (full-batch
#   L2 + Adam, the hot spot called out by ROADMAP), stepped exactly as
#   ``zsl_kg.py`` does (training-loss scalar elided under replay).
TRAIN_N, TRAIN_D, TRAIN_C = 512, 64, 10
TRAIN_EPOCHS = 20

TASK_N, TASK_D, TASK_C = 50, 24, 10
TASK_EPOCHS = 120

PRE_N, PRE_D, PRE_H, PRE_OUT = 30, 64, 128, 32
PRE_EPOCHS = 600

# ``fixmatch_shaped`` — the two-view consistency step (the most expensive
# module in the pipeline): a pseudo-label inference forward on the weak
# unlabeled view plus one compiled DAG step (shared model on labeled-weak +
# unlabeled-strong views, weighted-sum loss), driven exactly as
# ``modules/fixmatch.py`` drives it.
FIX_L, FIX_U, FIX_D, FIX_C = 20, 64, 24, 10
FIX_STEPS = 300


def _train_once(dtype=None, compat=False, replay=False, shape="backbone") -> float:
    """Train one loop shape and return wall-clock seconds."""
    rng = np.random.default_rng(0)
    if shape == "backbone":
        n, d, c, epochs, batch, hidden = (TRAIN_N, TRAIN_D, TRAIN_C,
                                          TRAIN_EPOCHS, 64, [128, 128])
    else:
        n, d, c, epochs, batch, hidden = (TASK_N, TASK_D, TASK_C,
                                          TASK_EPOCHS, 32, [48, 32])
    features = rng.normal(size=(n, d))
    labels = rng.integers(0, c, size=n)
    import contextlib
    start = time.perf_counter()
    with contextlib.ExitStack() as stack:
        if compat:
            stack.enter_context(seed_compat_mode())
        if dtype is not None:
            stack.enter_context(default_dtype(dtype))
        model = MLP(d, hidden, c, rng=np.random.default_rng(1))
        train_classifier(model, features, labels,
                         TrainConfig(epochs=epochs, batch_size=batch, seed=0,
                                     momentum=0.9, replay=replay))
    return time.perf_counter() - start


class _ClassEncoder(Module):
    """The ZSL-KG GraphClassEncoder architecture."""

    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(PRE_D, PRE_H, rng=rng)
        self.activation = ReLU()
        self.fc2 = Linear(PRE_H, PRE_OUT, rng=rng)

    def forward(self, x):
        return self.fc2(self.activation(self.fc1(x)))


def _pretrain_once(dtype=None, compat=False, replay=False) -> float:
    """The ZSL-KG pretrain step loop, as ``zsl_kg._pretrain`` drives it."""
    import contextlib
    with contextlib.ExitStack() as stack:
        if compat:
            stack.enter_context(seed_compat_mode())
        if dtype is not None:
            stack.enter_context(default_dtype(dtype))
        dt = np.float32 if dtype is not None else np.float64
        train_x = np.random.default_rng(2).normal(size=(PRE_N, PRE_D)).astype(dt)
        train_y = np.random.default_rng(3).normal(size=(PRE_N, PRE_OUT)).astype(dt)
        encoder = _ClassEncoder(np.random.default_rng(4))
        optimizer = Adam(encoder.parameters(), lr=1e-2)
        stepper = GraphReplay(encoder, optimizer, loss="l2", enabled=replay)
        start = time.perf_counter()
        for _ in range(PRE_EPOCHS):
            stepper.step(train_x, train_y, compute_loss=False)
        return time.perf_counter() - start


def _fixmatch_once(dtype=None, compat=False, replay=False) -> float:
    """The FixMatch two-view consistency loop, as ``FixMatchModule`` runs it."""
    import contextlib

    from repro.modules.fixmatch import consistency_step
    from repro.nn import SGD

    with contextlib.ExitStack() as stack:
        if compat:
            stack.enter_context(seed_compat_mode())
        if dtype is not None:
            stack.enter_context(default_dtype(dtype))
        dt = np.dtype(np.float32 if dtype is not None else np.float64)
        rng = np.random.default_rng(5)
        labeled_x = rng.normal(size=(FIX_L, FIX_D)).astype(dt)
        labeled_y = rng.integers(0, FIX_C, size=FIX_L)
        unlabeled_x = rng.normal(size=(FIX_U, FIX_D)).astype(dt)
        strong_x = rng.normal(size=(FIX_U, FIX_D)).astype(dt)
        cons_w = np.asarray(1.0, dtype=dt)
        model = MLP(FIX_D, [48, 32], FIX_C, rng=np.random.default_rng(6))
        optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9,
                        nesterov=True)
        stepper = GraphReplay(model, optimizer, enabled=replay)
        model.train()
        start = time.perf_counter()
        for _ in range(FIX_STEPS):
            consistency_step(stepper, model, labeled_x, labeled_y,
                             unlabeled_x, strong_x, cons_w, 0.6, dt)
        return time.perf_counter() - start


def _measure(fn, repeats=7, **kwargs) -> float:
    """Best-of-``repeats`` wall clock (shared-CPU noise suppression)."""
    return min(fn(**kwargs) for _ in range(repeats))


def _loop_rows(fn, steps, **extra) -> dict:
    timings = {
        "seed_compat_float64": _measure(fn, compat=True, **extra),
        "fused_float64": _measure(fn, **extra),
        "fused_float32": _measure(fn, dtype=np.float32, **extra),
        "replay_float64": _measure(fn, replay=True, **extra),
        "replay_float32": _measure(fn, dtype=np.float32, replay=True, **extra),
    }
    rows = {name: round(steps / seconds, 1) for name, seconds in timings.items()}
    rows["fused_float32_speedup_vs_seed"] = round(
        timings["seed_compat_float64"] / timings["fused_float32"], 2)
    rows["replay_float32_speedup_vs_fused_float32"] = round(
        timings["fused_float32"] / timings["replay_float32"], 2)
    rows["replay_float32_speedup_vs_seed"] = round(
        timings["seed_compat_float64"] / timings["replay_float32"], 2)
    return rows


def test_training_steps_per_sec():
    # Warm up BLAS/caches, then measure.
    _train_once()
    result = {
        "backbone_shaped": dict(
            workload=f"MLP {TRAIN_D}->[128,128]->{TRAIN_C}, batch 64, "
                     f"n={TRAIN_N} (PR 1 baseline shape)",
            **_loop_rows(_train_once, TRAIN_EPOCHS * (TRAIN_N // 64),
                         shape="backbone")),
        "task_shaped": dict(
            workload=f"MLP {TASK_D}->[48,32]->{TASK_C}, batch 32, n={TASK_N} "
                     "(few-shot fine-tuning shape)",
            **_loop_rows(_train_once, TASK_EPOCHS * 2, shape="task")),
        "pretrain_shaped": dict(
            workload=f"encoder {PRE_D}->{PRE_H}->{PRE_OUT}, full batch "
                     f"{PRE_N}, Adam+L2 (ZSL-KG pretrain shape)",
            **_loop_rows(_pretrain_once, PRE_EPOCHS)),
        "fixmatch_shaped": dict(
            workload=f"two-view consistency step: MLP {FIX_D}->[48,32]->"
                     f"{FIX_C}, labeled {FIX_L} + unlabeled {FIX_U}, "
                     "pseudo-label forward + weighted-sum DAG step",
            **_loop_rows(_fixmatch_once, FIX_STEPS)),
    }
    update_bench("training_steps_per_sec", result)
    assert result["backbone_shaped"]["fused_float32_speedup_vs_seed"] > 1.0
    # The replay executor's acceptance bar: >=1.5x over the fused float32
    # eager path on the overhead-dominated pipeline loops (the big-BLAS
    # backbone shape reports its honest, smaller gain alongside).
    replay_gains = [result[k]["replay_float32_speedup_vs_fused_float32"]
                    for k in ("task_shaped", "pretrain_shaped")]
    assert max(replay_gains) >= 1.5, replay_gains
    assert min(replay_gains) >= 1.2, replay_gains
    # The DAG generalization's acceptance bar (ISSUE 4): the FixMatch
    # two-view step must replay >=1.2x over fused eager float32.
    assert result["fixmatch_shaped"][
        "replay_float32_speedup_vs_fused_float32"] >= 1.2, \
        result["fixmatch_shaped"]


def test_inference_throughput():
    rng = np.random.default_rng(2)
    features = rng.normal(size=(4096, TRAIN_D))
    model = MLP(TRAIN_D, [128, 128], TRAIN_C, rng=np.random.default_rng(3))

    def measure(compat: bool, repeats: int = 20) -> float:
        import contextlib
        with contextlib.ExitStack() as stack:
            if compat:
                stack.enter_context(seed_compat_mode())
            predict_proba(model, features)  # warm-up
            start = time.perf_counter()
            for _ in range(repeats):
                predict_proba(model, features, batch_size=None)
            elapsed = time.perf_counter() - start
        return repeats * len(features) / elapsed

    result = {
        "seed_compat_tape_examples_per_sec": round(measure(compat=True), 0),
        "no_grad_examples_per_sec": round(measure(compat=False), 0),
    }
    result["no_grad_speedup"] = round(
        result["no_grad_examples_per_sec"]
        / result["seed_compat_tape_examples_per_sec"], 2)
    update_bench("inference_throughput", result)
    assert result["no_grad_speedup"] > 1.0


# --------------------------------------------------------------------------- #
# Layer 2: end-to-end Controller.run on the synthetic workload
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def bench_task():
    spec = WorkspaceSpec(graph=GraphSpec(num_filler_concepts=300, seed=0),
                         world=WorldSpec(seed=0),
                         scads_images_per_concept=30, seed=0)
    workspace = Workspace(spec)
    split = workspace.make_task_split("fmd", shots=5, split_seed=0)
    return Task.from_split(split, scads=workspace.scads,
                           backbone=workspace.backbone("resnet50"),
                           wanted_num_related_class=3,
                           images_per_related_class=8)


def _run_controller(task, parallel: bool, dtype, compat: bool,
                    replay: bool = True, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall clock of a full paper-default-budget run.

    Best-of-N because the reference container is a single shared CPU: the
    minimum is the least-perturbed observation of each path.
    """
    import contextlib
    timings = []
    for _ in range(repeats):
        # Clear the ZSL-KG pretraining cache so every run trains from scratch.
        ZslKgModule._pretrained_cache.clear()
        config = ControllerConfig(parallel_modules=parallel, dtype=dtype,
                                  replay=replay, seed=0)
        controller = Controller(config=config)  # the four default modules
        start = time.perf_counter()
        with contextlib.ExitStack() as stack:
            if compat:
                stack.enter_context(seed_compat_mode())
            controller.run(task)
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_controller_seed_vs_fast_path(bench_task):
    """Acceptance criterion: parallel + float32 fast path ≥2× the seed path."""
    # Warm BLAS/caches once before timing anything.
    _run_controller(bench_task, parallel=False, dtype=None, compat=False,
                    repeats=1)
    seed_seconds = _run_controller(bench_task, parallel=False, dtype=None,
                                   compat=True)
    fast_seconds = _run_controller(bench_task, parallel=True, dtype="float32",
                                   compat=False)
    # Secondary decompositions so the trajectory shows where the time goes:
    # fused eager float64, and the fast path with the replay executor off
    # (isolating replay's end-to-end contribution).
    fused_sequential_f64 = _run_controller(bench_task, parallel=False,
                                           dtype=None, compat=False,
                                           repeats=1)
    fast_noreplay_seconds = _run_controller(bench_task, parallel=True,
                                            dtype="float32", compat=False,
                                            replay=False)
    speedup = seed_seconds / fast_seconds
    update_bench("controller_run", {
        "workload": ("fmd 5-shot, tiny workspace, four paper-default modules "
                     "+ end model, best of 3 runs"),
        "seed_sequential_float64_sec": round(seed_seconds, 2),
        "fused_sequential_float64_sec": round(fused_sequential_f64, 2),
        "fast_parallel_float32_noreplay_sec": round(fast_noreplay_seconds, 2),
        "fast_parallel_float32_sec": round(fast_seconds, 2),
        "speedup_fast_vs_seed": round(speedup, 2),
        "speedup_replay_vs_noreplay": round(
            fast_noreplay_seconds / fast_seconds, 2),
    })
    print(f"\nController.run: seed {seed_seconds:.2f}s -> "
          f"fast {fast_seconds:.2f}s ({speedup:.2f}x, "
          f"replay contribution {fast_noreplay_seconds / fast_seconds:.2f}x)")
    assert speedup >= 2.0, (
        f"fast path must be >=2x the seed sequential/float64 path, "
        f"got {speedup:.2f}x")
    # The replay executor must not regress the end-to-end fast path.
    assert fast_seconds <= fast_noreplay_seconds * 1.05, (
        f"replay-on fast path ({fast_seconds:.2f}s) regressed vs replay-off "
        f"({fast_noreplay_seconds:.2f}s)")
