"""Replay smoke check for CI: the FixMatch two-view loop must replay.

Runs the FixMatch consistency loop (pseudo-label forward + two-view
weighted-sum step, exactly as ``repro.modules.fixmatch`` drives it) with the
graph replay executor forced on, and fails if:

* any step falls back to eager (``ReplayStats.fallback_count > 0``) — the
  regression this PR exists to catch;
* the replayed loop is slower than the fused eager loop (ratio < 1.0);
* the replayed parameters are not bit-identical to the eager ones.

Perf ratios are advisory on shared CI runners (the workflow step uses
``continue-on-error``); the fallback and bit-identity checks are exact
everywhere.  Run with ``PYTHONPATH=src python benchmarks/replay_smoke.py``.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.modules.fixmatch import consistency_step
from repro.nn import MLP, GraphReplay, ReplayStats, SGD, default_dtype

STEPS = 150
L, U, D, C = 20, 64, 24, 10


def _run_loop(replay: bool, stats: ReplayStats):
    """The FixMatch two-view loop; returns (params, wall-clock seconds)."""
    with default_dtype(np.float32):
        dt = np.dtype(np.float32)
        rng = np.random.default_rng(0)
        labeled_x = rng.normal(size=(L, D)).astype(dt)
        labeled_y = rng.integers(0, C, size=L)
        unlabeled_x = rng.normal(size=(U, D)).astype(dt)
        strong_x = rng.normal(size=(U, D)).astype(dt)
        cons_w = np.asarray(1.0, dtype=dt)
        model = MLP(D, [48, 32], C, rng=np.random.default_rng(1))
        optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9,
                        nesterov=True)
        stepper = GraphReplay(model, optimizer, enabled=replay, stats=stats)
        model.train()
        start = time.perf_counter()
        for _ in range(STEPS):
            consistency_step(stepper, model, labeled_x, labeled_y,
                             unlabeled_x, strong_x, cons_w, 0.6, dt)
        elapsed = time.perf_counter() - start
        return [p.data.copy() for p in model.parameters()], elapsed


def main() -> int:
    replay_stats = ReplayStats()
    eager_stats = ReplayStats()
    # Warm-up, then best-of-3 on each path (shared-runner noise suppression).
    _run_loop(True, ReplayStats())
    replay_secs, eager_secs = [], []
    for _ in range(3):
        replay_params, secs = _run_loop(True, replay_stats)
        replay_secs.append(secs)
        eager_params, secs = _run_loop(False, eager_stats)
        eager_secs.append(secs)
    ratio = min(eager_secs) / min(replay_secs)

    print(f"replay stats: {replay_stats}")
    print(f"replay {STEPS / min(replay_secs):.0f} steps/s, "
          f"eager {STEPS / min(eager_secs):.0f} steps/s, "
          f"ratio {ratio:.2f}x")

    failures = []
    if replay_stats.fallback_count or replay_stats.eager_steps:
        failures.append(f"replay fell back to eager: {replay_stats.fallbacks}")
    if replay_stats.replays == 0:
        failures.append("nothing replayed")
    for got, want in zip(replay_params, eager_params):
        if not np.array_equal(got, want):
            failures.append("replayed parameters differ from eager")
            break
    if ratio < 1.0:
        failures.append(f"replay slower than eager ({ratio:.2f}x < 1.0x)")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("replay smoke: OK (zero fallbacks, bit-identical, "
              f"{ratio:.2f}x)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
