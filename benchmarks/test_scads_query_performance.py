"""System benchmark — SCADS auxiliary-data selection latency.

Section 3.1 argues that graph-based selection scales with the number of
*concepts* (|Q_YS| << |A|), unlike visual-similarity selection which compares
against every auxiliary *image*.  This bench measures both so the claim can
be checked on the synthetic workspace: the SCADS query should be markedly
faster than the per-image visual scan while selecting comparable data.
"""

import numpy as np
import pytest

from _bench_lib import write_report


@pytest.fixture(scope="module")
def fmd_classes(bench_workspace):
    return bench_workspace.dataset("fmd").classes


def test_scads_graph_query_latency(benchmark, bench_workspace, fmd_classes):
    """Latency of the graph-based SCADS query (the system's selection path)."""
    rng = np.random.default_rng(0)

    def query():
        return bench_workspace.scads.select(fmd_classes, num_related_concepts=5,
                                            images_per_concept=20, rng=rng)

    selection = benchmark(query)
    assert not selection.is_empty()


def test_visual_similarity_scan_latency(benchmark, bench_workspace, fmd_classes):
    """Latency of the strawman visual-similarity scan over all auxiliary images.

    For every target class, computes the distance from the class's labeled
    examples to *every* auxiliary image and keeps the closest ones — the
    pairwise approach the paper argues does not scale.
    """
    scads = bench_workspace.scads.scads
    concepts = scads.concepts_with_images()
    all_images = np.concatenate([scads.get_images(c) for c in concepts])
    world = bench_workspace.world
    queries = np.stack([world.prototype(spec.concept) for spec in fmd_classes])

    def scan():
        picked = []
        for query in queries:
            distances = np.linalg.norm(all_images - query, axis=1)
            picked.append(np.argsort(distances)[:100])
        return np.concatenate(picked)

    result = benchmark(scan)
    assert len(result) == len(fmd_classes) * 100


def test_selection_quality_report(benchmark, bench_workspace, fmd_classes):
    """Report the visual relevance of SCADS-selected concepts (per prune level)."""

    def measure():
        rows = {}
        for level in (None, 0, 1):
            bundle = (bench_workspace.scads.pruned(fmd_classes, level)
                      if level is not None else bench_workspace.scads)
            selection = bundle.select(fmd_classes, num_related_concepts=5,
                                      images_per_concept=5,
                                      rng=np.random.default_rng(0))
            distances = []
            for spec in fmd_classes:
                for concept in selection.per_target_concepts.get(spec.name, []):
                    distances.append(bench_workspace.world.prototype_distance(
                        spec.concept, concept))
            label = "no_pruning" if level is None else f"prune_level_{level}"
            rows[label] = float(np.mean(distances))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_report("scads_selection_quality",
                 "SCADS selection quality — mean visual distance of selected "
                 "concepts to their target class\n"
                 + "\n".join(f"  {name:>15}: {value:.3f}" for name, value in rows.items()))
    assert rows["no_pruning"] < rows["prune_level_1"]
