"""Table 3 — OfficeHome-Product and OfficeHome-Clipart on splits 1 and 2.

The appendix repeats Table 1 on two additional train/test splits to show the
trends are split-independent.  By default this bench runs split 1 only (set
``REPRO_BENCH_TABLE3_SPLITS=1,2`` or ``REPRO_BENCH_FULL=1`` for both).
"""

import os

import pytest

from _bench_lib import write_report
from repro.evaluation import format_results_table
from repro.evaluation.runner import TABLE_METHODS, TABLE_PRUNED_METHODS

DATASETS = ("officehome_product", "officehome_clipart")
SHOTS = (1, 5, 20)
METHODS = tuple(TABLE_METHODS) + tuple(TABLE_PRUNED_METHODS)


def _extra_splits():
    if os.environ.get("REPRO_BENCH_FULL", "0") == "1":
        default = "1,2"
    else:
        default = "1"
    raw = os.environ.get("REPRO_BENCH_TABLE3_SPLITS", default)
    return [int(s) for s in raw.split(",") if s.strip()]


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3(benchmark, dataset, record_cache, bench_grid):
    splits = _extra_splits()

    def regenerate():
        return record_cache.collect(METHODS, [dataset], SHOTS, bench_grid,
                                    split_seeds=splits)

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    blocks = []
    for split_seed in splits:
        blocks.append(format_results_table(
            records, dataset=dataset, shots_list=list(SHOTS), methods=list(METHODS),
            backbones=bench_grid.backbones, split_seed=split_seed,
            title=f"Table 3 — {dataset} (split {split_seed})"))
    write_report(f"table3_{dataset}", "\n\n".join(blocks))

    mean = lambda rs: sum(r.accuracy for r in rs) / len(rs)
    taglets = [r for r in records if r.method == "taglets" and r.shots == 1]
    finetune = [r for r in records if r.method == "finetune" and r.shots == 1]
    assert mean(taglets) > mean(finetune)
