"""Backbone encoders: the stand-ins for ResNet-50 and BigTransfer.

A backbone maps a synthetic image (a flat feature grid) to an embedding that
downstream classification heads operate on.  A :class:`PretrainedBackbone`
carries frozen pretrained weights plus metadata about what it was pretrained
on; every module *instantiates* its own trainable copy so that fine-tuning in
one module never leaks into another — mirroring how the original system hands
each module a fresh copy of the pretrained encoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.modules import Linear, Module, MLP, ReLU, Sequential
from ..nn.tensor import Tensor

__all__ = ["BackboneSpec", "Encoder", "PretrainedBackbone", "ClassificationModel"]


@dataclass(frozen=True)
class BackboneSpec:
    """Architecture and provenance of a backbone."""

    name: str
    input_dim: int
    hidden_dims: tuple
    feature_dim: int
    #: description of the pretraining data ("imagenet1k" / "imagenet21k" analogs)
    pretraining: str = "none"

    def describe(self) -> str:
        return f"{self.name} (pretrained on {self.pretraining})"


class Encoder(Module):
    """The trunk network producing ``feature_dim`` embeddings."""

    def __init__(self, spec: BackboneSpec, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.spec = spec
        self.trunk = MLP(spec.input_dim, list(spec.hidden_dims), spec.feature_dim,
                         rng=rng)
        self.activation = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        return self.activation(self.trunk(x))

    @property
    def feature_dim(self) -> int:
        return self.spec.feature_dim


class PretrainedBackbone:
    """Frozen pretrained weights + metadata; a factory for trainable encoders."""

    def __init__(self, spec: BackboneSpec, state: Dict[str, np.ndarray],
                 pretrained_concepts: Sequence[str] = ()):
        self.spec = spec
        self._state = {k: v.copy() for k, v in state.items()}
        self.pretrained_concepts = list(pretrained_concepts)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def feature_dim(self) -> int:
        return self.spec.feature_dim

    @property
    def input_dim(self) -> int:
        return self.spec.input_dim

    def instantiate(self, rng: Optional[np.random.Generator] = None) -> Encoder:
        """Create a fresh trainable encoder initialized with the pretrained weights."""
        encoder = Encoder(self.spec, rng=rng)
        encoder.load_state_dict(self._state)
        return encoder

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {k: v.copy() for k, v in self._state.items()}


class ClassificationModel(Module):
    """Encoder + linear classification head, the unit every module fine-tunes."""

    def __init__(self, encoder: Encoder, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        self.encoder = encoder
        self.head = Linear(encoder.feature_dim, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.encoder(x))

    def features(self, x: Tensor) -> Tensor:
        return self.encoder(x)

    def replace_head(self, num_classes: int,
                     rng: Optional[np.random.Generator] = None) -> "ClassificationModel":
        """Swap in a fresh head (used between the auxiliary and target phases)."""
        self.head = Linear(self.encoder.feature_dim, num_classes, rng=rng)
        self.num_classes = num_classes
        return self

    def set_head_weights(self, weights: np.ndarray,
                         bias: Optional[np.ndarray] = None) -> None:
        """Set the head's weight matrix directly (used by the ZSL-KG module)."""
        weights = np.asarray(weights, dtype=self.head.weight.data.dtype)
        if weights.shape != (self.encoder.feature_dim, self.num_classes):
            raise ValueError(
                f"expected weights of shape ({self.encoder.feature_dim}, "
                f"{self.num_classes}), got {weights.shape}")
        self.head.weight.data = weights.copy()
        if bias is not None:
            if self.head.bias is None:
                raise ValueError("head has no bias parameter")
            self.head.bias.data = np.asarray(
                bias, dtype=self.head.bias.data.dtype).copy()

    @classmethod
    def from_backbone(cls, backbone: PretrainedBackbone, num_classes: int,
                      rng: Optional[np.random.Generator] = None) -> "ClassificationModel":
        return cls(backbone.instantiate(rng=rng), num_classes, rng=rng)
