"""Pretraining of backbone encoders on auxiliary concepts.

The paper uses two pretrained backbones:

* **ResNet-50 (ImageNet-1k)** — pretrained on a *subset* of the auxiliary
  universe, representing the common case where the backbone has not seen all
  the auxiliary data SCADS can access;
* **BiT (ImageNet-21k)** — pretrained on *all* of it.

:func:`pretrain_backbone` reproduces this by supervised pretraining of an
encoder + classification head on images of a chosen set of concepts from the
synthetic visual world and then discarding the head.  The two named builders
differ only in concept coverage (and capacity), which is exactly the axis
the paper varies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kg import vocabulary
from ..kg.graph import KnowledgeGraph
from ..nn.training import TrainConfig, train_classifier
from ..synth.world import VisualWorld
from .backbone import BackboneSpec, ClassificationModel, Encoder, PretrainedBackbone

__all__ = [
    "PretrainSpec",
    "pretrain_backbone",
    "resnet50_imagenet1k",
    "bit_imagenet21k",
    "BackboneRegistry",
    "default_registry",
]


@dataclass
class PretrainSpec:
    """Workload of a backbone pretraining run."""

    images_per_concept: int = 15
    epochs: int = 6
    batch_size: int = 128
    lr: float = 0.05
    seed: int = 0


def _concept_images(world: VisualWorld, concepts: Sequence[str],
                    images_per_concept: int,
                    rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    features: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    for label, concept in enumerate(concepts):
        images = world.sample_images(concept, images_per_concept, domain="natural",
                                     rng=rng)
        features.append(images)
        labels.append(np.full(images_per_concept, label, dtype=np.int64))
    return np.concatenate(features), np.concatenate(labels)


def pretrain_backbone(world: VisualWorld, concepts: Sequence[str],
                      backbone_spec: BackboneSpec,
                      pretrain_spec: Optional[PretrainSpec] = None) -> PretrainedBackbone:
    """Supervised pretraining of an encoder on the given concepts.

    The encoder + a throwaway linear head are trained to classify the
    concepts; the head is discarded and the trunk weights become the
    pretrained backbone.
    """
    if not concepts:
        raise ValueError("cannot pretrain on an empty concept list")
    pretrain_spec = pretrain_spec or PretrainSpec()
    rng = np.random.default_rng(pretrain_spec.seed)
    features, labels = _concept_images(world, concepts,
                                       pretrain_spec.images_per_concept, rng)
    encoder = Encoder(backbone_spec, rng=rng)
    model = ClassificationModel(encoder, num_classes=len(concepts), rng=rng)
    config = TrainConfig(epochs=pretrain_spec.epochs,
                         batch_size=pretrain_spec.batch_size,
                         lr=pretrain_spec.lr, momentum=0.9,
                         scheduler="multistep",
                         milestones=(max(pretrain_spec.epochs - 2, 1),),
                         seed=pretrain_spec.seed)
    train_classifier(model, features, labels, config)
    return PretrainedBackbone(backbone_spec, encoder.state_dict(),
                              pretrained_concepts=list(concepts))


def _image_concepts(graph: KnowledgeGraph) -> List[str]:
    """Concepts that carry images in the synthetic world (leaf-ish nodes)."""
    structural = {"entity", "material", "object", "food", "organism", "place",
                  "abstraction"}
    return [c for c in graph.concepts if c not in structural]


def resnet50_imagenet1k(world: VisualWorld, graph: KnowledgeGraph,
                        coverage: float = 0.35, feature_dim: int = 32,
                        pretrain_spec: Optional[PretrainSpec] = None,
                        seed: int = 0) -> PretrainedBackbone:
    """The ResNet-50 (ImageNet-1k) analog: pretrained on a subset of concepts.

    ImageNet-1k covers generic categories but not the specialized classes of
    the paper's target tasks, so the subset deliberately excludes the exact
    target-task classes (their relatives remain eligible).  This both matches
    the paper's setting — the ResNet backbone has *not* seen the target-task
    auxiliary data — and keeps the backbone independent of which evaluation
    datasets have been instantiated.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    rng = np.random.default_rng(seed)
    excluded = set(vocabulary.FMD_CLASSES) | set(vocabulary.OFFICE_HOME_CLASSES) \
        | set(vocabulary.GROCERY_CLASSES) | set(vocabulary.GROCERY_OOV_CLASSES)
    concepts = [c for c in _image_concepts(graph) if c not in excluded]
    count = max(2, int(len(concepts) * coverage))
    chosen = sorted(rng.choice(concepts, size=count, replace=False).tolist())
    spec = BackboneSpec(name="resnet50", input_dim=world.image_dim,
                        hidden_dims=(48,), feature_dim=feature_dim,
                        pretraining="imagenet1k")
    return pretrain_backbone(world, chosen, spec, pretrain_spec)


def bit_imagenet21k(world: VisualWorld, graph: KnowledgeGraph,
                    feature_dim: int = 48,
                    pretrain_spec: Optional[PretrainSpec] = None,
                    seed: int = 0) -> PretrainedBackbone:
    """The BiT (ImageNet-21k) analog: pretrained on all auxiliary concepts."""
    concepts = _image_concepts(graph)
    spec = BackboneSpec(name="bit", input_dim=world.image_dim,
                        hidden_dims=(64,), feature_dim=feature_dim,
                        pretraining="imagenet21k")
    pretrain_spec = pretrain_spec or PretrainSpec(seed=seed)
    return pretrain_backbone(world, concepts, spec, pretrain_spec)


class BackboneRegistry:
    """Caches pretrained backbones so the experiment grid pretrains each once."""

    def __init__(self, world: VisualWorld, graph: KnowledgeGraph):
        self.world = world
        self.graph = graph
        self._cache: Dict[str, PretrainedBackbone] = {}
        self._builders = {
            "resnet50": lambda: resnet50_imagenet1k(self.world, self.graph),
            "bit": lambda: bit_imagenet21k(self.world, self.graph),
        }

    def register(self, name: str, builder) -> None:
        """Register a custom backbone builder (any zero-argument callable)."""
        self._builders[name] = builder

    def available(self) -> List[str]:
        return sorted(self._builders)

    def get(self, name: str) -> PretrainedBackbone:
        if name not in self._builders:
            raise KeyError(f"unknown backbone {name!r}; known: {self.available()}")
        if name not in self._cache:
            self._cache[name] = self._builders[name]()
        return self._cache[name]


def default_registry(world: VisualWorld, graph: KnowledgeGraph) -> BackboneRegistry:
    """The registry with the paper's two backbones pre-registered."""
    return BackboneRegistry(world, graph)
