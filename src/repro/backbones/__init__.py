"""``repro.backbones`` — pretrained encoder analogs of ResNet-50 and BiT."""

from .backbone import (BackboneSpec, ClassificationModel, Encoder,
                       PretrainedBackbone)
from .pretrain import (BackboneRegistry, PretrainSpec, bit_imagenet21k,
                       default_registry, pretrain_backbone, resnet50_imagenet1k)

__all__ = [
    "BackboneSpec", "Encoder", "PretrainedBackbone", "ClassificationModel",
    "PretrainSpec", "pretrain_backbone", "resnet50_imagenet1k",
    "bit_imagenet21k", "BackboneRegistry", "default_registry",
]
