"""Semantic-tree utilities for the pruning experiments (paper Section 4.3).

Pruning simulates the scenario where only distantly-related auxiliary data is
available: for a target class ``c``,

* **prune level 0** removes ``c`` and all of its descendants from SCADS,
* **prune level 1** additionally removes ``c``'s parent and the parent's
  whole subtree.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from .graph import KnowledgeGraph

__all__ = ["PRUNE_NONE", "PRUNE_LEVEL_0", "PRUNE_LEVEL_1", "pruned_concepts",
           "prune_graph"]

PRUNE_NONE = None
PRUNE_LEVEL_0 = 0
PRUNE_LEVEL_1 = 1


def pruned_concepts(graph: KnowledgeGraph, target_class: str,
                    level: int) -> Set[str]:
    """Concepts removed when pruning SCADS around ``target_class`` at ``level``.

    Level 0: the class node and its descendants.
    Level 1: additionally the parent node and the parent's full subtree.
    Classes absent from the graph (out-of-vocabulary targets) prune nothing.
    """
    if level not in (PRUNE_LEVEL_0, PRUNE_LEVEL_1):
        raise ValueError(f"unsupported prune level {level!r}")
    target_class = KnowledgeGraph.normalize(target_class)
    if target_class not in graph:
        return set()
    removed: Set[str] = {target_class}
    removed |= graph.descendants(target_class)
    if level >= PRUNE_LEVEL_1:
        parent = graph.parent(target_class)
        if parent is not None:
            removed.add(parent)
            removed |= graph.descendants(parent)
    return removed


def prune_graph(graph: KnowledgeGraph, target_classes: Iterable[str],
                level: int) -> KnowledgeGraph:
    """Return a copy of ``graph`` pruned around every target class.

    ``level`` may be ``None`` (no pruning), 0, or 1.
    """
    if level is PRUNE_NONE:
        return graph.copy()
    removed: Set[str] = set()
    for cls in target_classes:
        removed |= pruned_concepts(graph, cls, level)
    pruned = graph.copy()
    pruned.remove_concepts(removed)
    return pruned
