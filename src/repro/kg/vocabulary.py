"""Curated concept vocabulary used to build the synthetic ConceptNet.

The original SCADS is built over ConceptNet 5.5 + ImageNet-21k, which cannot
be shipped offline.  Instead we curate a compact ontology that covers the
concepts the paper's four target tasks actually touch:

* the ten Flickr Material Database classes and their closely-related
  concepts (the ``plastic`` and ``stone`` neighbourhoods mirror Figure 4),
* the 65 Office-Home object classes grouped into semantic families,
* the 42 Grocery Store classes (with ``oatghurt`` and ``soygurt``
  intentionally *absent*, as in the paper, to exercise SCADS extensibility),
* a procedural "haystack" of filler concepts standing in for the rest of
  ImageNet-21k.

The graph generator (:mod:`repro.kg.generator`) expands every leaf class with
additional derived related concepts so that SCADS always has a pool of
semantically-close auxiliary classes to retrieve.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "TOP_LEVEL_DOMAINS",
    "MATERIAL_TREE",
    "FMD_CLASSES",
    "OFFICE_HOME_GROUPS",
    "OFFICE_HOME_CLASSES",
    "GROCERY_GROUPS",
    "GROCERY_CLASSES",
    "GROCERY_OOV_CLASSES",
    "GROCERY_OOV_ANCHORS",
    "RELATED_SUFFIXES",
    "RELATED_PREFIXES",
]

#: Children of the ontology root ``entity``.
TOP_LEVEL_DOMAINS: List[str] = [
    "material", "object", "food", "organism", "place", "abstraction",
]

#: Material taxonomy: FMD class -> closely related concepts (IsA children).
#: The ``plastic`` and ``stone`` neighbourhoods reproduce the concept lists
#: shown in the paper's Figure 4.
MATERIAL_TREE: Dict[str, List[str]] = {
    "fabric": ["cotton", "wool", "silk", "denim", "linen", "velvet", "felt",
               "canvas", "tweed", "corduroy"],
    "foliage": ["leaf", "fern", "grass_blade", "ivy", "moss", "shrub",
                "palm_frond", "pine_needle", "bamboo_leaf", "vine"],
    "glass": ["window_pane", "wine_glass", "glass_bottle", "mirror", "lens",
              "crystal", "glass_jar", "stained_glass", "tumbler", "vial"],
    "leather": ["suede", "cowhide", "leather_belt", "leather_jacket",
                "leather_boot", "saddle", "wallet_leather", "leather_strap",
                "patent_leather", "rawhide"],
    "metal": ["steel", "aluminum", "copper", "brass", "iron", "tin_can",
              "chrome", "wire_mesh", "sheet_metal", "bronze"],
    "paper": ["writing", "card", "postcard", "cardboard", "newspaper",
              "envelope", "tissue_paper", "notebook_paper", "wrapping_paper",
              "paper_towel"],
    "plastic": ["cling_film", "plastic_bag", "cellophane", "plastic_wrap",
                "recycling_bin", "blister_pack", "nylon", "packaging",
                "sheeting", "dixie_cup"],
    "stone": ["stonework", "marble", "brick", "rock", "menhir", "masonry",
              "curbstone", "stone_wall", "megalith", "mud_brick"],
    "water": ["puddle", "wave", "raindrop", "waterfall", "pond_surface",
              "ripple", "splash", "dew", "stream", "ice_water"],
    "wood": ["plank", "plywood", "oak_board", "timber", "bark", "driftwood",
             "wooden_crate", "parquet", "log", "sawdust"],
}

#: The ten Flickr Material Database target classes.
FMD_CLASSES: List[str] = list(MATERIAL_TREE.keys())

#: Office-Home classes grouped by semantic family (65 classes).
OFFICE_HOME_GROUPS: Dict[str, List[str]] = {
    "electronics": ["computer", "keyboard", "laptop", "monitor", "mouse",
                    "printer", "webcam", "speaker", "radio", "tv",
                    "telephone", "calculator", "batteries", "fan"],
    "furniture": ["bed", "chair", "couch", "desk_lamp", "lamp_shade",
                  "shelf", "table", "file_cabinet", "curtains"],
    "stationery": ["eraser", "folder", "marker", "notebook", "paper_clip",
                   "pen", "pencil", "postit_notes", "push_pin", "ruler",
                   "calendar", "clipboards", "scissors"],
    "kitchenware": ["bottle", "fork", "kettle", "knives", "mug", "oven",
                    "pan", "refrigerator", "sink", "spoon", "soda"],
    "tools": ["drill", "hammer", "screwdriver", "mop", "bucket",
              "trash_can", "toolbox_item"],
    "personal_items": ["backpack", "flipflops", "glasses", "helmet",
                       "sneakers", "toothbrush", "toys", "alarm_clock",
                       "candles", "flowers", "exit_sign"],
}

OFFICE_HOME_CLASSES: List[str] = [
    cls for group in OFFICE_HOME_GROUPS.values() for cls in group
]

#: Grocery Store classes grouped by coarse family.  ``oatghurt`` and
#: ``soygurt`` are part of the target task but deliberately not in the
#: vocabulary (see :data:`GROCERY_OOV_CLASSES`).
GROCERY_GROUPS: Dict[str, List[str]] = {
    "fruit": ["apple", "avocado", "banana", "kiwi", "lemon", "lime", "mango",
              "melon", "nectarine", "orange", "papaya", "passion_fruit",
              "peach", "pear", "pineapple", "plum", "pomegranate",
              "red_grapefruit", "satsumas"],
    "vegetable": ["asparagus", "aubergine", "cabbage", "carrots", "cucumber",
                  "garlic", "ginger", "leek", "mushroom", "onion", "pepper",
                  "potato", "red_beet", "tomato", "zucchini"],
    "carton_item": ["juice", "milk", "oat_milk", "sour_cream", "soy_milk",
                    "yoghurt", "carton"],
}

GROCERY_CLASSES: List[str] = [
    cls for group in GROCERY_GROUPS.values() for cls in group if cls != "carton"
]

#: Target classes of the Grocery Store task that are *not* ConceptNet
#: concepts; SCADS must be extended with new nodes for them (Example 3.2).
GROCERY_OOV_CLASSES: List[str] = ["oatghurt", "soygurt"]

#: Existing concepts each OOV class should be linked to when added to SCADS.
GROCERY_OOV_ANCHORS: Dict[str, List[str]] = {
    "oatghurt": ["yoghurt", "carton", "oat_milk"],
    "soygurt": ["yoghurt", "carton", "soy_milk"],
}

#: Templates used to procedurally derive extra related concepts for every
#: leaf class (so SCADS retrieval has a rich pool even for curated classes).
RELATED_SUFFIXES: List[str] = ["fragment", "closeup", "pattern", "stack", "pile"]
RELATED_PREFIXES: List[str] = ["small", "large", "vintage", "toy", "broken"]


def all_curated_concepts() -> List[str]:
    """Every concept named explicitly in this vocabulary (no fillers/derived)."""
    concepts = set(TOP_LEVEL_DOMAINS)
    concepts.add("entity")
    for parent, children in MATERIAL_TREE.items():
        concepts.add(parent)
        concepts.update(children)
    for group, classes in OFFICE_HOME_GROUPS.items():
        concepts.add(group)
        concepts.update(classes)
    for group, classes in GROCERY_GROUPS.items():
        concepts.add(group)
        concepts.update(classes)
    return sorted(concepts)
