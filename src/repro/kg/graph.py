"""Knowledge-graph data structure used as the backbone of SCADS.

The original system uses ConceptNet 5.5, whose nodes are natural-language
concepts and whose edges carry typed relations (``IsA``, ``RelatedTo``,
``AtLocation``, ...).  This module provides an equivalent structure on top of
:mod:`networkx`, with first-class support for the operations SCADS needs:

* typed, weighted edges between concepts,
* a distinguished ``IsA`` hierarchy (the WordNet-style semantic tree used by
  the pruning experiments of Section 4.3),
* descendant/ancestor queries and node removal for pruning,
* neighbourhood queries used by embedding retrofitting and by the ZSL-KG
  graph neural network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

__all__ = ["Relation", "KnowledgeGraph"]


class Relation:
    """Canonical relation names, mirroring the ConceptNet relation vocabulary."""

    IS_A = "IsA"
    RELATED_TO = "RelatedTo"
    AT_LOCATION = "AtLocation"
    USED_FOR = "UsedFor"
    MADE_OF = "MadeOf"
    PART_OF = "PartOf"
    SYNONYM = "Synonym"

    #: Relations that define the semantic tree used for pruning.
    HIERARCHICAL = (IS_A,)

    #: All lateral (non-hierarchical) relations.
    LATERAL = (RELATED_TO, AT_LOCATION, USED_FOR, MADE_OF, PART_OF, SYNONYM)

    ALL = HIERARCHICAL + LATERAL


class KnowledgeGraph:
    """An undirected concept graph with a directed ``IsA`` hierarchy on top.

    Nodes are concept names (lower-case strings with underscores, like
    ConceptNet surface forms).  Lateral edges are stored undirected with a
    relation type and weight; hierarchical ``IsA`` edges are additionally
    tracked in a directed parent->child tree so pruning can remove whole
    subtrees efficiently.
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._hierarchy = nx.DiGraph()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_concept(self, concept: str, **attrs) -> None:
        """Add a concept node (idempotent)."""
        concept = self.normalize(concept)
        self._graph.add_node(concept, **attrs)
        self._hierarchy.add_node(concept)

    def add_edge(self, source: str, target: str, relation: str = Relation.RELATED_TO,
                 weight: float = 1.0) -> None:
        """Add a typed edge; ``IsA`` edges also register ``source`` as a child of ``target``."""
        source = self.normalize(source)
        target = self.normalize(target)
        if source == target:
            raise ValueError(f"self-loop on concept {source!r} is not allowed")
        if relation not in Relation.ALL:
            raise ValueError(f"unknown relation {relation!r}")
        if weight <= 0:
            raise ValueError("edge weight must be positive")
        self.add_concept(source)
        self.add_concept(target)
        self._graph.add_edge(source, target, relation=relation, weight=float(weight))
        if relation == Relation.IS_A:
            # "source IsA target" => target is the parent of source.
            self._hierarchy.add_edge(target, source)

    @staticmethod
    def normalize(concept: str) -> str:
        """Normalize a concept name to ConceptNet-like surface form."""
        if not isinstance(concept, str) or not concept.strip():
            raise ValueError("concept names must be non-empty strings")
        return concept.strip().lower().replace(" ", "_").replace("-", "_")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def concepts(self) -> List[str]:
        return list(self._graph.nodes)

    def __contains__(self, concept: str) -> bool:
        try:
            return self.normalize(concept) in self._graph
        except ValueError:
            return False

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def neighbors(self, concept: str,
                  relations: Optional[Sequence[str]] = None) -> List[Tuple[str, str, float]]:
        """Return ``(neighbor, relation, weight)`` triples of a concept."""
        concept = self.normalize(concept)
        if concept not in self._graph:
            raise KeyError(f"unknown concept {concept!r}")
        out = []
        for neighbor, attrs in self._graph[concept].items():
            relation = attrs.get("relation", Relation.RELATED_TO)
            if relations is not None and relation not in relations:
                continue
            out.append((neighbor, relation, float(attrs.get("weight", 1.0))))
        return out

    def neighbor_names(self, concept: str,
                       relations: Optional[Sequence[str]] = None) -> List[str]:
        return [name for name, _, _ in self.neighbors(concept, relations=relations)]

    def degree(self, concept: str) -> int:
        return int(self._graph.degree(self.normalize(concept)))

    def parent(self, concept: str) -> Optional[str]:
        """Return the ``IsA`` parent of a concept (None for roots)."""
        concept = self.normalize(concept)
        predecessors = list(self._hierarchy.predecessors(concept))
        if not predecessors:
            return None
        return predecessors[0]

    def children(self, concept: str) -> List[str]:
        concept = self.normalize(concept)
        return list(self._hierarchy.successors(concept))

    def descendants(self, concept: str) -> Set[str]:
        """All concepts below ``concept`` in the semantic tree (excluding itself)."""
        concept = self.normalize(concept)
        if concept not in self._hierarchy:
            raise KeyError(f"unknown concept {concept!r}")
        return set(nx.descendants(self._hierarchy, concept))

    def ancestors(self, concept: str) -> List[str]:
        """Path of ancestors from the immediate parent up to the root."""
        out = []
        current = self.parent(concept)
        while current is not None:
            out.append(current)
            current = self.parent(current)
        return out

    def roots(self) -> List[str]:
        return [n for n in self._hierarchy.nodes if self._hierarchy.in_degree(n) == 0]

    def shortest_path_length(self, source: str, target: str) -> int:
        """Unweighted hop distance over all edge types."""
        return int(nx.shortest_path_length(self._graph, self.normalize(source),
                                           self.normalize(target)))

    def edges(self) -> Iterator[Tuple[str, str, str, float]]:
        """Iterate ``(u, v, relation, weight)`` over all edges."""
        for u, v, attrs in self._graph.edges(data=True):
            yield u, v, attrs.get("relation", Relation.RELATED_TO), float(attrs.get("weight", 1.0))

    # ------------------------------------------------------------------ #
    # Mutation (pruning, SCADS extensibility)
    # ------------------------------------------------------------------ #
    def remove_concepts(self, concepts: Iterable[str]) -> int:
        """Remove concepts (and incident edges) from the graph; returns count removed."""
        removed = 0
        for concept in list(concepts):
            concept = self.normalize(concept)
            if concept in self._graph:
                self._graph.remove_node(concept)
                removed += 1
            if concept in self._hierarchy:
                self._hierarchy.remove_node(concept)
        return removed

    def copy(self) -> "KnowledgeGraph":
        duplicate = KnowledgeGraph()
        duplicate._graph = self._graph.copy()
        duplicate._hierarchy = self._hierarchy.copy()
        return duplicate

    def subgraph(self, concepts: Iterable[str]) -> "KnowledgeGraph":
        """Graph induced on the given concepts."""
        keep = {self.normalize(c) for c in concepts}
        duplicate = KnowledgeGraph()
        duplicate._graph = self._graph.subgraph(keep).copy()
        duplicate._hierarchy = self._hierarchy.subgraph(keep).copy()
        return duplicate

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.Graph:
        """Return the underlying undirected graph (a copy)."""
        return self._graph.copy()

    def hierarchy_to_networkx(self) -> nx.DiGraph:
        return self._hierarchy.copy()
