"""Procedural generator for the synthetic ConceptNet used by SCADS.

:func:`build_concept_graph` assembles a :class:`~repro.kg.graph.KnowledgeGraph`
from the curated vocabulary (:mod:`repro.kg.vocabulary`), derived related
concepts for each leaf class, and a procedural "haystack" of filler concepts
that plays the role of the rest of ImageNet-21k.  The resulting graph has the
properties SCADS relies on:

* every target class of the four evaluation tasks (except the deliberately
  out-of-vocabulary grocery classes) is a node,
* every target class has a pool of semantically close auxiliary concepts
  (children and siblings) reachable through the ``IsA`` hierarchy and
  lateral ``RelatedTo`` edges,
* the vast majority of concepts are unrelated filler, so auxiliary-data
  selection is genuinely a needle-in-a-haystack problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from . import vocabulary as vocab
from .graph import KnowledgeGraph, Relation

__all__ = ["GraphSpec", "build_concept_graph"]


@dataclass
class GraphSpec:
    """Knobs controlling the size and connectivity of the generated graph."""

    #: number of procedurally named filler concepts (the haystack)
    num_filler_concepts: int = 1500
    #: number of derived related concepts added per curated leaf class
    derived_per_class: int = 5
    #: probability of a lateral RelatedTo edge between siblings
    sibling_edge_probability: float = 0.3
    #: number of random cross-domain lateral edges
    num_cross_links: int = 200
    #: maximum children per filler parent node
    filler_branching: int = 8
    seed: int = 0


def _add_tree(graph: KnowledgeGraph, parent: str, children: Sequence[str]) -> None:
    for child in children:
        graph.add_edge(child, parent, relation=Relation.IS_A)


def _add_sibling_links(graph: KnowledgeGraph, siblings: Sequence[str],
                       probability: float, rng: np.random.Generator) -> None:
    siblings = list(siblings)
    for i in range(len(siblings)):
        for j in range(i + 1, len(siblings)):
            if rng.random() < probability:
                graph.add_edge(siblings[i], siblings[j],
                               relation=Relation.RELATED_TO, weight=1.0)


def _derived_child_names(base: str, count: int) -> List[str]:
    """Derived concepts that are specializations (IsA children) of a class."""
    return [f"{base}_{suffix}" for suffix in vocab.RELATED_SUFFIXES][:count]


def _derived_cousin_names(base: str, count: int) -> List[str]:
    """Derived concepts that are lateral relatives of a class.

    These hang off the class's *parent* in the hierarchy with a lateral
    ``RelatedTo`` edge to the class itself, so prune level 0 (which removes a
    class and its descendants) keeps them available while prune level 1
    (which removes the parent's subtree) does not — reproducing the graded
    degradation of auxiliary relevance in the paper's Figure 4.
    """
    return [f"{prefix}_{base}" for prefix in vocab.RELATED_PREFIXES][:count]


def _attach_class_relatives(graph: KnowledgeGraph, cls: str, parent: str,
                            derived_per_class: int) -> None:
    """Attach derived children and lateral cousins of a curated leaf class."""
    for name in _derived_child_names(cls, derived_per_class):
        graph.add_edge(name, cls, relation=Relation.IS_A)
    for name in _derived_cousin_names(cls, derived_per_class):
        graph.add_edge(name, parent, relation=Relation.IS_A)
        graph.add_edge(name, cls, relation=Relation.RELATED_TO, weight=2.0)


def build_concept_graph(spec: Optional[GraphSpec] = None) -> KnowledgeGraph:
    """Build the synthetic ConceptNet graph.

    The graph is rooted at ``entity`` with the top-level domains of
    :data:`~repro.kg.vocabulary.TOP_LEVEL_DOMAINS`; curated subtrees hang off
    ``material`` (FMD), ``object`` (Office-Home), and ``food`` (Grocery
    Store); filler subtrees hang off the remaining domains.
    """
    spec = spec or GraphSpec()
    rng = np.random.default_rng(spec.seed)
    graph = KnowledgeGraph()

    graph.add_concept("entity")
    _add_tree(graph, "entity", vocab.TOP_LEVEL_DOMAINS)

    # ------------------------------------------------------------------ #
    # Materials (FMD)
    # ------------------------------------------------------------------ #
    _add_tree(graph, "material", list(vocab.MATERIAL_TREE.keys()))
    for material, related in vocab.MATERIAL_TREE.items():
        _add_tree(graph, material, related)
        _add_sibling_links(graph, related, spec.sibling_edge_probability, rng)
        _attach_class_relatives(graph, material, "material", spec.derived_per_class)
    _add_sibling_links(graph, list(vocab.MATERIAL_TREE.keys()), 0.15, rng)

    # ------------------------------------------------------------------ #
    # Office-Home objects
    # ------------------------------------------------------------------ #
    _add_tree(graph, "object", list(vocab.OFFICE_HOME_GROUPS.keys()))
    for group, classes in vocab.OFFICE_HOME_GROUPS.items():
        _add_tree(graph, group, classes)
        _add_sibling_links(graph, classes, spec.sibling_edge_probability, rng)
        for cls in classes:
            _attach_class_relatives(graph, cls, group, spec.derived_per_class)

    # ------------------------------------------------------------------ #
    # Grocery Store food items
    # ------------------------------------------------------------------ #
    _add_tree(graph, "food", list(vocab.GROCERY_GROUPS.keys()))
    for group, classes in vocab.GROCERY_GROUPS.items():
        _add_tree(graph, group, classes)
        _add_sibling_links(graph, classes, spec.sibling_edge_probability, rng)
        for cls in classes:
            _attach_class_relatives(graph, cls, group, spec.derived_per_class)

    # Cross links connecting food packaging to materials (e.g. carton <-> paper).
    graph.add_edge("carton", "cardboard", relation=Relation.MADE_OF)
    graph.add_edge("milk", "carton", relation=Relation.RELATED_TO)
    graph.add_edge("juice", "carton", relation=Relation.RELATED_TO)
    graph.add_edge("plastic_bag", "packaging", relation=Relation.RELATED_TO)

    # ------------------------------------------------------------------ #
    # Filler haystack
    # ------------------------------------------------------------------ #
    filler_domains = ["organism", "place", "abstraction"]
    filler_parents: List[str] = list(filler_domains)
    created = 0
    index = 0
    while created < spec.num_filler_concepts:
        parent = filler_parents[int(rng.integers(len(filler_parents)))]
        n_children = int(rng.integers(2, spec.filler_branching + 1))
        children = []
        for _ in range(n_children):
            if created >= spec.num_filler_concepts:
                break
            name = f"filler_{index:05d}"
            index += 1
            created += 1
            children.append(name)
        _add_tree(graph, parent, children)
        # Some filler nodes become parents themselves, deepening the tree.
        filler_parents.extend(children[: max(1, len(children) // 2)])

    # ------------------------------------------------------------------ #
    # Random cross-domain lateral edges (ConceptNet is far from a clean tree)
    # ------------------------------------------------------------------ #
    concepts = graph.concepts
    added = 0
    attempts = 0
    while added < spec.num_cross_links and attempts < spec.num_cross_links * 20:
        attempts += 1
        u = concepts[int(rng.integers(len(concepts)))]
        v = concepts[int(rng.integers(len(concepts)))]
        if u == v or u == "entity" or v == "entity":
            continue
        graph.add_edge(u, v, relation=Relation.RELATED_TO, weight=0.5)
        added += 1

    return graph
