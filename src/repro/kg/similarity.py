"""Graph-embedding similarity queries used by SCADS auxiliary-data selection."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .embeddings import normalize_rows

__all__ = ["cosine_similarity", "top_k_similar", "EmbeddingIndex"]


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0 if either is all zeros)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


class EmbeddingIndex:
    """Dense index over concept embeddings supporting top-k cosine queries."""

    def __init__(self, embeddings: Mapping[str, np.ndarray]):
        if not embeddings:
            raise ValueError("cannot build an index over an empty embedding map")
        self.concepts: List[str] = sorted(embeddings.keys())
        matrix = np.stack([np.asarray(embeddings[c], dtype=np.float64)
                           for c in self.concepts])
        self._normalized = normalize_rows(matrix)
        self._position = {c: i for i, c in enumerate(self.concepts)}

    def __len__(self) -> int:
        return len(self.concepts)

    def __contains__(self, concept: str) -> bool:
        return concept in self._position

    def vector(self, concept: str) -> np.ndarray:
        return self._normalized[self._position[concept]]

    def top_k(self, query: np.ndarray, k: int,
              exclude: Optional[Sequence[str]] = None) -> List[Tuple[str, float]]:
        """Return the ``k`` concepts most cosine-similar to ``query``.

        Uses ``np.argpartition`` to select the candidate set in O(n) and only
        sorts those ``k + |exclude|`` candidates, instead of fully sorting
        every score.
        """
        if k <= 0:
            return []
        query = np.asarray(query, dtype=np.float64)
        norm = np.linalg.norm(query)
        if norm == 0:
            return []
        scores = self._normalized @ (query / norm)
        return self._rank(scores, k, set(exclude or ()))

    def _rank(self, scores: np.ndarray, k: int,
              excluded: set) -> List[Tuple[str, float]]:
        # Partition for the k best plus enough headroom to absorb excluded
        # concepts that land in the top slots.
        want = min(k + len(excluded), len(scores))
        if want < len(scores):
            candidates = np.argpartition(-scores, want - 1)[:want]
            candidates = candidates[np.argsort(-scores[candidates])]
        else:
            candidates = np.argsort(-scores)
        out: List[Tuple[str, float]] = []
        for i in candidates:
            concept = self.concepts[i]
            if concept in excluded:
                continue
            out.append((concept, float(scores[i])))
            if len(out) == k:
                break
        return out

    def top_k_batch(self, queries: np.ndarray, k: int,
                    exclude: Optional[Sequence[str]] = None
                    ) -> List[List[Tuple[str, float]]]:
        """Top-k for a ``(q, d)`` batch of queries in one matrix multiply.

        Rows with zero norm yield empty result lists (mirroring
        :meth:`top_k` on a zero query).
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise ValueError(f"queries must be 2-D, got shape {queries.shape}")
        if k <= 0 or not len(queries):
            return [[] for _ in range(len(queries))]
        norms = np.linalg.norm(queries, axis=1, keepdims=True)
        safe = np.where(norms == 0, 1.0, norms)
        all_scores = (queries / safe) @ self._normalized.T
        excluded = set(exclude or ())
        return [self._rank(row, k, excluded) if norms[i, 0] else []
                for i, row in enumerate(all_scores)]


def top_k_similar(embeddings: Mapping[str, np.ndarray], query: np.ndarray, k: int,
                  exclude: Optional[Sequence[str]] = None) -> List[Tuple[str, float]]:
    """Convenience wrapper building a throwaway :class:`EmbeddingIndex`."""
    return EmbeddingIndex(embeddings).top_k(query, k, exclude=exclude)
