"""``repro.kg`` — the common sense knowledge graph substrate of SCADS.

Provides the ConceptNet-analog graph structure, a procedural generator with
a curated vocabulary covering the paper's target tasks, concept embeddings
with expanded retrofitting (SCADS embeddings), similarity queries, and the
semantic-tree pruning used in Section 4.3 of the paper.
"""

from . import vocabulary
from .embeddings import generate_text_embeddings, normalize_rows, retrofit
from .generator import GraphSpec, build_concept_graph
from .graph import KnowledgeGraph, Relation
from .hierarchy import (PRUNE_LEVEL_0, PRUNE_LEVEL_1, PRUNE_NONE, prune_graph,
                        pruned_concepts)
from .similarity import EmbeddingIndex, cosine_similarity, top_k_similar

__all__ = [
    "KnowledgeGraph", "Relation",
    "GraphSpec", "build_concept_graph",
    "generate_text_embeddings", "retrofit", "normalize_rows",
    "EmbeddingIndex", "cosine_similarity", "top_k_similar",
    "PRUNE_NONE", "PRUNE_LEVEL_0", "PRUNE_LEVEL_1",
    "pruned_concepts", "prune_graph",
    "vocabulary",
]
