"""Concept embeddings: synthetic "word vectors" plus expanded retrofitting.

SCADS embeddings in the paper are ConceptNet Numberbatch vectors: word
embeddings retrofitted onto the knowledge graph so that they express both
text co-occurrence and graph topology (Appendix A.1, Eq. 8).  We reproduce
both ingredients:

* :func:`generate_text_embeddings` creates word2vec-like vectors whose
  geometry is correlated with the semantic hierarchy (children are noisy
  copies of their parents) — the stand-in for embeddings "learned from text".
* :func:`retrofit` runs the Faruqui et al. / Speer & Chin expanded
  retrofitting iteration, minimizing
  ``sum_i alpha_i ||e_i - ê_i||^2 + sum_(i,j) beta_ij ||ê_i - ê_j||^2``.
  Concepts without a text vector use ``alpha = 0`` and are therefore pure
  graph averages — exactly how the paper handles out-of-vocabulary concepts.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from .graph import KnowledgeGraph, Relation

__all__ = ["generate_text_embeddings", "retrofit", "normalize_rows"]


def normalize_rows(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """L2-normalize each row of a matrix (rows of all zeros are left as zeros)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.maximum(norms, eps)


def generate_text_embeddings(graph: KnowledgeGraph, dim: int = 64,
                             inheritance: float = 0.8,
                             seed: int = 0) -> Dict[str, np.ndarray]:
    """Generate word2vec-like vectors correlated with the semantic tree.

    Starting from random root vectors, each child's vector is
    ``inheritance * parent + sqrt(1 - inheritance^2) * noise`` so that graph
    proximity implies embedding proximity — the property real distributional
    embeddings have for taxonomic neighbours.
    """
    if not 0.0 <= inheritance < 1.0:
        raise ValueError("inheritance must be in [0, 1)")
    rng = np.random.default_rng(seed)
    embeddings: Dict[str, np.ndarray] = {}
    noise_scale = np.sqrt(1.0 - inheritance ** 2)

    queue = deque()
    for root in graph.roots():
        embeddings[root] = rng.normal(0.0, 1.0, size=dim)
        queue.append(root)
    while queue:
        parent = queue.popleft()
        for child in graph.children(parent):
            if child in embeddings:
                continue
            noise = rng.normal(0.0, 1.0, size=dim)
            embeddings[child] = inheritance * embeddings[parent] + noise_scale * noise
            queue.append(child)

    # Concepts not reachable from a root (isolated nodes) get pure noise.
    for concept in graph.concepts:
        if concept not in embeddings:
            embeddings[concept] = rng.normal(0.0, 1.0, size=dim)
    return embeddings


def retrofit(graph: KnowledgeGraph,
             text_embeddings: Mapping[str, np.ndarray],
             iterations: int = 10,
             alpha: float = 1.0,
             beta: float = 1.0,
             normalize_by_degree: bool = True,
             relations: Optional[Iterable[str]] = None) -> Dict[str, np.ndarray]:
    """Expanded retrofitting of text embeddings onto the knowledge graph.

    Parameters
    ----------
    graph:
        The concept graph providing the neighbourhood structure.
    text_embeddings:
        Mapping of concept -> original vector.  Concepts present in the graph
        but missing here are treated as out-of-vocabulary (``alpha = 0``).
    iterations:
        Number of Jacobi-style update sweeps; the objective is convex, so a
        modest number of sweeps converges in practice.
    alpha, beta:
        Weights of the text-anchoring and graph-smoothing terms of Eq. 8.
    normalize_by_degree:
        Use ``beta_ij = beta * w_ij / degree(i)`` (Faruqui et al.'s choice) so
        the neighbourhood as a whole carries the same weight as the original
        vector; without it, high-degree concepts are smoothed into their
        neighbourhood average and lose their identity.
    relations:
        Restrict smoothing to these relation types (default: all).

    Returns
    -------
    dict
        Concept -> retrofitted "SCADS embedding".
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    concepts = graph.concepts
    if not concepts:
        return {}
    dims = {len(v) for v in text_embeddings.values()}
    if len(dims) > 1:
        raise ValueError("text embeddings have inconsistent dimensions")
    dim = dims.pop() if dims else 64

    relations = tuple(relations) if relations is not None else None
    index = {c: i for i, c in enumerate(concepts)}
    original = np.zeros((len(concepts), dim))
    alphas = np.zeros(len(concepts))
    for concept, i in index.items():
        if concept in text_embeddings:
            original[i] = np.asarray(text_embeddings[concept], dtype=np.float64)
            alphas[i] = alpha

    retrofitted = original.copy()
    # Seed OOV concepts with the mean of their in-vocabulary neighbours so the
    # first sweep starts from something sensible.
    for concept, i in index.items():
        if alphas[i] == 0:
            neighbor_vecs = [original[index[n]] for n, _, _ in graph.neighbors(concept)
                             if alphas[index[n]] > 0]
            if neighbor_vecs:
                retrofitted[i] = np.mean(neighbor_vecs, axis=0)

    neighbor_lists = []
    for concept in concepts:
        raw = [(index[n], w) for n, rel, w in graph.neighbors(concept)
               if relations is None or rel in relations]
        if normalize_by_degree and raw:
            total = sum(w for _, w in raw)
            pairs = [(j, beta * w / total) for j, w in raw]
        else:
            pairs = [(j, beta * w) for j, w in raw]
        neighbor_lists.append(pairs)

    for _ in range(iterations):
        updated = retrofitted.copy()
        for i, pairs in enumerate(neighbor_lists):
            if not pairs:
                continue
            total_weight = alphas[i]
            accumulator = alphas[i] * original[i]
            for j, w in pairs:
                accumulator = accumulator + w * retrofitted[j]
                total_weight += w
            if total_weight > 0:
                updated[i] = accumulator / total_weight
        retrofitted = updated

    return {concept: retrofitted[i] for concept, i in index.items()}
