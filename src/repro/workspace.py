"""A one-call assembly of every substrate the experiments need.

The evaluation touches a lot of machinery: the knowledge graph, the synthetic
visual world, SCADS with the ImageNet-21k analog installed, SCADS embeddings,
two pretrained backbones, and four target datasets.  :func:`build_workspace`
builds all of it once (sized by a :class:`WorkspaceSpec`) and the resulting
:class:`Workspace` hands out task splits and backbones to the experiment
runner, the examples, and the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .backbones import BackboneRegistry, PretrainedBackbone, default_registry
from .datasets import (DATASET_BUILDERS, TEST_PER_CLASS, TargetDataset,
                       TaskSplit, build_dataset, make_split)
from .kg import (GraphSpec, KnowledgeGraph, build_concept_graph,
                 generate_text_embeddings)
from .scads import ScadsBundle, align_target_classes, build_scads
from .synth import VisualWorld, WorldSpec

__all__ = ["WorkspaceSpec", "Workspace", "build_workspace"]


@dataclass
class WorkspaceSpec:
    """Size knobs for the whole experimental workspace.

    The defaults ("small") keep the full benchmark grid laptop-friendly;
    ``WorkspaceSpec.full()`` enlarges the haystack and image pools for a run
    closer to the paper's scale.
    """

    graph: GraphSpec = field(default_factory=lambda: GraphSpec(num_filler_concepts=800))
    world: WorldSpec = field(default_factory=WorldSpec)
    scads_images_per_concept: int = 35
    seed: int = 0

    @classmethod
    def small(cls, seed: int = 0) -> "WorkspaceSpec":
        return cls(graph=GraphSpec(num_filler_concepts=800, seed=seed),
                   world=WorldSpec(seed=seed),
                   scads_images_per_concept=35, seed=seed)

    @classmethod
    def full(cls, seed: int = 0) -> "WorkspaceSpec":
        return cls(graph=GraphSpec(num_filler_concepts=4000, seed=seed),
                   world=WorldSpec(seed=seed),
                   scads_images_per_concept=50, seed=seed)


class Workspace:
    """Everything a TAGLETS experiment needs, built once and shared."""

    def __init__(self, spec: WorkspaceSpec):
        self.spec = spec
        self.graph: KnowledgeGraph = build_concept_graph(spec.graph)
        # One set of concept embeddings shared between the visual world and
        # SCADS, so semantic similarity genuinely predicts visual similarity.
        self.text_embeddings = generate_text_embeddings(
            self.graph, dim=spec.world.semantic_dim, seed=spec.seed)
        self.world: VisualWorld = VisualWorld(self.graph, spec.world,
                                              semantic_embeddings=self.text_embeddings)
        self.scads: ScadsBundle = build_scads(
            self.graph, self.world,
            images_per_concept=spec.scads_images_per_concept, seed=spec.seed,
            text_embeddings=self.text_embeddings)
        # Align known out-of-vocabulary target classes (oatghurt, soygurt) with
        # SCADS *now*, so the graph — and therefore backbone pretraining, which
        # samples concepts from it — does not depend on the order in which
        # datasets are later built.
        self._align_known_oov_classes()
        self.backbones: BackboneRegistry = default_registry(self.world, self.graph)
        self._datasets: Dict[str, TargetDataset] = {}

    def _align_known_oov_classes(self) -> None:
        from .datasets.base import ClassSpec
        from .kg import vocabulary as vocab

        specs = [ClassSpec(name=name, concept=None,
                           anchors=tuple(vocab.GROCERY_OOV_ANCHORS[name]))
                 for name in vocab.GROCERY_OOV_CLASSES]
        align_target_classes(self.scads, self.world, specs, seed=self.spec.seed)

    # ------------------------------------------------------------------ #
    # Datasets and splits
    # ------------------------------------------------------------------ #
    def dataset(self, name: str) -> TargetDataset:
        """Build (and cache) one of the evaluation datasets."""
        if name not in self._datasets:
            dataset = build_dataset(name, self.world, seed=self.spec.seed)
            # Align out-of-vocabulary target classes (e.g. oatghurt) with SCADS.
            align_target_classes(self.scads, self.world, dataset.classes,
                                 seed=self.spec.seed)
            self._datasets[name] = dataset
        return self._datasets[name]

    def make_task_split(self, dataset_name: str, shots: int,
                        split_seed: int = 0) -> TaskSplit:
        """Create a labeled/unlabeled/test split following Appendix A.2."""
        dataset = self.dataset(dataset_name)
        test_per_class = TEST_PER_CLASS.get(dataset_name, 10)
        return make_split(dataset, shots=shots, split_seed=split_seed,
                          test_per_class=test_per_class)

    def available_datasets(self) -> list:
        return sorted(DATASET_BUILDERS)

    # ------------------------------------------------------------------ #
    # Backbones
    # ------------------------------------------------------------------ #
    def backbone(self, name: str) -> PretrainedBackbone:
        """Get a pretrained backbone by name (``resnet50`` or ``bit``)."""
        return self.backbones.get(name)


def build_workspace(scale: str = "small", seed: int = 0,
                    spec: Optional[WorkspaceSpec] = None) -> Workspace:
    """Build a workspace at the requested scale (``small`` or ``full``)."""
    if spec is None:
        if scale == "small":
            spec = WorkspaceSpec.small(seed=seed)
        elif scale == "full":
            spec = WorkspaceSpec.full(seed=seed)
        else:
            raise ValueError(f"unknown scale {scale!r}; expected 'small' or 'full'")
    return Workspace(spec)
