"""Common interface of the baseline methods used in the paper's evaluation.

Baselines consume the same spectrum of data as TAGLETS (minus SCADS): the
labeled target set, optionally the unlabeled pool, and a pretrained backbone.
They produce a classifier with the same prediction interface as a taglet, so
the experiment runner can evaluate every method uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..backbones.backbone import PretrainedBackbone
from ..modules.base import Taglet

__all__ = ["BaselineInput", "BaselineMethod"]


@dataclass
class BaselineInput:
    """Data available to a baseline method."""

    labeled_features: np.ndarray
    labeled_labels: np.ndarray
    unlabeled_features: np.ndarray
    num_classes: int
    backbone: PretrainedBackbone
    seed: int = 0

    def validate(self) -> None:
        if len(self.labeled_features) != len(self.labeled_labels):
            raise ValueError("labeled features/labels length mismatch")
        if len(self.labeled_features) == 0:
            raise ValueError("baselines require at least one labeled example")
        if self.num_classes <= 0:
            raise ValueError("num_classes must be positive")
        if np.asarray(self.labeled_labels).max() >= self.num_classes:
            raise ValueError("labels reference classes beyond num_classes")


class BaselineMethod:
    """A comparison method producing a classifier over the target classes."""

    name = "baseline"

    def train(self, data: BaselineInput) -> Taglet:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"
