"""The Meta Pseudo Labels baseline (Pham et al., 2021; paper Section 4.2).

A teacher network pseudo-labels unlabeled data for a student network; the
student's performance on labeled data is fed back to adapt the teacher.  We
implement the standard first-order approximation of the meta-gradient:

1. the student takes a gradient step on the teacher's (hard) pseudo labels
   for an unlabeled batch;
2. the improvement ``h`` of the student's labeled-data loss caused by that
   step scores how useful the teacher's pseudo labels were;
3. the teacher takes a gradient step on ``h * CE(teacher(u), pseudo) +
   CE(teacher(x), y)``;
4. after teacher-student training the student is fine-tuned on the labeled
   data to reduce confirmation bias, as in the paper's Appendix A.3.

As in the paper, the teacher may use either backbone while the student always
uses the ResNet-50 analog (here: the same backbone passed in, since the
runner gives the student backbone explicitly via ``student_backbone``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backbones.backbone import ClassificationModel, PretrainedBackbone
from ..modules.base import ModelTaglet, Taglet
from ..nn import functional as F
from ..nn.data import ArrayDataset, DataLoader, UnlabeledDataset
from ..nn.optim import SGD
from ..nn.schedulers import CosineAnnealingLR
from ..nn.tensor import Tensor
from ..nn.training import TrainConfig, iterate_forever, train_classifier
from ..nn.transforms import weak_augment
from .base import BaselineInput, BaselineMethod

__all__ = ["MetaPseudoLabelsConfig", "MetaPseudoLabelsBaseline"]


@dataclass
class MetaPseudoLabelsConfig:
    """Hyperparameters of teacher-student training (Appendix A.3, scaled down)."""

    steps: int = 300
    batch_size: int = 64
    unlabeled_batch_size: int = 64
    teacher_lr: float = 1e-2
    student_lr: float = 2e-2
    momentum: float = 0.9
    #: final supervised fine-tuning of the student
    finetune_epochs: int = 30
    finetune_lr: float = 1e-2
    use_augmentation: bool = True


class MetaPseudoLabelsBaseline(BaselineMethod):
    """Teacher-student pseudo labeling with student-feedback to the teacher."""

    name = "meta_pseudo_labels"

    def __init__(self, config: Optional[MetaPseudoLabelsConfig] = None,
                 student_backbone: Optional[PretrainedBackbone] = None):
        self.config = config or MetaPseudoLabelsConfig()
        #: backbone for the student; defaults to the input backbone (the paper
        #: always uses the ResNet-50 analog for the student)
        self.student_backbone = student_backbone

    def train(self, data: BaselineInput) -> Taglet:
        data.validate()
        config = self.config
        rng = np.random.default_rng(data.seed)
        augment = weak_augment() if config.use_augmentation else None

        student_backbone = self.student_backbone or data.backbone
        teacher = ClassificationModel.from_backbone(data.backbone,
                                                    num_classes=data.num_classes,
                                                    rng=rng)
        student = ClassificationModel.from_backbone(student_backbone,
                                                    num_classes=data.num_classes,
                                                    rng=rng)

        if len(data.unlabeled_features) == 0:
            # Degenerates to fine-tuning the student on labeled data.
            finetune = TrainConfig(epochs=config.finetune_epochs,
                                   batch_size=config.batch_size,
                                   lr=config.finetune_lr, momentum=config.momentum,
                                   augment=augment, seed=data.seed)
            train_classifier(student, data.labeled_features, data.labeled_labels,
                             finetune)
            return ModelTaglet(self.name, student)

        labeled_loader = DataLoader(
            ArrayDataset(data.labeled_features, data.labeled_labels),
            batch_size=min(config.batch_size, len(data.labeled_features)),
            shuffle=True, rng=np.random.default_rng(data.seed))
        unlabeled_loader = DataLoader(
            UnlabeledDataset(data.unlabeled_features),
            batch_size=min(config.unlabeled_batch_size, len(data.unlabeled_features)),
            shuffle=True, rng=np.random.default_rng(data.seed + 1))
        labeled_stream = iterate_forever(labeled_loader)
        unlabeled_stream = iterate_forever(unlabeled_loader)

        teacher_optimizer = SGD(teacher.parameters(), lr=config.teacher_lr,
                                momentum=config.momentum)
        student_optimizer = SGD(student.parameters(), lr=config.student_lr,
                                momentum=config.momentum)
        teacher_scheduler = CosineAnnealingLR(teacher_optimizer, config.steps)
        student_scheduler = CosineAnnealingLR(student_optimizer, config.steps)

        teacher.train()
        student.train()
        for _ in range(config.steps):
            labeled_x, labeled_y = next(labeled_stream)
            unlabeled_x = next(unlabeled_stream)
            if augment is not None:
                labeled_x = augment(labeled_x, rng)
                unlabeled_x = augment(unlabeled_x, rng)
            teacher_scheduler.step()
            student_scheduler.step()

            # Teacher pseudo-labels the unlabeled batch (no gradient).
            teacher.eval()
            pseudo_labels = teacher(Tensor(unlabeled_x)).data.argmax(axis=1)
            teacher.train()

            # Student loss on labeled data before its update.
            student.eval()
            loss_before = F.cross_entropy(student(Tensor(labeled_x)), labeled_y).item()
            student.train()

            # Student step on the pseudo-labeled batch.
            student_logits = student(Tensor(unlabeled_x))
            student_loss = F.cross_entropy(student_logits, pseudo_labels)
            student_optimizer.zero_grad()
            student_loss.backward()
            student_optimizer.step()

            # Student loss on labeled data after the update: the feedback signal.
            student.eval()
            loss_after = F.cross_entropy(student(Tensor(labeled_x)), labeled_y).item()
            student.train()
            feedback = loss_before - loss_after

            # Teacher step: feedback-weighted pseudo-label loss + supervised loss.
            teacher_logits_u = teacher(Tensor(unlabeled_x))
            teacher_logits_l = teacher(Tensor(labeled_x))
            teacher_loss = (feedback * F.cross_entropy(teacher_logits_u, pseudo_labels)
                            + F.cross_entropy(teacher_logits_l, labeled_y))
            teacher_optimizer.zero_grad()
            teacher_loss.backward()
            teacher_optimizer.step()

        # Final supervised fine-tuning of the student.
        finetune = TrainConfig(epochs=config.finetune_epochs,
                               batch_size=config.batch_size,
                               lr=config.finetune_lr, momentum=config.momentum,
                               augment=augment, seed=data.seed)
        train_classifier(student, data.labeled_features, data.labeled_labels, finetune)
        return ModelTaglet(self.name, student)
