"""The SimCLRv2 baseline (Chen et al., 2020; paper Section 4.2).

SimCLRv2 pretrains an encoder with a contrastive (NT-Xent) loss on augmented
pairs of unlabeled examples and then fine-tunes on the labeled data.  The
paper found its performance deteriorates badly on these small task-specific
datasets and excluded it from the result tables; we implement it anyway (the
system inventory includes every compared method) and the benchmark harness
reports it separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backbones.backbone import ClassificationModel
from ..modules.base import ModelTaglet, Taglet
from ..nn import functional as F
from ..nn.data import DataLoader, UnlabeledDataset
from ..nn.modules import Linear, ReLU, Sequential
from ..nn.optim import Adam
from ..nn.tensor import Tensor, concatenate
from ..nn.training import TrainConfig, train_classifier
from ..nn.transforms import strong_augment, weak_augment
from .base import BaselineInput, BaselineMethod

__all__ = ["SimCLRConfig", "SimCLRBaseline", "nt_xent_loss"]


@dataclass
class SimCLRConfig:
    """Contrastive pretraining + fine-tuning recipe."""

    pretrain_epochs: int = 8
    pretrain_batch_size: int = 128
    pretrain_lr: float = 1e-3
    temperature: float = 0.5
    projection_dim: int = 16
    finetune_epochs: int = 30
    finetune_lr: float = 0.01
    momentum: float = 0.9


def nt_xent_loss(projections_a: Tensor, projections_b: Tensor,
                 temperature: float) -> Tensor:
    """Normalized-temperature cross entropy over positive pairs.

    ``projections_a[i]`` and ``projections_b[i]`` are two views of the same
    example; every other example in the batch is a negative.
    """
    n = projections_a.shape[0]
    both = concatenate([projections_a, projections_b], axis=0)
    norms = (both * both).sum(axis=1, keepdims=True) ** 0.5
    normalized = both / (norms + 1e-12)
    similarity = (normalized @ normalized.T) * (1.0 / temperature)
    # Mask self-similarity by subtracting a large constant on the diagonal.
    mask = np.eye(2 * n) * 1e9
    logits = similarity - Tensor(mask)
    targets = np.concatenate([np.arange(n, 2 * n), np.arange(0, n)])
    return F.cross_entropy(logits, targets)


class SimCLRBaseline(BaselineMethod):
    """Contrastive pretraining on unlabeled data, then supervised fine-tuning."""

    name = "simclrv2"

    def __init__(self, config: Optional[SimCLRConfig] = None):
        self.config = config or SimCLRConfig()

    def train(self, data: BaselineInput) -> Taglet:
        data.validate()
        config = self.config
        rng = np.random.default_rng(data.seed)
        encoder = data.backbone.instantiate(rng=rng)
        projector = Sequential(
            Linear(data.backbone.feature_dim, config.projection_dim, rng=rng),
            ReLU(),
            Linear(config.projection_dim, config.projection_dim, rng=rng))

        if len(data.unlabeled_features):
            weak = weak_augment()
            strong = strong_augment()
            loader = DataLoader(UnlabeledDataset(data.unlabeled_features),
                                batch_size=min(config.pretrain_batch_size,
                                               len(data.unlabeled_features)),
                                shuffle=True, rng=np.random.default_rng(data.seed))
            optimizer = Adam(encoder.parameters() + projector.parameters(),
                             lr=config.pretrain_lr)
            encoder.train()
            projector.train()
            for _ in range(config.pretrain_epochs):
                for batch in loader:
                    if len(batch) < 2:
                        continue
                    view_a = weak(batch, rng)
                    view_b = strong(batch, rng)
                    proj_a = projector(encoder(Tensor(view_a)))
                    proj_b = projector(encoder(Tensor(view_b)))
                    loss = nt_xent_loss(proj_a, proj_b, config.temperature)
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()

        model = ClassificationModel(encoder, num_classes=data.num_classes, rng=rng)
        finetune = TrainConfig(epochs=config.finetune_epochs, batch_size=32,
                               lr=config.finetune_lr, momentum=config.momentum,
                               scheduler="multistep",
                               milestones=(config.finetune_epochs * 2 // 3,),
                               augment=weak_augment(), seed=data.seed)
        train_classifier(model, data.labeled_features, data.labeled_labels, finetune)
        return ModelTaglet(self.name, model)
