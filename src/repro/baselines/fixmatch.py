"""The FixMatch baseline (paper Section 4.2).

Identical algorithm to the FixMatch *module* of TAGLETS, but — as in the
paper's comparison — without the SCADS auxiliary-data warm start: the model
starts directly from the pretrained backbone and learns from the labeled and
unlabeled target data alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..datasets.base import ClassSpec
from ..modules.base import ModuleInput, Taglet
from ..modules.fixmatch import FixMatchConfig, FixMatchModule
from ..scads.query import AuxiliarySelection
from .base import BaselineInput, BaselineMethod

__all__ = ["FixMatchBaseline"]


class FixMatchBaseline(BaselineMethod):
    """FixMatch semi-supervised learning from a pretrained encoder.

    Like the module, the baseline's two-view consistency step runs through
    the graph replay executor (``config.replay`` forces it on/off per run;
    ``None`` follows the engine-wide flag).
    """

    name = "fixmatch_baseline"

    def __init__(self, config: Optional[FixMatchConfig] = None,
                 replay: Optional[bool] = None):
        config = config or FixMatchConfig()
        # The baseline never uses auxiliary data, whatever the config says.
        config.use_aux_pretraining = False
        if replay is not None:
            config.replay = replay
        self._module = FixMatchModule(config)

    def train(self, data: BaselineInput) -> Taglet:
        data.validate()
        empty_aux = AuxiliarySelection(
            features=np.zeros((0, data.labeled_features.shape[1])),
            labels=np.zeros(0, dtype=np.int64), concepts=[])
        classes = [ClassSpec(name=f"class_{i}", concept=f"class_{i}")
                   for i in range(data.num_classes)]
        module_input = ModuleInput(classes=classes,
                                   labeled_features=data.labeled_features,
                                   labeled_labels=data.labeled_labels,
                                   unlabeled_features=data.unlabeled_features,
                                   auxiliary=empty_aux,
                                   backbone=data.backbone,
                                   scads=None,
                                   seed=data.seed)
        taglet = self._module.train(module_input)
        taglet.name = self.name
        return taglet
