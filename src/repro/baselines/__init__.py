"""``repro.baselines`` — the comparison methods of the paper's evaluation.

Fine-tuning and distilled fine-tuning (transfer learning), FixMatch and Meta
Pseudo Labels (semi-supervised learning), and SimCLRv2 (self-supervised; the
paper excluded it from the tables because it degrades on small datasets, but
the method is implemented for completeness).
"""

from .base import BaselineInput, BaselineMethod
from .finetune import (DistilledFineTuningBaseline, FineTuningBaseline,
                       FineTuningConfig)
from .fixmatch import FixMatchBaseline
from .meta_pseudo_labels import MetaPseudoLabelsBaseline, MetaPseudoLabelsConfig
from .simclr import SimCLRBaseline, SimCLRConfig, nt_xent_loss

__all__ = [
    "BaselineInput", "BaselineMethod",
    "FineTuningBaseline", "DistilledFineTuningBaseline", "FineTuningConfig",
    "FixMatchBaseline",
    "MetaPseudoLabelsBaseline", "MetaPseudoLabelsConfig",
    "SimCLRBaseline", "SimCLRConfig", "nt_xent_loss",
]
