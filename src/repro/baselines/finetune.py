"""Fine-tuning and distilled fine-tuning baselines (paper Section 4.2).

*Fine-tuning* trains the pretrained backbone + a fresh head on the labeled
target examples only.  *Distilled fine-tuning* additionally pseudo-labels the
unlabeled pool with the fine-tuned model and retrains on pseudo-labeled plus
labeled data — the transfer-learning counterpart of TAGLETS' distillation
stage, and the strongest transfer baseline in the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backbones.backbone import ClassificationModel
from ..modules.base import ModelTaglet, Taglet
from ..nn import functional as F
from ..nn.training import (TrainConfig, predict_proba, train_classifier,
                           train_soft_classifier)
from ..nn.transforms import weak_augment
from .base import BaselineInput, BaselineMethod

__all__ = ["FineTuningConfig", "FineTuningBaseline", "DistilledFineTuningBaseline"]


@dataclass
class FineTuningConfig:
    """Fine-tuning recipe (Appendix A.3, scaled down)."""

    epochs: int = 30
    batch_size: int = 32
    lr: float = 0.01
    momentum: float = 0.9
    use_augmentation: bool = True
    #: distillation pass over pseudo-labeled + labeled data
    distill_epochs: int = 12
    distill_lr: float = 5e-3

    def train_config(self, seed: int) -> TrainConfig:
        return TrainConfig(epochs=self.epochs, batch_size=self.batch_size,
                           lr=self.lr, momentum=self.momentum,
                           scheduler="multistep",
                           milestones=(self.epochs * 2 // 3, self.epochs * 5 // 6),
                           augment=weak_augment() if self.use_augmentation else None,
                           seed=seed)

    def distill_config(self, seed: int) -> TrainConfig:
        return TrainConfig(epochs=self.distill_epochs, batch_size=128,
                           lr=self.distill_lr, optimizer="adam",
                           scheduler="multistep",
                           milestones=(self.distill_epochs * 2 // 3,),
                           augment=weak_augment() if self.use_augmentation else None,
                           seed=seed)


class FineTuningBaseline(BaselineMethod):
    """Fine-tune the pretrained backbone on the labeled target data."""

    name = "finetune"

    def __init__(self, config: Optional[FineTuningConfig] = None):
        self.config = config or FineTuningConfig()

    def train(self, data: BaselineInput) -> Taglet:
        data.validate()
        rng = np.random.default_rng(data.seed)
        model = ClassificationModel.from_backbone(data.backbone,
                                                  num_classes=data.num_classes,
                                                  rng=rng)
        train_classifier(model, data.labeled_features, data.labeled_labels,
                         self.config.train_config(data.seed))
        return ModelTaglet(self.name, model)


class DistilledFineTuningBaseline(BaselineMethod):
    """Fine-tune, pseudo-label the unlabeled pool, and retrain on the union."""

    name = "finetune_distilled"

    def __init__(self, config: Optional[FineTuningConfig] = None):
        self.config = config or FineTuningConfig()

    def train(self, data: BaselineInput) -> Taglet:
        data.validate()
        rng = np.random.default_rng(data.seed)
        teacher = ClassificationModel.from_backbone(data.backbone,
                                                    num_classes=data.num_classes,
                                                    rng=rng)
        train_classifier(teacher, data.labeled_features, data.labeled_labels,
                         self.config.train_config(data.seed))

        if len(data.unlabeled_features) == 0:
            return ModelTaglet(self.name, teacher)

        pseudo = predict_proba(teacher, data.unlabeled_features)
        labeled_soft = F.one_hot(data.labeled_labels, data.num_classes)
        features = np.concatenate([data.unlabeled_features, data.labeled_features])
        targets = np.concatenate([pseudo, labeled_soft])

        student = ClassificationModel.from_backbone(data.backbone,
                                                    num_classes=data.num_classes,
                                                    rng=rng)
        train_soft_classifier(student, features, targets,
                              self.config.distill_config(data.seed))
        return ModelTaglet(self.name, student)
