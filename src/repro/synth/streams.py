"""Arrival machinery for incremental and streaming scenarios.

The scenario matrix (:mod:`repro.scenarios`) stresses the pipeline with data
that does not arrive all at once: classes appear in phases (class-incremental
learning) and the unlabeled pool grows in chunks (streaming SSL).  This
module holds the deterministic index bookkeeping both regimes share:

* :class:`ArrivalSchedule` partitions class indices into ordered,
  non-empty phases (a permutation of the label space sliced into near-equal
  groups), and exposes the *cumulative* class sets a class-incremental
  learner sees after each phase;
* :func:`chunk_indices` partitions a pool of ``count`` rows into ordered,
  near-equal chunks (the streaming unlabeled arrivals);
* :func:`subsample_indices` draws a fixed-size sorted subsample of a pool
  (the "small unlabeled pool" axis).

Everything is a pure function of its seed — two processes building the same
schedule get bit-identical index arrays, which is what lets the scenario
gates assert exact accuracy floors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["ArrivalSchedule", "chunk_indices", "subsample_indices"]


def _partition(order: np.ndarray, num_groups: int) -> List[np.ndarray]:
    """Slice ``order`` into ``num_groups`` contiguous near-equal groups."""
    if num_groups <= 0:
        raise ValueError("need at least one group")
    if num_groups > len(order):
        raise ValueError(
            f"cannot split {len(order)} items into {num_groups} non-empty groups")
    return [np.sort(part) for part in np.array_split(order, num_groups)]


@dataclass(frozen=True)
class ArrivalSchedule:
    """A deterministic order in which classes arrive, sliced into phases."""

    num_phases: int
    seed: int = 0

    def phases(self, num_classes: int) -> List[np.ndarray]:
        """Class indices arriving at each phase (disjoint, all non-empty)."""
        order = np.random.default_rng(self.seed).permutation(num_classes)
        return _partition(order, self.num_phases)

    def cumulative(self, num_classes: int) -> List[np.ndarray]:
        """Class indices *seen so far* after each phase (sorted, growing)."""
        seen: List[np.ndarray] = []
        acc = np.zeros(0, dtype=np.int64)
        for phase in self.phases(num_classes):
            acc = np.sort(np.concatenate([acc, phase]))
            seen.append(acc)
        return seen


def chunk_indices(count: int, num_chunks: int, seed: int = 0) -> List[np.ndarray]:
    """Partition row indices ``0..count-1`` into ordered streaming chunks."""
    if count < 0:
        raise ValueError("count must be non-negative")
    order = np.random.default_rng(seed).permutation(count)
    return _partition(order, num_chunks)


def subsample_indices(count: int, fraction: float, seed: int = 0) -> np.ndarray:
    """A sorted subsample of ``round(fraction * count)`` row indices."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if count < 0:
        raise ValueError("count must be non-negative")
    keep = int(round(fraction * count))
    keep = max(1, keep) if count else 0
    order = np.random.default_rng(seed).permutation(count)
    return np.sort(order[:keep])
