"""The synthetic visual world: concept prototypes and image sampling.

Real auxiliary data (ImageNet-21k) has the property that *semantically
related concepts look alike*: images of cling film help you recognize
plastic.  That correlation between graph structure and visual appearance is
what SCADS exploits, so the synthetic substitute must preserve it.

:class:`VisualWorld` assigns every concept of the knowledge graph a latent
*visual prototype* obtained by diffusing random vectors down the ``IsA``
hierarchy (children are noisy copies of their parents) followed by a
smoothing pass over lateral relations.  An "image" of a concept is the
prototype plus Gaussian appearance noise, optionally passed through a
:class:`~repro.synth.domains.DomainShift`.

Consequences (verified by tests):

* graph-close concepts have close prototypes, so auxiliary data selected by
  SCADS is visually useful for the target class;
* pruning the graph forces SCADS to select more distant concepts whose
  prototypes are farther away, degrading auxiliary usefulness — the
  behaviour studied in the paper's Section 4.4.2.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..kg.graph import KnowledgeGraph, Relation
from .domains import DomainShift, NaturalDomain, build_domain

__all__ = ["WorldSpec", "VisualWorld"]


@dataclass
class WorldSpec:
    """Parameters of the synthetic visual world."""

    image_dim: int = 24
    #: how strongly a child's prototype follows its parent (0..1); only used
    #: for the hierarchy-diffusion component of the prototype
    inheritance: float = 0.75
    #: fraction of a prototype's variance explained by the concept's semantic
    #: embedding (the rest is idiosyncratic appearance).  This is what makes
    #: zero-shot learning from the knowledge graph possible at all: word
    #: embeddings of real concepts do carry visual information.
    semantic_weight: float = 0.85
    #: dimension of the generated semantic embeddings when none are supplied
    semantic_dim: int = 64
    #: weight of lateral-relation smoothing applied after the hierarchy pass
    lateral_smoothing: float = 0.15
    #: appearance noise when rendering an image from a prototype
    image_noise: float = 0.35
    #: intra-class diversity: per-image random scale of the prototype
    style_scale: float = 0.1
    seed: int = 0


class VisualWorld:
    """Generative model of images for every concept in a knowledge graph.

    ``semantic_embeddings`` (concept -> vector) ties visual appearance to the
    same per-concept representation used for SCADS embeddings; when omitted,
    embeddings are generated from the graph with the world's seed.  Sharing
    the embeddings between the world and SCADS is what gives the synthetic
    data the real-world property that semantic similarity predicts visual
    similarity.
    """

    def __init__(self, graph: KnowledgeGraph, spec: Optional[WorldSpec] = None,
                 semantic_embeddings: Optional[Mapping[str, np.ndarray]] = None):
        self.graph = graph
        self.spec = spec or WorldSpec()
        if semantic_embeddings is None:
            from ..kg.embeddings import generate_text_embeddings

            semantic_embeddings = generate_text_embeddings(
                graph, dim=self.spec.semantic_dim, seed=self.spec.seed)
        self._semantic = {KnowledgeGraph.normalize(k): np.asarray(v, dtype=np.float64)
                          for k, v in semantic_embeddings.items()}
        self._prototypes = self._build_prototypes()
        self._domains: Dict[str, DomainShift] = {"natural": NaturalDomain()}

    # ------------------------------------------------------------------ #
    # Prototype construction
    # ------------------------------------------------------------------ #
    def _build_prototypes(self) -> Dict[str, np.ndarray]:
        spec = self.spec
        rng = np.random.default_rng(spec.seed)
        dim = spec.image_dim
        noise_scale = np.sqrt(1.0 - spec.inheritance ** 2)

        # Hierarchy-diffused component (idiosyncratic but taxonomically smooth).
        hierarchical: Dict[str, np.ndarray] = {}
        queue = deque()
        for root in self.graph.roots():
            hierarchical[root] = rng.normal(0.0, 1.0, size=dim)
            queue.append(root)
        while queue:
            parent = queue.popleft()
            for child in self.graph.children(parent):
                if child in hierarchical:
                    continue
                noise = rng.normal(0.0, 1.0, size=dim)
                hierarchical[child] = (spec.inheritance * hierarchical[parent]
                                       + noise_scale * noise)
                queue.append(child)
        for concept in self.graph.concepts:
            if concept not in hierarchical:
                hierarchical[concept] = rng.normal(0.0, 1.0, size=dim)

        # Semantic component: a fixed random projection of the concept embedding.
        semantic_dims = {len(v) for v in self._semantic.values()}
        semantic_dim = semantic_dims.pop() if semantic_dims else spec.semantic_dim
        self._projection = rng.normal(0.0, 1.0 / np.sqrt(semantic_dim),
                                      size=(dim, semantic_dim))

        weight = np.clip(spec.semantic_weight, 0.0, 1.0)
        prototypes: Dict[str, np.ndarray] = {}
        for concept in self.graph.concepts:
            idiosyncratic = hierarchical[concept]
            if concept in self._semantic and weight > 0:
                projected = self._projection @ self._semantic[concept]
                prototypes[concept] = (np.sqrt(weight) * projected
                                       + np.sqrt(1.0 - weight) * idiosyncratic)
            else:
                prototypes[concept] = idiosyncratic

        # Lateral smoothing: related concepts look a bit more alike.
        if spec.lateral_smoothing > 0:
            smoothed = dict(prototypes)
            for concept in self.graph.concepts:
                lateral = [prototypes[n] for n, rel, _ in self.graph.neighbors(concept)
                           if rel in Relation.LATERAL]
                if lateral:
                    neighbourhood = np.mean(lateral, axis=0)
                    smoothed[concept] = ((1.0 - spec.lateral_smoothing) * prototypes[concept]
                                         + spec.lateral_smoothing * neighbourhood)
            prototypes = smoothed
        return prototypes

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def image_dim(self) -> int:
        return self.spec.image_dim

    @property
    def concepts(self) -> List[str]:
        return list(self._prototypes.keys())

    def __contains__(self, concept: str) -> bool:
        try:
            return KnowledgeGraph.normalize(concept) in self._prototypes
        except ValueError:
            return False

    def prototype(self, concept: str) -> np.ndarray:
        """The latent visual prototype of a concept (copy)."""
        concept = KnowledgeGraph.normalize(concept)
        if concept not in self._prototypes:
            raise KeyError(f"concept {concept!r} has no visual prototype")
        return self._prototypes[concept].copy()

    def add_concept_prototype(self, concept: str,
                              anchors: Sequence[str],
                              weights: Optional[Sequence[float]] = None,
                              jitter: float = 0.1,
                              seed: int = 0) -> np.ndarray:
        """Create a prototype for a new concept as a mixture of anchor concepts.

        Used when SCADS is extended with out-of-vocabulary target classes such
        as ``oatghurt`` (paper Example 3.2): the new concept's appearance is a
        blend of its anchoring concepts (yoghurt, carton, oat milk).
        """
        concept = KnowledgeGraph.normalize(concept)
        if not anchors:
            raise ValueError("at least one anchor concept is required")
        anchor_protos = [self.prototype(a) for a in anchors]
        if weights is None:
            weights = [1.0 / len(anchor_protos)] * len(anchor_protos)
        if len(weights) != len(anchor_protos):
            raise ValueError("weights must match anchors in length")
        rng = np.random.default_rng(seed)
        prototype = np.average(anchor_protos, axis=0, weights=weights)
        prototype = prototype + rng.normal(0.0, jitter, size=self.image_dim)
        self._prototypes[concept] = prototype
        return prototype.copy()

    def domain(self, name: str) -> DomainShift:
        """Get (and cache) a domain shift by name, consistent across calls."""
        if name not in self._domains:
            self._domains[name] = build_domain(name, self.image_dim,
                                               seed=self.spec.seed + 17)
        return self._domains[name]

    def sample_images(self, concept: str, count: int, domain: str = "natural",
                      rng: Optional[np.random.Generator] = None,
                      noise: Optional[float] = None) -> np.ndarray:
        """Sample ``count`` images of ``concept`` rendered in ``domain``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        prototype = self.prototype(concept)
        noise = self.spec.image_noise if noise is None else noise
        styles = 1.0 + rng.normal(0.0, self.spec.style_scale, size=(count, 1))
        clean = styles * prototype[None, :] + rng.normal(0.0, noise,
                                                         size=(count, self.image_dim))
        return self.domain(domain)(clean)

    def sample_dataset(self, concept_labels: Mapping[str, int], per_class: int,
                       domain: str = "natural",
                       rng: Optional[np.random.Generator] = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample a labeled dataset: ``per_class`` images for each concept.

        ``concept_labels`` maps concept name -> integer label.
        """
        rng = rng if rng is not None else np.random.default_rng()
        features: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        for concept, label in concept_labels.items():
            images = self.sample_images(concept, per_class, domain=domain, rng=rng)
            features.append(images)
            labels.append(np.full(per_class, label, dtype=np.int64))
        if not features:
            return np.zeros((0, self.image_dim)), np.zeros(0, dtype=np.int64)
        return np.concatenate(features, axis=0), np.concatenate(labels, axis=0)

    def prototype_distance(self, concept_a: str, concept_b: str) -> float:
        """Euclidean distance between two concept prototypes."""
        return float(np.linalg.norm(self.prototype(concept_a) - self.prototype(concept_b)))
