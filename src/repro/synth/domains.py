"""Visual domains of the synthetic image world.

The paper's tasks span several visual domains: natural photographs (FMD,
Grocery Store), catalogue-style product images without background
(OfficeHome-Product) and clipart illustrations (OfficeHome-Clipart).  Domain
shift is what makes the Clipart task harder and what the modules must be
robust to.

Each :class:`DomainShift` maps a clean prototype-space image to its
domain-specific appearance.  The product domain is a mild affine change; the
clipart domain applies a fixed random mixing matrix — a much stronger,
feature-entangling shift — which reproduces the ordering
``Product accuracy > Clipart accuracy`` seen throughout the paper's tables.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["DomainShift", "NaturalDomain", "ProductDomain", "ClipartDomain",
           "SmartphoneDomain", "build_domain", "DOMAIN_NAMES"]


class DomainShift:
    """Base class: a deterministic transformation of prototype-space images."""

    name = "base"

    def apply(self, images: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 2:
            raise ValueError("expected an (n, d) batch of images")
        return self.apply(images)


class NaturalDomain(DomainShift):
    """Natural photographs: the identity domain."""

    name = "natural"

    def apply(self, images: np.ndarray) -> np.ndarray:
        return images.copy()


class ProductDomain(DomainShift):
    """Catalogue product shots: uniform background, consistent lighting.

    Implemented as a mild global gain plus a fixed bias ("white background"),
    which keeps class geometry mostly intact — the easy transfer target.
    """

    name = "product"

    def __init__(self, dim: int, seed: int = 0, gain: float = 1.05,
                 bias_scale: float = 0.3):
        rng = np.random.default_rng(seed)
        self.gain = gain
        self.bias = rng.normal(0.0, bias_scale, size=dim)

    def apply(self, images: np.ndarray) -> np.ndarray:
        return self.gain * images + self.bias


class ClipartDomain(DomainShift):
    """Clipart illustrations: flat colours and stylized shapes.

    Implemented as a fixed random rotation-like mixing of features blended
    with the original image, plus a bias.  This entangles features and is the
    strongest shift, making the Clipart task the hardest — matching the paper.
    """

    name = "clipart"

    def __init__(self, dim: int, seed: int = 1, mixing_strength: float = 0.55,
                 bias_scale: float = 0.4):
        rng = np.random.default_rng(seed)
        random_matrix = rng.normal(0.0, 1.0, size=(dim, dim))
        # Orthonormalize so the shift rotates rather than collapses features.
        q, _ = np.linalg.qr(random_matrix)
        self.mixing = (1.0 - mixing_strength) * np.eye(dim) + mixing_strength * q
        self.bias = rng.normal(0.0, bias_scale, size=dim)

    def apply(self, images: np.ndarray) -> np.ndarray:
        return images @ self.mixing.T + self.bias


class SmartphoneDomain(DomainShift):
    """Handheld smartphone photos (Grocery Store): slight blur and exposure jitter.

    Implemented as local feature smoothing (moving average along the feature
    grid) plus a mild gain, a weaker shift than clipart.
    """

    name = "smartphone"

    def __init__(self, dim: int, seed: int = 2, window: int = 2, gain: float = 0.97):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.gain = gain
        rng = np.random.default_rng(seed)
        self.bias = rng.normal(0.0, 0.05, size=dim)

    def apply(self, images: np.ndarray) -> np.ndarray:
        if self.window == 1:
            smoothed = images
        else:
            kernel = np.ones(self.window) / self.window
            smoothed = np.apply_along_axis(
                lambda row: np.convolve(row, kernel, mode="same"), 1, images)
        return self.gain * smoothed + self.bias


DOMAIN_NAMES = ("natural", "product", "clipart", "smartphone")


def build_domain(name: str, dim: int, seed: int = 0) -> DomainShift:
    """Factory for domain shifts by name."""
    name = name.lower()
    if name == "natural":
        return NaturalDomain()
    if name == "product":
        return ProductDomain(dim, seed=seed)
    if name == "clipart":
        return ClipartDomain(dim, seed=seed)
    if name == "smartphone":
        return SmartphoneDomain(dim, seed=seed)
    raise ValueError(f"unknown domain {name!r}; expected one of {DOMAIN_NAMES}")
