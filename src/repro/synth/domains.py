"""Visual domains of the synthetic image world, plus test-time corruptions.

The paper's tasks span several visual domains: natural photographs (FMD,
Grocery Store), catalogue-style product images without background
(OfficeHome-Product) and clipart illustrations (OfficeHome-Clipart).  Domain
shift is what makes the Clipart task harder and what the modules must be
robust to.

Each :class:`DomainShift` maps a clean prototype-space image to its
domain-specific appearance.  The product domain is a mild affine change; the
clipart domain applies a fixed random mixing matrix — a much stronger,
feature-entangling shift — which reproduces the ordering
``Product accuracy > Clipart accuracy`` seen throughout the paper's tables.

:class:`Corruption` extends the same interface with *severity-graded*
perturbations (Gaussian noise, feature occlusion, feature mixing) used by the
scenario matrix (:mod:`repro.scenarios`) to stress models with degraded
inputs, in the spirit of common-corruption robustness benchmarks.  Severity
runs 0..5 where 0 is the identity; a corruption instance is bit-deterministic
(same instance + same batch → identical output arrays), and its distortion
grows monotonically with severity.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

import numpy as np

__all__ = ["DomainShift", "NaturalDomain", "ProductDomain", "ClipartDomain",
           "SmartphoneDomain", "build_domain", "DOMAIN_NAMES",
           "Corruption", "GaussianNoiseCorruption", "OcclusionCorruption",
           "MixingCorruption", "build_corruption", "CORRUPTION_NAMES",
           "MAX_SEVERITY"]


class DomainShift:
    """Base class: a deterministic transformation of prototype-space images."""

    name = "base"

    def apply(self, images: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 2:
            raise ValueError("expected an (n, d) batch of images")
        return self.apply(images)


class NaturalDomain(DomainShift):
    """Natural photographs: the identity domain."""

    name = "natural"

    def apply(self, images: np.ndarray) -> np.ndarray:
        return images.copy()


class ProductDomain(DomainShift):
    """Catalogue product shots: uniform background, consistent lighting.

    Implemented as a mild global gain plus a fixed bias ("white background"),
    which keeps class geometry mostly intact — the easy transfer target.
    """

    name = "product"

    def __init__(self, dim: int, seed: int = 0, gain: float = 1.05,
                 bias_scale: float = 0.3):
        rng = np.random.default_rng(seed)
        self.gain = gain
        self.bias = rng.normal(0.0, bias_scale, size=dim)

    def apply(self, images: np.ndarray) -> np.ndarray:
        return self.gain * images + self.bias


class ClipartDomain(DomainShift):
    """Clipart illustrations: flat colours and stylized shapes.

    Implemented as a fixed random rotation-like mixing of features blended
    with the original image, plus a bias.  This entangles features and is the
    strongest shift, making the Clipart task the hardest — matching the paper.
    """

    name = "clipart"

    def __init__(self, dim: int, seed: int = 1, mixing_strength: float = 0.55,
                 bias_scale: float = 0.4):
        rng = np.random.default_rng(seed)
        random_matrix = rng.normal(0.0, 1.0, size=(dim, dim))
        # Orthonormalize so the shift rotates rather than collapses features.
        q, _ = np.linalg.qr(random_matrix)
        self.mixing = (1.0 - mixing_strength) * np.eye(dim) + mixing_strength * q
        self.bias = rng.normal(0.0, bias_scale, size=dim)

    def apply(self, images: np.ndarray) -> np.ndarray:
        return images @ self.mixing.T + self.bias


class SmartphoneDomain(DomainShift):
    """Handheld smartphone photos (Grocery Store): slight blur and exposure jitter.

    Implemented as local feature smoothing (moving average along the feature
    grid) plus a mild gain, a weaker shift than clipart.
    """

    name = "smartphone"

    def __init__(self, dim: int, seed: int = 2, window: int = 2, gain: float = 0.97):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.gain = gain
        rng = np.random.default_rng(seed)
        self.bias = rng.normal(0.0, 0.05, size=dim)

    def apply(self, images: np.ndarray) -> np.ndarray:
        if self.window == 1:
            smoothed = images
        else:
            kernel = np.ones(self.window) / self.window
            smoothed = np.apply_along_axis(
                lambda row: np.convolve(row, kernel, mode="same"), 1, images)
        return self.gain * smoothed + self.bias


DOMAIN_NAMES = ("natural", "product", "clipart", "smartphone")


def build_domain(name: str, dim: int, seed: int = 0) -> DomainShift:
    """Factory for domain shifts by name."""
    name = name.lower()
    if name == "natural":
        return NaturalDomain()
    if name == "product":
        return ProductDomain(dim, seed=seed)
    if name == "clipart":
        return ClipartDomain(dim, seed=seed)
    if name == "smartphone":
        return SmartphoneDomain(dim, seed=seed)
    raise ValueError(f"unknown domain {name!r}; expected one of {DOMAIN_NAMES}")


# --------------------------------------------------------------------------- #
# Severity-graded corruptions
# --------------------------------------------------------------------------- #

#: Highest supported corruption severity (0 = clean, identity).
MAX_SEVERITY = 5


class Corruption(DomainShift):
    """A severity-graded perturbation of already-rendered images.

    Unlike a :class:`DomainShift` — which models how a *domain* renders a
    concept — a corruption degrades an image at test (or pool) time.  The
    contract every subclass must keep, asserted by
    ``tests/synth/test_corruptions.py``:

    * **bit-determinism** — calling the same instance on the same batch twice
      yields identical arrays; randomness comes from a generator re-seeded
      from ``(kind, seed)`` on every call, never from ambient state;
    * **shape/dtype preservation** — output is a fresh float64 array of the
      input's ``(n, d)`` shape (the engine-wide feature dtype);
    * **monotone distortion** — the perturbation magnitude never decreases
      with severity, and severity 0 is exactly the identity.
    """

    kind = "corruption"

    def __init__(self, dim: int, severity: int, seed: int = 0):
        severity = int(severity)
        if not 0 <= severity <= MAX_SEVERITY:
            raise ValueError(
                f"severity must be in 0..{MAX_SEVERITY}, got {severity}")
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = int(dim)
        self.severity = severity
        self.seed = int(seed)

    def _rng(self) -> np.random.Generator:
        # Severity is deliberately NOT part of the stream seed: severities
        # share the underlying random draws and differ only in magnitude,
        # which makes the distortion exactly monotone in severity.
        return np.random.default_rng([zlib.crc32(self.kind.encode()), self.seed])

    def __call__(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 2:
            raise ValueError("expected an (n, d) batch of images")
        if images.shape[1] != self.dim:
            raise ValueError(
                f"corruption built for dim {self.dim}, got images of dim "
                f"{images.shape[1]}")
        if self.severity == 0:
            return images.copy()
        return self.apply(images)


class GaussianNoiseCorruption(Corruption):
    """Additive white noise: sensor grain, low light, compression artefacts."""

    kind = "gaussian_noise"
    #: noise standard deviation per severity level 0..5
    SIGMA = (0.0, 0.3, 0.6, 0.9, 1.35, 2.0)

    def apply(self, images: np.ndarray) -> np.ndarray:
        noise = self._rng().normal(0.0, 1.0, size=images.shape)
        return images + self.SIGMA[self.severity] * noise


class OcclusionCorruption(Corruption):
    """A contiguous block of features is blanked out (object partly hidden).

    Each image loses one contiguous span of the feature grid; the span's
    anchor position is drawn per image from the corruption's seed, and its
    width grows with severity.
    """

    kind = "occlusion"
    #: fraction of the feature grid occluded per severity level 0..5
    FRACTION = (0.0, 0.12, 0.24, 0.38, 0.52, 0.68)

    def apply(self, images: np.ndarray) -> np.ndarray:
        width = max(1, int(round(self.dim * self.FRACTION[self.severity])))
        width = min(width, self.dim)
        # Anchors are a severity-independent draw: the same image keeps the
        # same occlusion locus while the span widens with severity.
        anchors = self._rng().uniform(0.0, 1.0, size=len(images))
        starts = np.floor(anchors * (self.dim - width + 1)).astype(np.int64)
        columns = starts[:, None] + np.arange(width)[None, :]
        out = images.copy()
        np.put_along_axis(out, columns, 0.0, axis=1)
        return out


class MixingCorruption(Corruption):
    """Features blend through a fixed random rotation (style corruption).

    The same mechanism as :class:`ClipartDomain` but severity-graded and with
    its own mixing matrix, so a model trained on any domain sees a *novel*
    entanglement of its features.
    """

    kind = "mixing"
    #: blend strength toward the random rotation per severity level 0..5
    STRENGTH = (0.0, 0.15, 0.3, 0.45, 0.62, 0.8)

    def __init__(self, dim: int, severity: int, seed: int = 0):
        super().__init__(dim, severity, seed)
        q, _ = np.linalg.qr(self._rng().normal(0.0, 1.0, size=(dim, dim)))
        self._rotation = q

    def apply(self, images: np.ndarray) -> np.ndarray:
        strength = self.STRENGTH[self.severity]
        mixed = images @ self._rotation.T
        return (1.0 - strength) * images + strength * mixed


CORRUPTION_NAMES = ("gaussian_noise", "occlusion", "mixing")

_CORRUPTION_FACTORIES = {
    "gaussian_noise": GaussianNoiseCorruption,
    "occlusion": OcclusionCorruption,
    "mixing": MixingCorruption,
}


def build_corruption(kind: str, dim: int, severity: int,
                     seed: int = 0) -> Corruption:
    """Factory for severity-graded corruptions by kind name."""
    kind = kind.lower()
    if kind not in _CORRUPTION_FACTORIES:
        raise ValueError(
            f"unknown corruption {kind!r}; expected one of {CORRUPTION_NAMES}")
    return _CORRUPTION_FACTORIES[kind](dim, severity, seed=seed)
