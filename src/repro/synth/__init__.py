"""``repro.synth`` — the synthetic visual world standing in for real image data.

Concept prototypes are diffused down the knowledge-graph hierarchy so that
semantic relatedness implies visual relatedness, which is the property SCADS
auxiliary-data selection exploits.  Domain shifts reproduce the visual
domains of the paper's tasks (natural, product, clipart, smartphone).
"""

from .domains import (CORRUPTION_NAMES, DOMAIN_NAMES, MAX_SEVERITY,
                      ClipartDomain, Corruption, DomainShift,
                      GaussianNoiseCorruption, MixingCorruption, NaturalDomain,
                      OcclusionCorruption, ProductDomain, SmartphoneDomain,
                      build_corruption, build_domain)
from .streams import ArrivalSchedule, chunk_indices, subsample_indices
from .world import VisualWorld, WorldSpec

__all__ = [
    "VisualWorld", "WorldSpec",
    "DomainShift", "NaturalDomain", "ProductDomain", "ClipartDomain",
    "SmartphoneDomain", "build_domain", "DOMAIN_NAMES",
    "Corruption", "GaussianNoiseCorruption", "OcclusionCorruption",
    "MixingCorruption", "build_corruption", "CORRUPTION_NAMES", "MAX_SEVERITY",
    "ArrivalSchedule", "chunk_indices", "subsample_indices",
]
