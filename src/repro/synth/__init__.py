"""``repro.synth`` — the synthetic visual world standing in for real image data.

Concept prototypes are diffused down the knowledge-graph hierarchy so that
semantic relatedness implies visual relatedness, which is the property SCADS
auxiliary-data selection exploits.  Domain shifts reproduce the visual
domains of the paper's tasks (natural, product, clipart, smartphone).
"""

from .domains import (DOMAIN_NAMES, ClipartDomain, DomainShift, NaturalDomain,
                      ProductDomain, SmartphoneDomain, build_domain)
from .world import VisualWorld, WorldSpec

__all__ = [
    "VisualWorld", "WorldSpec",
    "DomainShift", "NaturalDomain", "ProductDomain", "ClipartDomain",
    "SmartphoneDomain", "build_domain", "DOMAIN_NAMES",
]
