"""``repro`` — a from-scratch reproduction of TAGLETS (MLSys 2022).

TAGLETS is an automatic semi-supervised learning system that exploits three
kinds of data at once: limited labeled target data, unlabeled target data,
and auxiliary data organized in a knowledge-graph-backed repository (SCADS).
This package rebuilds the entire system — and every substrate it depends on —
in pure NumPy/SciPy/networkx:

* :mod:`repro.nn` — autograd, layers, optimizers, data pipeline,
* :mod:`repro.kg` — the ConceptNet-analog knowledge graph and embeddings,
* :mod:`repro.synth` — the synthetic visual world replacing real image data,
* :mod:`repro.datasets` — the paper's four evaluation tasks,
* :mod:`repro.scads` — the Structured Collection of Annotated Datasets,
* :mod:`repro.backbones` — the ResNet-50 / BiT pretrained-encoder analogs,
* :mod:`repro.modules` — the Transfer, Multi-task, FixMatch and ZSL-KG taglets,
* :mod:`repro.ensemble` / :mod:`repro.distill` — pseudo labeling and the end model,
* :mod:`repro.core` — the public ``Task`` / ``Controller`` API,
* :mod:`repro.baselines` — the comparison methods of the evaluation,
* :mod:`repro.evaluation` — metrics, confidence intervals and the experiment runner,
* :mod:`repro.serve` — versioned end-model artifacts and the micro-batched
  serving layer (registry, HTTP endpoint, ``python -m repro.serve``).

Quickstart::

    from repro.workspace import build_workspace
    from repro.core import Task, Controller

    ws = build_workspace(seed=0)                      # graph + world + SCADS + backbones
    split = ws.make_task_split("fmd", shots=5, split_seed=0)
    task = Task.from_split(split, scads=ws.scads, backbone=ws.backbone("resnet50"))
    result = Controller().run(task)
    print(result.end_model_accuracy(split.test_features, split.test_labels))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
