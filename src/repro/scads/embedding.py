"""SCADS embeddings: retrofitted concept vectors with OOV approximation.

The SCADS embedding of a concept expresses both the knowledge-graph topology
and the text-derived word vector (paper Appendix A.1).  Target classes that
are not concepts of the graph get an approximated embedding: a weighted
average of the embeddings of terms sharing the longest possible prefix
(paper Section 3.1), or — if the class was added as a new node — the
retrofitted vector computed from its neighbours alone.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..kg.embeddings import generate_text_embeddings, retrofit
from ..kg.graph import KnowledgeGraph
from ..kg.similarity import EmbeddingIndex

__all__ = ["ScadsEmbedding"]


class ScadsEmbedding:
    """Concept vectors for SCADS queries.

    Parameters
    ----------
    graph:
        The SCADS knowledge graph.
    text_embeddings:
        Optional pre-computed word vectors; generated from the graph when
        omitted (the synthetic stand-in for word2vec).
    dim:
        Dimension of generated text embeddings.
    retrofit_iterations:
        Sweeps of the expanded-retrofitting update.
    """

    def __init__(self, graph: KnowledgeGraph,
                 text_embeddings: Optional[Mapping[str, np.ndarray]] = None,
                 dim: int = 64, retrofit_iterations: int = 8, seed: int = 0):
        self.graph = graph
        if text_embeddings is None:
            text_embeddings = generate_text_embeddings(graph, dim=dim, seed=seed)
        self._vectors: Dict[str, np.ndarray] = retrofit(
            graph, text_embeddings, iterations=retrofit_iterations)
        if not self._vectors:
            raise ValueError("the knowledge graph has no concepts to embed")
        self.dim = len(next(iter(self._vectors.values())))
        self._index = EmbeddingIndex(self._vectors)

    # ------------------------------------------------------------------ #
    # Vectors
    # ------------------------------------------------------------------ #
    def __contains__(self, concept: str) -> bool:
        try:
            return KnowledgeGraph.normalize(concept) in self._vectors
        except ValueError:
            return False

    def concepts(self) -> List[str]:
        return list(self._vectors.keys())

    def get_vector(self, concept: str, allow_approximation: bool = True) -> np.ndarray:
        """Return the SCADS embedding of ``concept``.

        Falls back to the longest-prefix approximation for terms that are not
        concepts of the graph (paper Section 3.1), raising ``KeyError`` only
        when approximation is disabled or no prefix match exists.
        """
        normalized = KnowledgeGraph.normalize(concept)
        if normalized in self._vectors:
            return self._vectors[normalized].copy()
        if not allow_approximation:
            raise KeyError(f"concept {concept!r} has no SCADS embedding")
        approximation = self.approximate_vector(normalized)
        if approximation is None:
            raise KeyError(f"concept {concept!r} has no SCADS embedding and no "
                           "prefix-based approximation is possible")
        return approximation

    def approximate_vector(self, term: str) -> Optional[np.ndarray]:
        """Longest-shared-prefix approximation ``ê_q ≈ sum_j w_j e_j``.

        ``P`` is the set of concepts sharing the longest possible prefix with
        the term; each gets weight ``1/|P|`` (paper Section 3.1).
        """
        term = KnowledgeGraph.normalize(term)
        best_len = 0
        members: List[str] = []
        for concept in self._vectors:
            shared = _common_prefix_length(term, concept)
            if shared > best_len:
                best_len = shared
                members = [concept]
            elif shared == best_len and shared > 0:
                members.append(concept)
        if best_len < 3 or not members:
            # Require a meaningful shared prefix; single characters match noise.
            return None
        weights = np.full(len(members), 1.0 / len(members))
        stacked = np.stack([self._vectors[c] for c in members])
        return np.average(stacked, axis=0, weights=weights)

    def register_vector(self, concept: str, vector: np.ndarray) -> None:
        """Register an explicit vector for a concept (e.g. a newly added node)."""
        concept = KnowledgeGraph.normalize(concept)
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector must have shape ({self.dim},)")
        self._vectors[concept] = vector
        self._index = EmbeddingIndex(self._vectors)

    def compute_node_vector(self, concept: str) -> np.ndarray:
        """Vector for a node already added to the graph: average of neighbours.

        Equivalent to one retrofitting update with ``alpha = 0``, which is how
        the paper handles concepts without text embeddings.
        """
        concept = KnowledgeGraph.normalize(concept)
        neighbor_vectors = [self._vectors[n] for n, _, _ in self.graph.neighbors(concept)
                            if n in self._vectors]
        if not neighbor_vectors:
            raise KeyError(f"node {concept!r} has no embedded neighbours")
        return np.mean(neighbor_vectors, axis=0)

    # ------------------------------------------------------------------ #
    # Similarity queries
    # ------------------------------------------------------------------ #
    def related_concepts(self, concept_or_vector, top_k: int,
                         candidates: Optional[Sequence[str]] = None,
                         exclude: Optional[Sequence[str]] = None
                         ) -> List[Tuple[str, float]]:
        """Top-k concepts most similar to a query concept or vector.

        ``candidates`` restricts the search to a subset of concepts (e.g. the
        concepts that actually have auxiliary images); ``exclude`` removes
        specific concepts (typically the query itself).
        """
        if isinstance(concept_or_vector, str):
            query = self.get_vector(concept_or_vector)
            exclude = list(exclude or []) + [KnowledgeGraph.normalize(concept_or_vector)]
        else:
            query = np.asarray(concept_or_vector, dtype=np.float64)
        index = self._candidate_index(candidates)
        if index is None:
            return []
        return index.top_k(query, top_k, exclude=exclude)

    def related_concepts_batch(self, queries: Sequence[np.ndarray], top_k: int,
                               candidates: Optional[Sequence[str]] = None,
                               exclude: Optional[Sequence[str]] = None
                               ) -> List[List[Tuple[str, float]]]:
        """Top-k related concepts for many query vectors at once.

        Builds the candidate index a single time and scores every query in
        one ``(q, d) @ (d, n)`` matrix multiply — the batched form of the
        per-target-class similarity queries in auxiliary-data selection.
        """
        queries = [np.asarray(q, dtype=np.float64) for q in queries]
        if not queries:
            return []
        index = self._candidate_index(candidates)
        if index is None:
            return [[] for _ in queries]
        return index.top_k_batch(np.stack(queries), top_k, exclude=exclude)

    def _candidate_index(self,
                         candidates: Optional[Sequence[str]]) -> Optional[EmbeddingIndex]:
        if candidates is None:
            return self._index
        subset = {c: self._vectors[c] for c in candidates if c in self._vectors}
        if not subset:
            return None
        return EmbeddingIndex(subset)


def _common_prefix_length(a: str, b: str) -> int:
    length = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b:
            break
        length += 1
    return length
