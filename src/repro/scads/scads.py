"""The Structured Collection of Annotated Datasets (SCADS).

A SCADS joins every available annotated dataset to a common sense knowledge
graph: all images of a dataset class are attached to the corresponding
concept node (paper Section 3.1, Figure 3A).  This module implements that
repository:

* installing auxiliary datasets (concept -> image arrays),
* retrieving the images attached to a concept,
* extending the graph with new nodes for out-of-vocabulary target classes
  (paper Example 3.2),
* pruning — removing concepts close to the target classes from the pool of
  *selectable* auxiliary data to simulate distantly-related auxiliary data
  (paper Section 4.3).  Pruning affects which images can be retrieved, not
  the underlying ConceptNet graph, matching the paper's use of the
  ImageNet-21k semantic tree for pruning.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..kg.graph import KnowledgeGraph, Relation
from ..kg.hierarchy import pruned_concepts

__all__ = ["Scads"]


class Scads:
    """A knowledge graph joined with image collections per concept."""

    def __init__(self, graph: KnowledgeGraph):
        self.graph = graph
        self._images: Dict[str, np.ndarray] = {}
        self._datasets: Dict[str, List[str]] = {}
        self._excluded: Set[str] = set()

    # ------------------------------------------------------------------ #
    # Installation
    # ------------------------------------------------------------------ #
    def install_dataset(self, name: str,
                        concept_images: Mapping[str, np.ndarray]) -> int:
        """Attach a labeled dataset to the graph.

        ``concept_images`` maps concept name -> ``(n_i, d)`` image array.  All
        concepts must already exist in the graph (use :meth:`add_node` first
        for new concepts).  Returns the number of images installed.
        """
        if name in self._datasets:
            raise ValueError(f"dataset {name!r} is already installed")
        installed_concepts: List[str] = []
        count = 0
        for concept, images in concept_images.items():
            concept = KnowledgeGraph.normalize(concept)
            if concept not in self.graph:
                raise KeyError(f"concept {concept!r} is not in the knowledge graph; "
                               "add it with add_node() before installing images")
            images = np.asarray(images, dtype=np.float64)
            if images.ndim != 2:
                raise ValueError(f"images for {concept!r} must be a 2-D array")
            if concept in self._images:
                self._images[concept] = np.concatenate([self._images[concept], images])
            else:
                self._images[concept] = images
            installed_concepts.append(concept)
            count += len(images)
        self._datasets[name] = installed_concepts
        return count

    def add_node(self, concept: str,
                 edges: Sequence[Tuple[str, str]] = ()) -> None:
        """Add a new concept node and connect it to existing concepts.

        ``edges`` is a sequence of ``(existing_concept, relation)`` pairs.
        This is how end users align target classes that have no counterpart in
        the knowledge graph (paper Example 3.2: ``oatghurt`` linked to
        yoghurt, carton, and oat milk).
        """
        concept = KnowledgeGraph.normalize(concept)
        self.graph.add_concept(concept)
        for neighbor, relation in edges:
            self.graph.add_edge(concept, neighbor, relation=relation)

    # ------------------------------------------------------------------ #
    # Retrieval
    # ------------------------------------------------------------------ #
    @property
    def installed_datasets(self) -> List[str]:
        return list(self._datasets)

    def concepts_with_images(self) -> List[str]:
        """Concepts that currently have selectable images (Q_YS minus pruned)."""
        return [c for c in self._images if c not in self._excluded]

    def has_images(self, concept: str) -> bool:
        concept = KnowledgeGraph.normalize(concept)
        return concept in self._images and concept not in self._excluded

    def get_images(self, concept: str,
                   limit: Optional[int] = None,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Return up to ``limit`` images attached to ``concept``.

        When ``limit`` is smaller than the number of stored images a random
        subset (without replacement) is returned; pass ``rng`` for
        reproducibility.
        """
        concept = KnowledgeGraph.normalize(concept)
        if not self.has_images(concept):
            raise KeyError(f"concept {concept!r} has no selectable images")
        images = self._images[concept]
        if limit is None or limit >= len(images):
            return images.copy()
        rng = rng if rng is not None else np.random.default_rng()
        indices = rng.choice(len(images), size=limit, replace=False)
        return images[indices]

    def num_images(self, concept: Optional[str] = None) -> int:
        if concept is not None:
            concept = KnowledgeGraph.normalize(concept)
            if concept not in self._images or concept in self._excluded:
                return 0
            return len(self._images[concept])
        return int(sum(len(images) for c, images in self._images.items()
                       if c not in self._excluded))

    @property
    def image_dim(self) -> int:
        for images in self._images.values():
            return images.shape[1]
        raise RuntimeError("no datasets installed yet")

    # ------------------------------------------------------------------ #
    # Pruning
    # ------------------------------------------------------------------ #
    def pruned(self, target_classes: Iterable[str], level: Optional[int]) -> "Scads":
        """Return a SCADS view with concepts near the target classes excluded.

        ``level`` follows the paper: ``None`` = no pruning, ``0`` = remove
        each target class and its descendants from the selectable pool, ``1``
        = additionally remove the parent and its whole subtree.  The graph and
        image store are shared (cheap), only the exclusion set differs.
        """
        view = Scads(self.graph)
        view._images = self._images
        view._datasets = self._datasets
        view._excluded = set(self._excluded)
        if level is None:
            return view
        for cls in target_classes:
            cls = KnowledgeGraph.normalize(cls)
            if cls not in self.graph:
                continue
            view._excluded |= pruned_concepts(self.graph, cls, level)
        return view

    @property
    def excluded_concepts(self) -> Set[str]:
        return set(self._excluded)
