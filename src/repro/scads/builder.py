"""Convenience builders assembling a ready-to-query SCADS.

The paper installs ImageNet-21k into SCADS on top of ConceptNet.  Here the
equivalent is sampling images for (almost) every concept of the synthetic
knowledge graph from the :class:`~repro.synth.world.VisualWorld` and
installing them as the ``imagenet21k`` auxiliary dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.base import ClassSpec
from ..kg.graph import KnowledgeGraph, Relation
from ..synth.world import VisualWorld
from .embedding import ScadsEmbedding
from .query import AuxiliarySelection, select_auxiliary_data
from .scads import Scads

__all__ = ["ScadsBundle", "install_imagenet21k", "build_scads", "align_target_classes"]

#: Structural concepts that never carry images (they are organizational
#: nodes, like WordNet synsets high up the hierarchy).
_STRUCTURAL_CONCEPTS = {"entity", "material", "object", "food", "organism",
                        "place", "abstraction"}


@dataclass
class ScadsBundle:
    """A SCADS repository together with its embeddings — the unit modules consume."""

    scads: Scads
    embedding: ScadsEmbedding

    def select(self, target_classes: Sequence[ClassSpec],
               num_related_concepts: int = 5, images_per_concept: int = 20,
               rng: Optional[np.random.Generator] = None,
               exclude_target_concepts: bool = False) -> AuxiliarySelection:
        """Query the bundle for task-related auxiliary data."""
        return select_auxiliary_data(
            self.scads, self.embedding, target_classes,
            num_related_concepts=num_related_concepts,
            images_per_concept=images_per_concept, rng=rng,
            exclude_target_concepts=exclude_target_concepts)

    def pruned(self, target_classes: Sequence[ClassSpec],
               level: Optional[int]) -> "ScadsBundle":
        """A view of the bundle with concepts near the target classes excluded."""
        names = [c.concept for c in target_classes if c.concept]
        return ScadsBundle(scads=self.scads.pruned(names, level),
                           embedding=self.embedding)


def install_imagenet21k(scads: Scads, world: VisualWorld,
                        images_per_concept: int = 30,
                        skip_concepts: Iterable[str] = (),
                        seed: int = 0) -> int:
    """Install the ImageNet-21k analog: natural-domain images for every concept.

    Structural (purely organizational) concepts and anything in
    ``skip_concepts`` are left without images.  Returns the number of images
    installed.
    """
    rng = np.random.default_rng(seed)
    skip = {KnowledgeGraph.normalize(c) for c in skip_concepts} | _STRUCTURAL_CONCEPTS
    concept_images: Dict[str, np.ndarray] = {}
    for concept in scads.graph.concepts:
        if concept in skip:
            continue
        concept_images[concept] = world.sample_images(
            concept, images_per_concept, domain="natural", rng=rng)
    return scads.install_dataset("imagenet21k", concept_images)


def build_scads(graph: KnowledgeGraph, world: VisualWorld,
                images_per_concept: int = 30, seed: int = 0,
                embedding_dim: int = 64,
                text_embeddings=None) -> ScadsBundle:
    """Build a SCADS with the ImageNet-21k analog installed and embeddings ready.

    ``text_embeddings`` should normally be the same concept embeddings the
    visual world was built from, so that SCADS similarity reflects visual
    similarity (how the Workspace wires things up).
    """
    scads = Scads(graph)
    install_imagenet21k(scads, world, images_per_concept=images_per_concept, seed=seed)
    embedding = ScadsEmbedding(graph, text_embeddings=text_embeddings,
                               dim=embedding_dim, seed=seed)
    return ScadsBundle(scads=scads, embedding=embedding)


def align_target_classes(bundle: ScadsBundle, world: VisualWorld,
                         target_classes: Sequence[ClassSpec],
                         images_per_new_concept: int = 0,
                         seed: int = 0) -> List[str]:
    """Align target classes with SCADS, adding nodes for OOV classes.

    For every class without a graph concept (e.g. ``oatghurt``), a new node is
    added, linked to its anchor concepts, and given a SCADS embedding computed
    from its neighbours (retrofitting with ``alpha = 0``).  Optionally a small
    number of synthetic images can be attached to the new node (the paper does
    not do this — auxiliary images come only from installed datasets — so the
    default is 0).

    Returns the list of newly added concept names.
    """
    added: List[str] = []
    for spec in target_classes:
        if spec.concept is not None:
            continue
        name = KnowledgeGraph.normalize(spec.name)
        if name not in bundle.scads.graph:
            edges = [(anchor, Relation.RELATED_TO) for anchor in spec.anchors]
            bundle.scads.add_node(name, edges=edges)
            added.append(name)
        if name not in bundle.embedding:
            vector = bundle.embedding.compute_node_vector(name)
            bundle.embedding.register_vector(name, vector)
        if images_per_new_concept > 0:
            if name not in world:
                world.add_concept_prototype(name, spec.anchors, seed=seed)
            rng = np.random.default_rng(seed)
            images = world.sample_images(name, images_per_new_concept, rng=rng)
            bundle.scads.install_dataset(f"user_{name}", {name: images})
    return added
