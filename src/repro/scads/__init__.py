"""``repro.scads`` — the Structured Collection of Annotated Datasets.

Implements the paper's Section 3.1: installing auxiliary datasets onto the
knowledge graph, SCADS embeddings (retrofitted vectors with OOV
approximation), graph-based auxiliary-data selection, pruning, and the
extensibility hooks for out-of-vocabulary target classes.
"""

from .builder import (ScadsBundle, align_target_classes, build_scads,
                      install_imagenet21k)
from .embedding import ScadsEmbedding
from .query import AuxiliarySelection, select_auxiliary_data, target_class_vector
from .scads import Scads

__all__ = [
    "Scads", "ScadsEmbedding", "ScadsBundle",
    "AuxiliarySelection", "select_auxiliary_data", "target_class_vector",
    "build_scads", "install_imagenet21k", "align_target_classes",
]
