"""Auxiliary-data selection: the SCADS query of paper Section 3.1.

For every target class the query finds the ``N`` most semantically similar
concepts that have auxiliary images, then retrieves up to ``K`` images from
each, producing the selected auxiliary set ``R`` with ``|R| <= C * N * K``
examples and an auxiliary label space of one class per selected concept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.base import ClassSpec
from ..kg.graph import KnowledgeGraph
from .embedding import ScadsEmbedding
from .scads import Scads

__all__ = ["AuxiliarySelection", "select_auxiliary_data", "target_class_vector"]


@dataclass
class AuxiliarySelection:
    """The result of a SCADS auxiliary-data query.

    ``features``/``labels`` form the auxiliary classification task used by the
    Transfer, Multi-task and FixMatch modules; ``concepts`` names the
    auxiliary classes; ``per_target_concepts`` records which concepts were
    selected for each target class (useful for inspection and for the
    Figure 4 style analyses).
    """

    features: np.ndarray
    labels: np.ndarray
    concepts: List[str]
    per_target_concepts: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def num_aux_classes(self) -> int:
        return len(self.concepts)

    def __len__(self) -> int:
        return len(self.features)

    def is_empty(self) -> bool:
        return len(self.features) == 0


def target_class_vector(spec: ClassSpec, scads: Scads,
                        embedding: ScadsEmbedding) -> Optional[np.ndarray]:
    """SCADS embedding for a target class, handling out-of-vocabulary classes.

    Resolution order:

    1. the class concept's retrofitted vector, if the class maps to a graph
       concept;
    2. for a class added to the graph as a new node (via ``Scads.add_node``):
       the neighbour-average vector (retrofitting with ``alpha = 0``);
    3. the longest-prefix approximation;
    4. ``None`` when nothing applies (the class is skipped by the query).
    """
    name = KnowledgeGraph.normalize(spec.name)
    concept = spec.concept and KnowledgeGraph.normalize(spec.concept)
    if concept and concept in embedding:
        return embedding.get_vector(concept)
    if name in embedding:
        return embedding.get_vector(name)
    if name in scads.graph:
        try:
            return embedding.compute_node_vector(name)
        except KeyError:
            pass
    approximation = embedding.approximate_vector(name)
    return approximation


def select_auxiliary_data(scads: Scads, embedding: ScadsEmbedding,
                          target_classes: Sequence[ClassSpec],
                          num_related_concepts: int = 5,
                          images_per_concept: int = 20,
                          rng: Optional[np.random.Generator] = None,
                          exclude_target_concepts: bool = True
                          ) -> AuxiliarySelection:
    """Select task-related auxiliary data ``R`` from SCADS.

    Parameters
    ----------
    scads:
        The (possibly pruned) SCADS repository.
    embedding:
        SCADS embeddings used for graph-based similarity.
    target_classes:
        The target task's classes.
    num_related_concepts:
        ``N`` — concepts retrieved per target class.
    images_per_concept:
        ``K`` — images retrieved per selected concept.
    exclude_target_concepts:
        Whether the target concepts themselves are barred from selection.
        The paper keeps them selectable when present in the auxiliary data
        (no pruning) — pass ``False`` to reproduce that; the default ``True``
        is the stricter setting used when the auxiliary pool legitimately
        contains the exact target classes and one wants related-but-different
        data.  The experiment runner passes ``False``.
    """
    if num_related_concepts <= 0 or images_per_concept <= 0:
        raise ValueError("num_related_concepts and images_per_concept must be positive")
    rng = rng if rng is not None else np.random.default_rng()

    candidates = scads.concepts_with_images()
    if not candidates:
        return AuxiliarySelection(features=np.zeros((0, 0)),
                                  labels=np.zeros(0, dtype=np.int64),
                                  concepts=[])

    target_concept_names = {KnowledgeGraph.normalize(c.concept)
                            for c in target_classes if c.concept}

    # Resolve every target class's query vector first, then rank all of them
    # against the candidate set in one batched similarity query (a single
    # matrix multiply over one shared index instead of per-class queries).
    queries: List[np.ndarray] = []
    queried_specs: List[ClassSpec] = []
    per_target: Dict[str, List[str]] = {}
    for spec in target_classes:
        query = target_class_vector(spec, scads, embedding)
        if query is None:
            per_target[spec.name] = []
            continue
        queries.append(query)
        queried_specs.append(spec)

    exclude = list(target_concept_names) if exclude_target_concepts else []
    ranked_batch = embedding.related_concepts_batch(
        queries, top_k=num_related_concepts, candidates=candidates,
        exclude=exclude)

    selected_concepts: List[str] = []
    for spec, ranked in zip(queried_specs, ranked_batch):
        chosen = [concept for concept, _ in ranked]
        per_target[spec.name] = chosen
        selected_concepts.extend(chosen)

    # Deduplicate while preserving order: a concept selected for two target
    # classes contributes a single auxiliary class.
    unique_concepts: List[str] = []
    seen = set()
    for concept in selected_concepts:
        if concept not in seen:
            seen.add(concept)
            unique_concepts.append(concept)

    features: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    for aux_label, concept in enumerate(unique_concepts):
        images = scads.get_images(concept, limit=images_per_concept, rng=rng)
        features.append(images)
        labels.append(np.full(len(images), aux_label, dtype=np.int64))

    if not features:
        return AuxiliarySelection(features=np.zeros((0, scads.image_dim)),
                                  labels=np.zeros(0, dtype=np.int64),
                                  concepts=[], per_target_concepts=per_target)
    return AuxiliarySelection(features=np.concatenate(features, axis=0),
                              labels=np.concatenate(labels, axis=0),
                              concepts=unique_concepts,
                              per_target_concepts=per_target)
