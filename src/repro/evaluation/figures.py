"""Computations behind the paper's figures (5–13 and the Figure 7 ablation).

The figures all derive from TAGLETS runs with extra measurements recorded in
the experiment records: per-module accuracy, ensemble accuracy, and end-model
accuracy.  These helpers turn flat records into the series each figure plots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .metrics import Aggregate, mean_confidence_interval
from .runner import ExperimentResult

__all__ = [
    "PRUNE_METHOD_LABELS",
    "module_accuracy_series",
    "ensemble_improvement_series",
    "module_removal_deltas",
]

#: Method name -> prune level used when recording TAGLETS runs.
PRUNE_METHOD_LABELS = {
    "taglets": "no_pruning",
    "taglets_prune0": "prune_level_0",
    "taglets_prune1": "prune_level_1",
}


def _records_of(records: Iterable[ExperimentResult], **filters) -> List[ExperimentResult]:
    out = []
    for record in records:
        if all(getattr(record, key) == value for key, value in filters.items()):
            out.append(record)
    return out


def module_accuracy_series(records: Iterable[ExperimentResult], dataset: str,
                           backbone: str = "resnet50",
                           modules: Sequence[str] = ("multitask", "transfer",
                                                     "fixmatch", "zsl_kg"),
                           methods: Sequence[str] = ("taglets", "taglets_prune0",
                                                     "taglets_prune1"),
                           split_seed: Optional[int] = None,
                           scenario: Optional[str] = None
                           ) -> Dict[str, Dict[Tuple[int, str], Aggregate]]:
    """Figure 5/8/10/11 data: per-module accuracy by (shots, prune level).

    Returns ``module -> (shots, prune_label) -> Aggregate``.  ``scenario``
    selects scenario-matrix rows by recorded scenario name (no string
    parsing); ``None`` aggregates every matching record as before.
    """
    records = list(records)
    series: Dict[str, Dict[Tuple[int, str], List[float]]] = {m: {} for m in modules}
    for record in records:
        if record.dataset != dataset or record.backbone != backbone:
            continue
        if record.method not in methods:
            continue
        if split_seed is not None and record.split_seed != split_seed:
            continue
        if scenario is not None and record.scenario != scenario:
            continue
        prune_label = PRUNE_METHOD_LABELS.get(record.method, record.method)
        for module in modules:
            value = record.extras.get(f"module_{module}")
            if value is None:
                continue
            series[module].setdefault((record.shots, prune_label), []).append(value)
    return {module: {key: mean_confidence_interval(values)
                     for key, values in cells.items()}
            for module, cells in series.items()}


def ensemble_improvement_series(records: Iterable[ExperimentResult], dataset: str,
                                backbone: str = "resnet50",
                                modules: Sequence[str] = ("multitask", "transfer",
                                                          "fixmatch", "zsl_kg"),
                                methods: Sequence[str] = ("taglets",
                                                          "taglets_prune0",
                                                          "taglets_prune1"),
                                split_seed: Optional[int] = None,
                                scenario: Optional[str] = None
                                ) -> Dict[Tuple[int, str], Dict[str, Aggregate]]:
    """Figure 6/9/12/13 data: ensemble and end-model improvement over the
    average module accuracy, keyed by (shots, prune level).

    Returns ``(shots, prune_label) -> {"ensemble_gain": ..., "end_model_gain": ...}``.
    """
    records = list(records)
    gains: Dict[Tuple[int, str], Dict[str, List[float]]] = {}
    for record in records:
        if record.dataset != dataset or record.backbone != backbone:
            continue
        if record.method not in methods:
            continue
        if split_seed is not None and record.split_seed != split_seed:
            continue
        if scenario is not None and record.scenario != scenario:
            continue
        module_values = [record.extras[f"module_{m}"] for m in modules
                         if f"module_{m}" in record.extras]
        if not module_values or "ensemble" not in record.extras:
            continue
        average_module = float(np.mean(module_values))
        prune_label = PRUNE_METHOD_LABELS.get(record.method, record.method)
        cell = gains.setdefault((record.shots, prune_label),
                                {"ensemble_gain": [], "end_model_gain": []})
        cell["ensemble_gain"].append(record.extras["ensemble"] - average_module)
        cell["end_model_gain"].append(record.extras["end_model"] - average_module)
    return {key: {name: mean_confidence_interval(values)
                  for name, values in cell.items() if values}
            for key, cell in gains.items()}


def module_removal_deltas(full_records: Iterable[ExperimentResult],
                          ablated_records: Dict[str, Iterable[ExperimentResult]],
                          ) -> Dict[str, Aggregate]:
    """Figure 7 data: change in end-model accuracy when one module is removed.

    ``full_records`` are TAGLETS runs with all modules; ``ablated_records``
    maps the removed module's name to runs without it.  Deltas are computed
    between runs matched on (dataset, shots, split, backbone, seed); negative
    values mean removing the module hurts.
    """
    full_index = {(r.dataset, r.shots, r.split_seed, r.backbone, r.seed): r.accuracy
                  for r in full_records}
    deltas: Dict[str, Aggregate] = {}
    for removed_module, records in ablated_records.items():
        differences = []
        for record in records:
            key = (record.dataset, record.shots, record.split_seed,
                   record.backbone, record.seed)
            if key in full_index:
                differences.append(record.accuracy - full_index[key])
        if differences:
            deltas[removed_module] = mean_confidence_interval(differences)
    return deltas
