"""Formatting experiment records into the paper's table layout.

Tables 1–4 report accuracy (%) per method and backbone with columns for the
shot counts; :func:`format_results_table` renders the same layout as plain
text so the benchmark harness can print rows directly comparable to the
paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import Aggregate
from .runner import ExperimentResult, aggregate_records

__all__ = ["results_matrix", "format_results_table", "format_series"]

#: Human-readable method names matching the paper's rows.
METHOD_LABELS = {
    "finetune": "Fine-tuning",
    "finetune_distilled": "Fine-tuning (Distilled)",
    "fixmatch": "FixMatch",
    "meta_pseudo_labels": "Meta Pseudo Label",
    "simclrv2": "SimCLRv2",
    "taglets": "TAGLETS",
    "taglets_prune0": "TAGLETS prune-level 0",
    "taglets_prune1": "TAGLETS prune-level 1",
}

BACKBONE_LABELS = {
    "bit": "BiT (ImageNet-21k)",
    "resnet50": "ResNet-50 (ImageNet-1k)",
}


def results_matrix(records: Iterable[ExperimentResult], dataset: str,
                   backbone: str, shots_list: Sequence[int],
                   methods: Sequence[str],
                   split_seed: Optional[int] = None,
                   scenario: Optional[str] = None
                   ) -> Dict[str, Dict[int, Aggregate]]:
    """Aggregate records into ``method -> shots -> Aggregate`` for one table block.

    ``scenario`` selects scenario-matrix rows by name (``None`` keeps the
    seed behaviour of aggregating every matching record); scenario provenance
    lives on the records themselves, so no string parsing is involved.
    """
    records = [r for r in records
               if r.dataset == dataset and r.backbone == backbone
               and (split_seed is None or r.split_seed == split_seed)
               and (scenario is None or r.scenario == scenario)]
    aggregates = aggregate_records(records, group_by=("method", "shots"))
    matrix: Dict[str, Dict[int, Aggregate]] = {}
    for method in methods:
        row: Dict[int, Aggregate] = {}
        for shots in shots_list:
            key = (method, shots)
            if key in aggregates:
                row[shots] = aggregates[key]
        if row:
            matrix[method] = row
    return matrix


def format_results_table(records: Iterable[ExperimentResult], dataset: str,
                         shots_list: Sequence[int], methods: Sequence[str],
                         backbones: Sequence[str] = ("bit", "resnet50"),
                         split_seed: Optional[int] = None,
                         scenario: Optional[str] = None,
                         title: Optional[str] = None,
                         as_percent: bool = True) -> str:
    """Render a paper-style table: one block per backbone, rows per method."""
    records = list(records)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = f"{'Method':<28} {'Backbone':<26} " + " ".join(
        f"{shots}-shot".rjust(14) for shots in shots_list)
    lines.append(header)
    lines.append("-" * len(header))
    scale = 100.0 if as_percent else 1.0
    for backbone in backbones:
        matrix = results_matrix(records, dataset, backbone, shots_list, methods,
                                split_seed=split_seed, scenario=scenario)
        for method in methods:
            if method not in matrix:
                continue
            row = matrix[method]
            cells = []
            for shots in shots_list:
                if shots in row:
                    aggregate = row[shots]
                    cells.append(f"{aggregate.mean * scale:6.2f}±"
                                 f"{aggregate.half_width * scale:5.2f}".rjust(14))
                else:
                    cells.append("-".rjust(14))
            lines.append(f"{METHOD_LABELS.get(method, method):<28} "
                         f"{BACKBONE_LABELS.get(backbone, backbone):<26} "
                         + " ".join(cells))
        lines.append("-" * len(header))
    return "\n".join(lines)


def format_series(series: Dict[str, Dict], title: str,
                  as_percent: bool = True) -> str:
    """Render nested ``{row -> {column -> value}}`` data as an aligned text block."""
    lines = [title, "=" * len(title)]
    scale = 100.0 if as_percent else 1.0
    columns: List = sorted({c for row in series.values() for c in row})
    header = f"{'':<28} " + " ".join(str(c).rjust(12) for c in columns)
    lines.append(header)
    for row_name, row in series.items():
        cells = []
        for column in columns:
            value = row.get(column)
            if value is None:
                cells.append("-".rjust(12))
            elif isinstance(value, Aggregate):
                cells.append(f"{value.mean * scale:6.2f}±{value.half_width * scale:4.2f}"
                             .rjust(12))
            else:
                cells.append(f"{float(value) * scale:8.2f}".rjust(12))
        lines.append(f"{row_name:<28} " + " ".join(cells))
    return "\n".join(lines)
