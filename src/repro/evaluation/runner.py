"""The experiment runner: every cell of the paper's tables is one call here.

A *method* is a named recipe mapping ``(workspace, split, backbone_name,
seed)`` to a result record.  The registry contains the paper's baselines and
TAGLETS variants (full system, pruned SCADS, leave-one-module-out), and
:class:`ExperimentRunner` sweeps methods over datasets, shot counts, splits,
backbones and seeds, producing flat records the table/figure formatters
aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..baselines import (BaselineInput, DistilledFineTuningBaseline,
                         FineTuningBaseline, FixMatchBaseline,
                         MetaPseudoLabelsBaseline, SimCLRBaseline)
from ..core import Controller, ControllerConfig, Task
from ..datasets.base import TaskSplit
from ..modules import DEFAULT_MODULES
from ..workspace import Workspace
from .metrics import Aggregate, mean_confidence_interval

__all__ = ["ExperimentResult", "MethodSpec", "ExperimentRunner",
           "taglets_method", "baseline_method", "METHOD_REGISTRY",
           "aggregate_records"]


@dataclass
class ExperimentResult:
    """One (method, dataset, shots, split, backbone, seed) measurement."""

    method: str
    dataset: str
    shots: int
    split_seed: int
    backbone: str
    seed: int
    accuracy: float
    #: extra measurements (module accuracies, ensemble accuracy, ...)
    extras: Dict[str, float] = field(default_factory=dict)
    #: scenario-matrix provenance: ``None`` for paper-table rows, the
    #: scenario name for rows produced by :mod:`repro.scenarios` — so table
    #: and figure filters can select scenario rows structurally instead of
    #: parsing method or dataset strings
    scenario: Optional[str] = None
    #: regime family of the scenario (``scarcity``, ``corruption``, ...)
    scenario_family: Optional[str] = None
    #: the scenario's regime axes (severity, imbalance ratio, phases, ...)
    axes: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        record = {
            "method": self.method, "dataset": self.dataset, "shots": self.shots,
            "split_seed": self.split_seed, "backbone": self.backbone,
            "seed": self.seed, "accuracy": self.accuracy,
        }
        if self.scenario is not None:
            record["scenario"] = self.scenario
            record["scenario_family"] = self.scenario_family
            record.update({f"axis_{k}": v for k, v in self.axes.items()})
        record.update({f"extra_{k}": v for k, v in self.extras.items()})
        return record


@dataclass
class MethodSpec:
    """A named method: a callable producing (accuracy, extras)."""

    name: str
    run: Callable[[Workspace, TaskSplit, str, int], ExperimentResult]


# --------------------------------------------------------------------------- #
# TAGLETS methods
# --------------------------------------------------------------------------- #
def taglets_method(name: str = "taglets",
                   modules: Sequence[str] = DEFAULT_MODULES,
                   prune_level: Optional[int] = None,
                   num_related_concepts: int = 5,
                   images_per_concept: int = 30,
                   dtype: Optional[str] = "float32") -> MethodSpec:
    """Build a TAGLETS method spec (optionally pruned or with modules removed).

    ``dtype`` defaults to the float32 fast mode: the parity gate
    (``tests/core/test_float32_parity.py``) shows accuracy is
    dtype-invariant across every dataset/backbone of the benchmark grid, so
    the runner takes the halved-bandwidth path by default.  Pass
    ``dtype=None`` to reproduce the seed float64 behaviour exactly.
    """

    def run(workspace: Workspace, split: TaskSplit, backbone_name: str,
            seed: int) -> ExperimentResult:
        backbone = workspace.backbone(backbone_name)
        task = Task.from_split(split, scads=workspace.scads, backbone=backbone,
                               wanted_num_related_class=num_related_concepts,
                               images_per_related_class=images_per_concept)
        config = ControllerConfig(modules=modules, prune_level=prune_level,
                                  dtype=dtype, seed=seed)
        controller = Controller(config=config)
        result = controller.run(task)
        test_x, test_y = split.test_features, split.test_labels
        extras: Dict[str, float] = {}
        for module_name, accuracy in result.module_accuracies(test_x, test_y).items():
            extras[f"module_{module_name}"] = accuracy
        extras["ensemble"] = result.ensemble_accuracy(test_x, test_y)
        accuracy = result.end_model_accuracy(test_x, test_y)
        extras["end_model"] = accuracy
        return ExperimentResult(method=name, dataset=split.dataset_name,
                                shots=split.shots, split_seed=split.split_seed,
                                backbone=backbone_name, seed=seed,
                                accuracy=accuracy, extras=extras)

    return MethodSpec(name=name, run=run)


# --------------------------------------------------------------------------- #
# Baseline methods
# --------------------------------------------------------------------------- #
def _build_baseline(name: str, workspace: Workspace, backbone_name: str):
    if name == "finetune":
        return FineTuningBaseline()
    if name == "finetune_distilled":
        return DistilledFineTuningBaseline()
    if name == "fixmatch":
        return FixMatchBaseline()
    if name == "meta_pseudo_labels":
        # The student always uses the ResNet-50 analog (paper Section 4.2).
        return MetaPseudoLabelsBaseline(
            student_backbone=workspace.backbone("resnet50"))
    if name == "simclrv2":
        return SimCLRBaseline()
    raise KeyError(f"unknown baseline {name!r}")


def baseline_method(name: str) -> MethodSpec:
    """Build a baseline method spec by name."""

    def run(workspace: Workspace, split: TaskSplit, backbone_name: str,
            seed: int) -> ExperimentResult:
        backbone = workspace.backbone(backbone_name)
        baseline = _build_baseline(name, workspace, backbone_name)
        data = BaselineInput(labeled_features=split.labeled_features,
                             labeled_labels=split.labeled_labels,
                             unlabeled_features=split.unlabeled_features,
                             num_classes=split.num_classes,
                             backbone=backbone, seed=seed)
        taglet = baseline.train(data)
        accuracy = taglet.accuracy(split.test_features, split.test_labels)
        return ExperimentResult(method=name, dataset=split.dataset_name,
                                shots=split.shots, split_seed=split.split_seed,
                                backbone=backbone_name, seed=seed,
                                accuracy=accuracy)

    return MethodSpec(name=name, run=run)


#: Methods appearing in the paper's main tables.
METHOD_REGISTRY: Dict[str, MethodSpec] = {
    "finetune": baseline_method("finetune"),
    "finetune_distilled": baseline_method("finetune_distilled"),
    "fixmatch": baseline_method("fixmatch"),
    "meta_pseudo_labels": baseline_method("meta_pseudo_labels"),
    "simclrv2": baseline_method("simclrv2"),
    "taglets": taglets_method("taglets"),
    "taglets_prune0": taglets_method("taglets_prune0", prune_level=0),
    "taglets_prune1": taglets_method("taglets_prune1", prune_level=1),
}

#: The row order of Tables 1-4.
TABLE_METHODS = ("finetune", "finetune_distilled", "fixmatch",
                 "meta_pseudo_labels", "taglets")
TABLE_PRUNED_METHODS = ("taglets_prune0", "taglets_prune1")


class ExperimentRunner:
    """Sweeps methods over the experimental grid and collects records."""

    def __init__(self, workspace: Workspace,
                 registry: Optional[Dict[str, MethodSpec]] = None):
        self.workspace = workspace
        self.registry = dict(registry or METHOD_REGISTRY)

    def register(self, spec: MethodSpec) -> None:
        self.registry[spec.name] = spec

    def evaluate(self, method: str, dataset: str, shots: int, split_seed: int,
                 backbone: str, seed: int) -> ExperimentResult:
        """Run one cell of the grid."""
        if method not in self.registry:
            raise KeyError(f"unknown method {method!r}; known: {sorted(self.registry)}")
        split = self.workspace.make_task_split(dataset, shots=shots,
                                               split_seed=split_seed)
        return self.registry[method].run(self.workspace, split, backbone, seed)

    def run_grid(self, methods: Sequence[str], datasets: Sequence[str],
                 shots_list: Sequence[int], backbones: Sequence[str],
                 split_seeds: Sequence[int] = (0,),
                 seeds: Sequence[int] = (0,),
                 progress: Optional[Callable[[ExperimentResult], None]] = None
                 ) -> List[ExperimentResult]:
        """Run the full cartesian grid and return all records."""
        records: List[ExperimentResult] = []
        for dataset in datasets:
            for shots in shots_list:
                for split_seed in split_seeds:
                    for backbone in backbones:
                        for method in methods:
                            for seed in seeds:
                                record = self.evaluate(method, dataset, shots,
                                                       split_seed, backbone, seed)
                                records.append(record)
                                if progress is not None:
                                    progress(record)
        return records


def aggregate_records(records: Iterable[ExperimentResult],
                      group_by: Sequence[str] = ("method", "dataset", "shots",
                                                 "backbone", "split_seed"),
                      value: str = "accuracy") -> Dict[tuple, Aggregate]:
    """Aggregate records into mean ± 95% CI keyed by the grouping fields.

    ``value`` may be ``accuracy`` or ``extra_<name>`` for any extra metric.
    Grouping fields absent from a record (e.g. ``scenario`` on paper-table
    rows) key as ``None`` rather than failing, so mixed record sets remain
    aggregable.
    """
    grouped: Dict[tuple, List[float]] = {}
    for record in records:
        data = record.as_dict()
        if value not in data:
            continue
        key = tuple(data.get(g) for g in group_by)
        grouped.setdefault(key, []).append(float(data[value]))
    return {key: mean_confidence_interval(values) for key, values in grouped.items()}
