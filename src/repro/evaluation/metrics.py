"""Metrics and statistics used to report results.

The paper reports top-1 accuracy with 95% confidence intervals over three
training seeds (Appendix A.2); :func:`mean_confidence_interval` reproduces
that statistic with a Student-t interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

__all__ = ["top1_accuracy", "confusion_matrix", "mean_confidence_interval",
           "Aggregate"]


def top1_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of predictions equal to the labels (as a percentage would be *100)."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if len(labels) == 0:
        return 0.0
    return float((predictions == labels).mean())


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """Row = true class, column = predicted class.

    Classes with no examples simply yield all-zero rows/columns; an empty
    split yields the all-zero matrix.  Out-of-range or negative class ids
    raise ``ValueError`` instead of silently wrapping into the wrong cell
    (negative indices used to land in the *last* row/column).
    """
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if num_classes <= 0:
        raise ValueError("num_classes must be positive")
    for name, arr in (("predictions", predictions), ("labels", labels)):
        if arr.size and (arr.min() < 0 or arr.max() >= num_classes):
            raise ValueError(
                f"{name} contain class ids outside [0, {num_classes})")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


@dataclass
class Aggregate:
    """Mean with a symmetric 95% confidence half-width."""

    mean: float
    half_width: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.2f}±{self.half_width:.2f}"

    def as_tuple(self) -> Tuple[float, float]:
        return self.mean, self.half_width

    def overlaps(self, other: "Aggregate") -> bool:
        """Whether the two 95% intervals overlap (the paper's tie criterion)."""
        return abs(self.mean - other.mean) <= (self.half_width + other.half_width)


def mean_confidence_interval(values: Sequence[float],
                             confidence: float = 0.95) -> Aggregate:
    """Student-t confidence interval of the mean of ``values``.

    With a single observation the half-width is 0 (no spread information),
    matching how single-seed smoke runs are reported.
    """
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot aggregate an empty list of values")
    mean = float(values.mean())
    if values.size == 1:
        return Aggregate(mean=mean, half_width=0.0, count=1)
    sem = float(values.std(ddof=1) / np.sqrt(values.size))
    t_critical = float(stats.t.ppf((1 + confidence) / 2.0, df=values.size - 1))
    return Aggregate(mean=mean, half_width=t_critical * sem, count=int(values.size))
