"""``repro.evaluation`` — metrics, the experiment runner, and table/figure formatting."""

from .figures import (ensemble_improvement_series, module_accuracy_series,
                      module_removal_deltas)
from .metrics import (Aggregate, confusion_matrix, mean_confidence_interval,
                      top1_accuracy)
from .runner import (METHOD_REGISTRY, TABLE_METHODS, TABLE_PRUNED_METHODS,
                     ExperimentResult, ExperimentRunner, MethodSpec,
                     aggregate_records, baseline_method, taglets_method)
from .tables import format_results_table, format_series, results_matrix

__all__ = [
    "top1_accuracy", "confusion_matrix", "mean_confidence_interval", "Aggregate",
    "ExperimentResult", "MethodSpec", "ExperimentRunner",
    "taglets_method", "baseline_method", "METHOD_REGISTRY",
    "TABLE_METHODS", "TABLE_PRUNED_METHODS", "aggregate_records",
    "results_matrix", "format_results_table", "format_series",
    "module_accuracy_series", "ensemble_improvement_series",
    "module_removal_deltas",
]
