"""``repro.nn`` — the NumPy neural-network substrate of the TAGLETS reproduction.

This package stands in for PyTorch in the original system: a reverse-mode
autograd engine (:mod:`repro.nn.tensor`), layers (:mod:`repro.nn.modules`),
losses (:mod:`repro.nn.functional`), optimizers and schedulers, a data
pipeline, augmentations, and shared training loops.
"""

from . import functional
from .data import (ArrayDataset, ConcatDataset, DataLoader, Dataset,
                   SoftLabeledDataset, Subset, UnlabeledDataset,
                   train_test_indices)
from .modules import (MLP, BatchNorm1d, Dropout, Identity, Linear, Module,
                      Parameter, ReLU, Sequential, Tanh)
from .optim import SGD, Adam, Optimizer
from .replay import (GraphReplay, ReplayStats, ReplayUnsupported,
                     collect_replay_stats, compile_step)
from .schedulers import (ConstantLR, CosineAnnealingLR, FixMatchCosineLR,
                         LRScheduler, MultiStepLR, StepLR, WarmupMultiStepLR)
from .serialization import (StateDictMismatchError, load_into_module,
                            load_state_dict, save_module, save_state_dict,
                            state_dict_digest, state_dict_manifest,
                            validate_state_dict)
from .tensor import (Tensor, concatenate, default_dtype, get_default_dtype,
                     graph_replay_enabled, is_grad_enabled, no_grad,
                     seed_compat_mode, set_default_dtype, stack,
                     use_fused_ops, use_graph_replay)
from .training import (TrainConfig, build_optimizer, build_scheduler,
                       evaluate_accuracy, iterate_forever, predict_logits,
                       predict_proba, softmax_rows, train_classifier,
                       train_soft_classifier)
from .transforms import (Compose, GaussianJitter, IdentityTransform,
                         RandomFeatureDrop, RandomPermuteBlocks, RandomScale,
                         Transform, strong_augment, weak_augment)

__all__ = [
    "Tensor", "stack", "concatenate", "functional",
    "no_grad", "is_grad_enabled", "default_dtype", "get_default_dtype",
    "set_default_dtype", "use_fused_ops", "seed_compat_mode",
    "use_graph_replay", "graph_replay_enabled",
    "GraphReplay", "ReplayStats", "ReplayUnsupported", "compile_step",
    "collect_replay_stats",
    "Module", "Parameter", "Linear", "ReLU", "Tanh", "Identity", "Dropout",
    "BatchNorm1d", "Sequential", "MLP",
    "Optimizer", "SGD", "Adam",
    "LRScheduler", "ConstantLR", "StepLR", "MultiStepLR", "CosineAnnealingLR",
    "FixMatchCosineLR", "WarmupMultiStepLR",
    "Dataset", "ArrayDataset", "UnlabeledDataset", "SoftLabeledDataset",
    "Subset", "ConcatDataset", "DataLoader", "train_test_indices",
    "Transform", "Compose", "IdentityTransform", "GaussianJitter",
    "RandomScale", "RandomFeatureDrop", "RandomPermuteBlocks",
    "weak_augment", "strong_augment",
    "TrainConfig", "build_optimizer", "build_scheduler", "predict_logits",
    "predict_proba", "softmax_rows", "evaluate_accuracy", "train_classifier",
    "train_soft_classifier", "iterate_forever",
    "save_state_dict", "load_state_dict", "save_module", "load_into_module",
    "state_dict_manifest", "state_dict_digest", "validate_state_dict",
    "StateDictMismatchError",
]
