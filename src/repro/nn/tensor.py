"""A small reverse-mode automatic differentiation engine on NumPy arrays.

This is the training substrate for the TAGLETS reproduction.  All modules,
baselines, backbones, and the end model are trained through this engine, so
it supports exactly the operations those models need: dense linear algebra,
elementwise nonlinearities, reductions, broadcasting, and indexing.

The design follows the classic tape-based approach: every :class:`Tensor`
produced by an operation keeps references to its parents and a closure that
propagates gradients to them.  Calling :meth:`Tensor.backward` performs a
topological sort of the graph and accumulates gradients.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager, nullcontext
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

# --------------------------------------------------------------------------- #
# Engine configuration: default dtype and gradient mode
# --------------------------------------------------------------------------- #
# The default dtype is process-global (set once before building models); the
# gradient mode is thread-local so the parallel controller can run inference
# in one module's thread without disturbing training in another.
_DEFAULT_DTYPE = np.float64

# Engine-wide feature switches.  ``fused_ops`` lets benchmarks and gradient
# tests fall back to the primitive-composed (seed-equivalent) implementations
# of ``linear`` / ``cross_entropy``; ``inference_no_grad`` controls whether
# eval-time forwards skip the backward tape; ``graph_replay`` enables the
# whole-graph capture/replay executor for static training loops
# (:mod:`repro.nn.replay`).  Production code leaves all three on;
# ``seed_compat_mode`` turns them off to measure the seed engine's behavior.
_ENGINE_FLAGS = {"fused_ops": True, "inference_no_grad": True,
                 "graph_replay": True}

_GRAD_MODE = threading.local()

# ---------------------------------------------------------------------------- #
# Op tracing (the capture phase of the graph replay executor)
# ---------------------------------------------------------------------------- #
# While a trace is active on the current thread, instrumented operations
# append tagged records to the recording list: every ``Module.__call__``
# appends ``("module", module, input, output)`` (see repro.nn.modules), the
# traced tensor combinators append ``("add"/"mul", a, b, out)``, and the
# fused losses append ``("loss", kind, logits, targets, extra, out)``.  The
# replay compiler (:mod:`repro.nn.replay`) runs one eager training step under
# this context and reconstructs the op DAG from the records.  Thread-local so
# the parallel controller can trace one module's training loop while another
# thread trains eagerly.
_TRACE = threading.local()


def _trace_records():
    """The active trace recording list on this thread, or None."""
    return getattr(_TRACE, "records", None)


@contextmanager
def trace_ops(records: List[tuple]):
    """Record every traced op on this thread into ``records``."""
    if getattr(_TRACE, "records", None) is not None:
        raise RuntimeError("op tracing is not reentrant")
    _TRACE.records = records
    try:
        yield records
    finally:
        _TRACE.records = None


# Monotonically increasing creation stamp.  Every tensor records the counter
# value at construction; since an operation's output is always created after
# its inputs, creation order is a valid topological order of any autograd
# graph, which lets ``backward`` sort reachable nodes with a single C-level
# sort instead of a two-phase DFS.  ``itertools.count`` is atomic in CPython,
# so the stamp is safe under the parallel controller's threads.
_SEQ = itertools.count()


def get_default_dtype() -> np.dtype:
    """The dtype new tensors are created with (``float64`` unless configured)."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> None:
    """Set the engine-wide default dtype (``np.float32`` or ``np.float64``)."""
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"default dtype must be float32 or float64, got {dtype}")
    _DEFAULT_DTYPE = dtype.type


@contextmanager
def default_dtype(dtype):
    """Temporarily switch the engine's default dtype (the float32 fast mode)."""
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    set_default_dtype(dtype)
    try:
        yield
    finally:
        _DEFAULT_DTYPE = previous


def is_grad_enabled() -> bool:
    return getattr(_GRAD_MODE, "enabled", True)


@contextmanager
def no_grad():
    """Inference mode: operations inside record no backward tape at all.

    Outputs have ``requires_grad=False`` and keep no parent references, so
    eval-time forwards (``predict_logits``, FixMatch's pseudo-label view)
    allocate no closures and retain no intermediate arrays.
    """
    previous = is_grad_enabled()
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


def fused_ops_enabled() -> bool:
    return _ENGINE_FLAGS["fused_ops"]


def inference_no_grad_enabled() -> bool:
    return _ENGINE_FLAGS["inference_no_grad"]


@contextmanager
def use_fused_ops(enabled: bool):
    """Toggle the fused ``linear`` / cross-entropy kernels (benchmarks/tests)."""
    previous = _ENGINE_FLAGS["fused_ops"]
    _ENGINE_FLAGS["fused_ops"] = bool(enabled)
    try:
        yield
    finally:
        _ENGINE_FLAGS["fused_ops"] = previous


def graph_replay_enabled() -> bool:
    return _ENGINE_FLAGS["graph_replay"]


@contextmanager
def use_graph_replay(enabled: bool):
    """Toggle the whole-graph capture/replay executor for static loops.

    Training loops consult this flag when :class:`~repro.nn.TrainConfig`
    leaves ``replay`` unset, so one context manager switches the executor
    for a whole pipeline run (the :class:`~repro.core.Controller` threads
    its ``replay`` config field through here).
    """
    previous = _ENGINE_FLAGS["graph_replay"]
    _ENGINE_FLAGS["graph_replay"] = bool(enabled)
    try:
        yield
    finally:
        _ENGINE_FLAGS["graph_replay"] = previous


def inference_mode():
    """Context for eval-time forwards: ``no_grad()`` unless the engine is in
    seed-compat mode (where inference keeps building the tape)."""
    if inference_no_grad_enabled():
        return no_grad()
    return nullcontext()


@contextmanager
def seed_compat_mode():
    """Reproduce the seed engine's behavior for benchmarking baselines.

    Disables the fused ops (losses and ``linear`` run as chains of primitive
    tape nodes), re-enables tape construction during inference (which is
    what the seed engine did on every eval forward), and switches off the
    graph replay executor so every step rebuilds the tape eagerly.
    """
    previous = dict(_ENGINE_FLAGS)
    _ENGINE_FLAGS["fused_ops"] = False
    _ENGINE_FLAGS["inference_no_grad"] = False
    _ENGINE_FLAGS["graph_replay"] = False
    try:
        yield
    finally:
        _ENGINE_FLAGS.update(previous)


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    dtype = dtype if dtype is not None else _DEFAULT_DTYPE
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the broadcast dimensions so it matches ``shape``.

    NumPy broadcasting implicitly expands dimensions during the forward pass;
    the corresponding backward pass must sum the gradient over those expanded
    dimensions.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dims added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dims that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        The underlying array (copied only when dtype conversion is needed).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name", "_seq", "_topo")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name
        self._seq = next(_SEQ)
        self._topo: Optional[List["Tensor"]] = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = (any(p.requires_grad for p in parents)
                    and is_grad_enabled())
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Accumulate a gradient array the caller owns (no defensive copy).

        Fused backward closures compute fresh arrays (``grad @ W.T`` etc.)
        that nothing else aliases, so the copy in :meth:`_accumulate` would
        be pure overhead.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        out = Tensor._make(data, (self, other), backward)
        # Inlined trace check (hot path: every eager add pays it).
        records = getattr(_TRACE, "records", None)
        if records is not None:
            records.append(("add", self, other, out))
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        out = Tensor._make(data, (self, other), backward)
        records = getattr(_TRACE, "records", None)
        if records is not None:
            records.append(("mul", self, other, out))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad @ np.swapaxes(other.data, -1, -2),
                                              self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(np.swapaxes(self.data, -1, -2) @ grad,
                                               other.shape))

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if axis is None:
                mask = (self.data == data).astype(self.data.dtype)
                mask /= mask.sum()
                self._accumulate(grad * mask)
            else:
                expanded = data if keepdims else np.expand_dims(data, axis=axis)
                mask = (self.data == expanded).astype(self.data.dtype)
                mask /= mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis=axis)
                self._accumulate(g * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Graph traversal
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).  The
        reverse-topological order of the graph is derived from the tensors'
        creation stamps (parents are always created before children) and
        cached on this root, keyed on the graph's identity: a second
        ``backward`` through the same graph skips the traversal entirely.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not "
                               "require gradients")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, self.data.dtype)

        self._accumulate(grad)
        if self._backward is None:
            return
        nodes = self._topo
        if nodes is None:
            # Collect reachable op-nodes (leaves carry no backward closure and
            # never need visiting) and order them by descending creation stamp.
            nodes = [self]
            seen = {id(self)}
            pending = [self]
            while pending:
                for parent in pending.pop()._parents:
                    if parent._backward is not None and id(parent) not in seen:
                        seen.add(id(parent))
                        nodes.append(parent)
                        pending.append(parent)
            nodes.sort(key=_creation_stamp, reverse=True)
            self._topo = nodes
        for node in nodes:
            if node.grad is not None:
                node._backward(node.grad)

    # convenience constructors -------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None,
              scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)


def _creation_stamp(node: Tensor) -> int:
    return node._seq



def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiable w.r.t. each input."""
    data = np.stack([t.data for t in tensors], axis=axis)
    tensors = tuple(tensors)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for t, g in zip(tensors, slices):
            t._accumulate(np.squeeze(g, axis=axis))

    return Tensor._make(data, tensors, backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    tensors = tuple(tensors)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, end)
            t._accumulate(grad[tuple(index)])

    return Tensor._make(data, tensors, backward)


def no_grad_copy(x: Tensor) -> Tensor:
    """Alias of :meth:`Tensor.detach` kept for readability at call sites."""
    return x.detach()
