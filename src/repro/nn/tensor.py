"""A small reverse-mode automatic differentiation engine on NumPy arrays.

This is the training substrate for the TAGLETS reproduction.  All modules,
baselines, backbones, and the end model are trained through this engine, so
it supports exactly the operations those models need: dense linear algebra,
elementwise nonlinearities, reductions, broadcasting, and indexing.

The design follows the classic tape-based approach: every :class:`Tensor`
produced by an operation keeps references to its parents and a closure that
propagates gradients to them.  Calling :meth:`Tensor.backward` performs a
topological sort of the graph and accumulates gradients.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(data: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the broadcast dimensions so it matches ``shape``.

    NumPy broadcasting implicitly expands dimensions during the forward pass;
    the corresponding backward pass must sum the gradient over those expanded
    dimensions.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dims added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dims that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        The underlying array (copied only when dtype conversion is needed).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad @ np.swapaxes(other.data, -1, -2),
                                              self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(np.swapaxes(self.data, -1, -2) @ grad,
                                               other.shape))

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if axis is None:
                mask = (self.data == data).astype(self.data.dtype)
                mask /= mask.sum()
                self._accumulate(grad * mask)
            else:
                expanded = data if keepdims else np.expand_dims(data, axis=axis)
                mask = (self.data == expanded).astype(self.data.dtype)
                mask /= mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis=axis)
                self._accumulate(g * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Graph traversal
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not "
                               "require gradients")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        order = _topological_order(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # convenience constructors -------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None,
              scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)


def _topological_order(root: Tensor) -> List[Tensor]:
    """Return tensors reachable from ``root`` in topological order (iterative)."""
    order: List[Tensor] = []
    visited = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    return order


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiable w.r.t. each input."""
    data = np.stack([t.data for t in tensors], axis=axis)
    tensors = tuple(tensors)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for t, g in zip(tensors, slices):
            t._accumulate(np.squeeze(g, axis=axis))

    return Tensor._make(data, tensors, backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    tensors = tuple(tensors)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, end)
            t._accumulate(grad[tuple(index)])

    return Tensor._make(data, tensors, backward)


def no_grad_copy(x: Tensor) -> Tensor:
    """Alias of :meth:`Tensor.detach` kept for readability at call sites."""
    return x.detach()
