"""Differentiable functional operations built on :class:`repro.nn.Tensor`.

These are the loss functions and activations used throughout the TAGLETS
reproduction: the hard cross entropy of the transfer / multi-task modules
(paper Eq. 1-5), the confidence-thresholded consistency loss of FixMatch,
and the soft cross entropy used by the distillation stage (paper Eq. 7).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .tensor import Tensor

__all__ = [
    "one_hot",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "soft_cross_entropy",
    "mse_loss",
    "l2_loss",
    "nll_loss",
    "accuracy",
]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a ``(len(labels), num_classes)`` one-hot float matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if num_classes <= 0:
        raise ValueError("num_classes must be positive")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes "
                         f"{num_classes}: [{labels.min()}, {labels.max()}]")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def nll_loss(log_probs: Tensor, targets: np.ndarray,
             sample_weights: Optional[np.ndarray] = None) -> Tensor:
    """Negative log-likelihood of integer targets given log-probabilities."""
    targets = np.asarray(targets, dtype=np.int64)
    n, c = log_probs.shape
    target_matrix = one_hot(targets, c)
    if sample_weights is not None:
        sample_weights = np.asarray(sample_weights, dtype=np.float64)
        target_matrix = target_matrix * sample_weights[:, None]
        denom = float(sample_weights.sum()) or 1.0
    else:
        denom = float(n)
    picked = (log_probs * Tensor(target_matrix)).sum()
    return -picked * (1.0 / denom)


def cross_entropy(logits: Tensor, targets: Union[np.ndarray, list],
                  sample_weights: Optional[np.ndarray] = None) -> Tensor:
    """Cross entropy between ``logits`` and integer class ``targets``.

    Matches the per-example average used in the paper's Eq. 1, 2, 4, 5.
    """
    return nll_loss(log_softmax(logits), targets, sample_weights=sample_weights)


def soft_cross_entropy(logits: Tensor, target_probs: np.ndarray,
                       sample_weights: Optional[np.ndarray] = None) -> Tensor:
    """Soft-target cross entropy (paper Eq. 7, the distillation loss).

    ``target_probs`` is an ``(n, C)`` matrix of probability vectors, e.g. the
    soft pseudo labels produced by the taglet ensemble.
    """
    target_probs = np.asarray(target_probs, dtype=np.float64)
    if target_probs.shape != logits.shape:
        raise ValueError("target_probs shape must match logits shape: "
                         f"{target_probs.shape} vs {logits.shape}")
    log_probs = log_softmax(logits)
    if sample_weights is not None:
        sample_weights = np.asarray(sample_weights, dtype=np.float64)
        target_probs = target_probs * sample_weights[:, None]
        denom = float(sample_weights.sum()) or 1.0
    else:
        denom = float(logits.shape[0])
    return -(log_probs * Tensor(target_probs)).sum() * (1.0 / denom)


def mse_loss(predictions: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error over all elements."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    diff = predictions - targets
    return (diff * diff).mean()


def l2_loss(predictions: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared L2 distance between rows (paper Eq. 9, ZSL-KG pretraining)."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    diff = predictions - targets
    return (diff * diff).sum(axis=-1).mean()


def accuracy(logits_or_probs: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy of a score matrix against integer targets."""
    scores = np.asarray(logits_or_probs)
    targets = np.asarray(targets)
    if scores.ndim != 2:
        raise ValueError("expected a 2-D score matrix")
    if len(targets) == 0:
        return 0.0
    predictions = scores.argmax(axis=1)
    return float((predictions == targets).mean())
