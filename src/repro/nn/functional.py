"""Differentiable functional operations built on :class:`repro.nn.Tensor`.

These are the loss functions and activations used throughout the TAGLETS
reproduction: the hard cross entropy of the transfer / multi-task modules
(paper Eq. 1-5), the confidence-thresholded consistency loss of FixMatch,
and the soft cross entropy used by the distillation stage (paper Eq. 7).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .tensor import Tensor, _trace_records, fused_ops_enabled, get_default_dtype

__all__ = [
    "one_hot",
    "check_label_range",
    "softmax",
    "log_softmax",
    "linear",
    "cross_entropy",
    "softmax_cross_entropy",
    "soft_cross_entropy",
    "mse_loss",
    "l2_loss",
    "nll_loss",
    "accuracy",
]


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a ``(len(labels), num_classes)`` one-hot float matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if num_classes <= 0:
        raise ValueError("num_classes must be positive")
    check_label_range(labels, num_classes)
    out = np.zeros((labels.shape[0], num_classes), dtype=get_default_dtype())
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Fused affine transform ``y = x W + b`` with a hand-written backward.

    Replaces the two-node ``(x @ W) + b`` graph with a single node whose
    backward computes all three gradients directly (``g W^T``, ``x^T g``,
    ``g.sum(0)``) — one closure, no ``_unbroadcast`` calls, and no defensive
    copies of freshly allocated gradient arrays.
    """
    if not fused_ops_enabled() or x.ndim != 2:
        out = x @ weight
        if bias is not None:
            out = out + bias
        return out

    data = x.data @ weight.data
    if bias is not None:
        data += bias.data

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(grad @ weight.data.T)
        if weight.requires_grad:
            weight._accumulate_owned(x.data.T @ grad)
        if bias is not None and bias.requires_grad:
            bias._accumulate_owned(grad.sum(axis=0))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(data, parents, backward)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def nll_loss(log_probs: Tensor, targets: np.ndarray,
             sample_weights: Optional[np.ndarray] = None) -> Tensor:
    """Negative log-likelihood of integer targets given log-probabilities."""
    targets = np.asarray(targets, dtype=np.int64)
    n, c = log_probs.shape
    target_matrix = one_hot(targets, c)
    if sample_weights is not None:
        sample_weights = np.asarray(sample_weights, dtype=np.float64)
        target_matrix = target_matrix * sample_weights[:, None]
        denom = float(sample_weights.sum()) or 1.0
    else:
        denom = float(n)
    picked = (log_probs * Tensor(target_matrix)).sum()
    return -picked * (1.0 / denom)


def _softmax_parts(z: np.ndarray):
    """Stable softmax pieces shared by the fused losses."""
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    sumexp = exp.sum(axis=1, keepdims=True)
    return shifted, exp, sumexp


def check_label_range(targets: np.ndarray, num_classes: int) -> None:
    """Reject integer labels outside ``[0, num_classes)``.

    NumPy's fancy indexing would silently wrap negative labels, so both the
    fused cross-entropy kernel and the replay executor validate explicitly
    (matching the reference path's error behavior).
    """
    if targets.size and (targets.min() < 0 or targets.max() >= num_classes):
        raise ValueError("labels out of range for num_classes "
                         f"{num_classes}: [{targets.min()}, {targets.max()}]")


def softmax_cross_entropy(logits: Tensor, targets: Union[np.ndarray, list],
                          sample_weights: Optional[np.ndarray] = None) -> Tensor:
    """Fused softmax + cross entropy with a single hand-written backward.

    Numerically identical to ``nll_loss(log_softmax(logits), targets)`` but
    builds one graph node instead of ~10, and its backward is the closed form
    ``(softmax(z) - onehot(y)) / n`` instead of a chain of primitive closures
    each allocating intermediates.
    """
    orig_targets, orig_weights = targets, sample_weights
    targets = np.asarray(targets, dtype=np.int64)
    z = logits.data
    n = z.shape[0]
    check_label_range(targets, z.shape[1])
    rows = np.arange(n)
    shifted, exp, sumexp = _softmax_parts(z)
    log_probs_picked = shifted[rows, targets] - np.log(sumexp[:, 0])
    if sample_weights is not None:
        weights = np.asarray(sample_weights, dtype=z.dtype)
        denom = float(weights.sum()) or 1.0
        loss = -float(weights @ log_probs_picked) / denom
    else:
        weights = None
        denom = float(n)
        loss = -float(log_probs_picked.sum()) / denom

    def backward(grad: np.ndarray) -> None:
        d = exp / sumexp
        d[rows, targets] -= 1.0
        if weights is not None:
            d *= weights[:, None]
        d *= float(grad) / denom
        logits._accumulate_owned(d)

    out = Tensor._make(np.asarray(loss, dtype=z.dtype), (logits,), backward)
    records = _trace_records()
    if records is not None:
        records.append(("loss", "cross_entropy", logits,
                        orig_targets, orig_weights, out))
    return out


def cross_entropy(logits: Tensor, targets: Union[np.ndarray, list],
                  sample_weights: Optional[np.ndarray] = None) -> Tensor:
    """Cross entropy between ``logits`` and integer class ``targets``.

    Matches the per-example average used in the paper's Eq. 1, 2, 4, 5.
    Dispatches to the fused kernel unless fused ops are disabled (the
    primitive-composed path is kept as the reference for gradient tests and
    seed-equivalent benchmarking).
    """
    if fused_ops_enabled():
        return softmax_cross_entropy(logits, targets,
                                     sample_weights=sample_weights)
    return nll_loss(log_softmax(logits), targets, sample_weights=sample_weights)


def soft_cross_entropy(logits: Tensor, target_probs: np.ndarray,
                       sample_weights: Optional[np.ndarray] = None) -> Tensor:
    """Soft-target cross entropy (paper Eq. 7, the distillation loss).

    ``target_probs`` is an ``(n, C)`` matrix of probability vectors, e.g. the
    soft pseudo labels produced by the taglet ensemble.  Uses a fused forward
    and the closed-form backward ``(softmax(z) * rowsum(t) - t) / n`` unless
    fused ops are disabled.
    """
    target_probs = np.asarray(target_probs)
    if target_probs.shape != logits.shape:
        raise ValueError("target_probs shape must match logits shape: "
                         f"{target_probs.shape} vs {logits.shape}")
    if not fused_ops_enabled():
        target_probs = np.asarray(target_probs, dtype=np.float64)
        log_probs = log_softmax(logits)
        if sample_weights is not None:
            sample_weights = np.asarray(sample_weights, dtype=np.float64)
            target_probs = target_probs * sample_weights[:, None]
            denom = float(sample_weights.sum()) or 1.0
        else:
            denom = float(logits.shape[0])
        return -(log_probs * Tensor(target_probs)).sum() * (1.0 / denom)

    z = logits.data
    orig_targets, orig_weights = target_probs, sample_weights
    targets = np.asarray(target_probs, dtype=z.dtype)
    shifted, exp, sumexp = _softmax_parts(z)
    log_probs = shifted - np.log(sumexp)
    if sample_weights is not None:
        weights = np.asarray(sample_weights, dtype=z.dtype)
        targets = targets * weights[:, None]
        denom = float(weights.sum()) or 1.0
    else:
        denom = float(z.shape[0])
    loss = -float((log_probs * targets).sum()) / denom

    def backward(grad: np.ndarray) -> None:
        # d/dz of -sum(t * logsoftmax(z)) is softmax(z) * rowsum(t) - t.
        d = exp / sumexp
        d *= targets.sum(axis=1, keepdims=True)
        d -= targets
        d *= float(grad) / denom
        logits._accumulate_owned(d)

    out = Tensor._make(np.asarray(loss, dtype=z.dtype), (logits,), backward)
    records = _trace_records()
    if records is not None:
        records.append(("loss", "soft_cross_entropy", logits,
                        orig_targets, orig_weights, out))
    return out


def _fused_squared_error(predictions: Tensor, target_data: np.ndarray,
                         denom: float) -> Tensor:
    """Shared fused forward/backward for the squared-error losses.

    ``loss = sum((p - t)^2) / denom`` with the closed-form backward
    ``2 (p - t) / denom`` — one graph node instead of the subtract /
    multiply / sum / scale chain.
    """
    diff = predictions.data - target_data
    loss = float((diff * diff).sum()) / denom

    def backward(grad: np.ndarray) -> None:
        d = diff * (2.0 * float(grad) / denom)
        predictions._accumulate_owned(d)

    out = Tensor._make(np.asarray(loss, dtype=predictions.data.dtype),
                       (predictions,), backward)
    records = _trace_records()
    if records is not None:
        records.append(("loss", "sqerr", predictions, target_data, denom, out))
    return out


def mse_loss(predictions: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error over all elements."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    if (fused_ops_enabled() and not targets.requires_grad
            and targets.shape == predictions.shape):
        return _fused_squared_error(predictions, targets.data,
                                    float(predictions.size))
    diff = predictions - targets
    return (diff * diff).mean()


def l2_loss(predictions: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared L2 distance between rows (paper Eq. 9, ZSL-KG pretraining)."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    if (fused_ops_enabled() and not targets.requires_grad
            and targets.shape == predictions.shape):
        # mean over all leading dims of the per-row sums == total / (size / C)
        rows = max(predictions.size // predictions.shape[-1], 1)
        return _fused_squared_error(predictions, targets.data, float(rows))
    diff = predictions - targets
    return (diff * diff).sum(axis=-1).mean()


def accuracy(logits_or_probs: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy of a score matrix against integer targets."""
    scores = np.asarray(logits_or_probs)
    targets = np.asarray(targets)
    if scores.ndim != 2:
        raise ValueError("expected a 2-D score matrix")
    if len(targets) == 0:
        return 0.0
    predictions = scores.argmax(axis=1)
    return float((predictions == targets).mean())
