"""Learning-rate schedules from the paper's training details (Appendix A.3).

The Transfer and Multi-task modules decay the rate at fixed epochs
(:class:`MultiStepLR`), BiT recipes warm up linearly before decaying
(:class:`WarmupMultiStepLR`), FixMatch uses the ``cos(7*pi*k / 16*K)``
schedule (:class:`FixMatchCosineLR`), and Meta Pseudo Labels uses a plain
cosine decay (:class:`CosineAnnealingLR`).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from .optim import Optimizer

__all__ = [
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
    "FixMatchCosineLR",
    "WarmupMultiStepLR",
]


class LRScheduler:
    """Base class: compute a learning rate for each integer step."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.initial_lr
        self.last_step = -1

    def get_lr(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and apply the new learning rate."""
        self.last_step += 1
        lr = self.get_lr(self.last_step)
        self.optimizer.set_lr(lr)
        return lr


class ConstantLR(LRScheduler):
    def get_lr(self, step: int) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Decay the LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class MultiStepLR(LRScheduler):
    """Decay the LR by ``gamma`` at each milestone step."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int],
                 gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        passed = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * self.gamma ** passed


class CosineAnnealingLR(LRScheduler):
    """Cosine decay ``lr/2 * (1 + cos(pi * k / K))`` used by Meta Pseudo Labels."""

    def __init__(self, optimizer: Optimizer, total_steps: int):
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.total_steps = total_steps

    def get_lr(self, step: int) -> float:
        k = min(step, self.total_steps)
        return self.base_lr / 2.0 * (1.0 + math.cos(math.pi * k / self.total_steps))


class FixMatchCosineLR(LRScheduler):
    """FixMatch schedule ``lr * cos(7 * pi * k / (16 * K))``."""

    def __init__(self, optimizer: Optimizer, total_steps: int):
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.total_steps = total_steps

    def get_lr(self, step: int) -> float:
        k = min(step, self.total_steps)
        return self.base_lr * math.cos(7.0 * math.pi * k / (16.0 * self.total_steps))


class WarmupMultiStepLR(LRScheduler):
    """Linear warmup followed by multi-step decay (the BiT recipe)."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int,
                 milestones: Sequence[int], gamma: float = 0.1):
        super().__init__(optimizer)
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")
        self.warmup_steps = warmup_steps
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self, step: int) -> float:
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        passed = sum(1 for m in self.milestones if step >= m)
        return self.base_lr * self.gamma ** passed
