"""Dataset and data-loading utilities.

The TAGLETS pipeline juggles several sources of examples at once: the
limited labeled target set, the unlabeled target pool, auxiliary examples
retrieved from SCADS, and pseudo-labeled data for the distillation stage.
These primitives keep that bookkeeping explicit: labeled datasets yield
``(x, y)``, unlabeled datasets yield ``x``, and soft-labeled datasets yield
``(x, p)`` with probability-vector targets.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .tensor import get_default_dtype

__all__ = [
    "Dataset",
    "ArrayDataset",
    "UnlabeledDataset",
    "SoftLabeledDataset",
    "Subset",
    "ConcatDataset",
    "DataLoader",
    "train_test_indices",
]


class Dataset:
    """Minimal map-style dataset interface."""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index: int):  # pragma: no cover - abstract
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Labeled dataset backed by an ``(n, d)`` feature array and integer labels."""

    def __init__(self, features: np.ndarray, labels: np.ndarray):
        features = np.asarray(features, dtype=get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        if len(features) != len(labels):
            raise ValueError(
                f"features and labels disagree on length: {len(features)} vs {len(labels)}")
        self.features = features
        self.labels = labels

    def __len__(self) -> int:
        return len(self.features)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.features[index], int(self.labels[index])

    def _batch_arrays(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.features[indices], self.labels[indices]

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the full ``(features, labels)`` pair (no copy)."""
        return self.features, self.labels

    def class_counts(self) -> np.ndarray:
        if len(self.labels) == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.labels)


class UnlabeledDataset(Dataset):
    """Unlabeled dataset over an ``(n, d)`` feature array."""

    def __init__(self, features: np.ndarray):
        self.features = np.asarray(features, dtype=get_default_dtype())

    def __len__(self) -> int:
        return len(self.features)

    def __getitem__(self, index: int) -> np.ndarray:
        return self.features[index]

    def _batch_arrays(self, indices: np.ndarray) -> np.ndarray:
        return self.features[indices]

    def arrays(self) -> np.ndarray:
        return self.features


class SoftLabeledDataset(Dataset):
    """Dataset of examples paired with probability-vector targets.

    Produced by the taglet ensemble (paper Eq. 6) and consumed by the end
    model's soft cross-entropy loss (Eq. 7).
    """

    def __init__(self, features: np.ndarray, soft_labels: np.ndarray):
        features = np.asarray(features, dtype=get_default_dtype())
        soft_labels = np.asarray(soft_labels, dtype=get_default_dtype())
        if len(features) != len(soft_labels):
            raise ValueError("features and soft_labels disagree on length")
        if soft_labels.ndim != 2:
            raise ValueError("soft_labels must be a 2-D probability matrix")
        self.features = features
        self.soft_labels = soft_labels

    def __len__(self) -> int:
        return len(self.features)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.features[index], self.soft_labels[index]

    def _batch_arrays(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.features[indices], self.soft_labels[indices]

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.features, self.soft_labels


class Subset(Dataset):
    """View of a dataset restricted to a list of indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = list(int(i) for i in indices)
        n = len(dataset)
        for i in self.indices:
            if i < 0 or i >= n:
                raise IndexError(f"index {i} out of range for dataset of size {n}")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.dataset[self.indices[index]]


class ConcatDataset(Dataset):
    """Concatenation of several datasets with the same item structure."""

    def __init__(self, datasets: Sequence[Dataset]):
        if not datasets:
            raise ValueError("ConcatDataset needs at least one dataset")
        self.datasets = list(datasets)
        self._sizes = [len(d) for d in self.datasets]
        self._offsets = np.cumsum([0] + self._sizes)

    def __len__(self) -> int:
        return int(self._offsets[-1])

    def __getitem__(self, index: int):
        if index < 0:
            index += len(self)
        if index < 0 or index >= len(self):
            raise IndexError(index)
        which = int(np.searchsorted(self._offsets, index, side="right") - 1)
        return self.datasets[which][index - self._offsets[which]]


class DataLoader:
    """Mini-batch iterator with optional shuffling and epoch-stable RNG.

    Batches of labeled data are ``(X, y)`` array pairs; unlabeled data yields
    a single array; soft-labeled data yields ``(X, P)``.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32,
                 shuffle: bool = False, drop_last: bool = False,
                 rng: Optional[np.random.Generator] = None):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _batch_indices(self) -> Iterator[np.ndarray]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, n, self.batch_size):
            batch = order[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                return
            yield batch

    def __iter__(self):
        # Array-backed datasets yield whole batches by fancy indexing — the
        # per-item Python loop below is kept for map-style datasets (Subset,
        # ConcatDataset, user-defined).  Exact type check: a subclass that
        # overrides __getitem__ must go through the generic path.
        fast_batch = (self.dataset._batch_arrays
                      if type(self.dataset) in (ArrayDataset, UnlabeledDataset,
                                                SoftLabeledDataset)
                      else None)
        if fast_batch is not None:
            for batch in self._batch_indices():
                yield fast_batch(batch)
            return
        for batch in self._batch_indices():
            items = [self.dataset[int(i)] for i in batch]
            first = items[0]
            if isinstance(first, tuple):
                columns = list(zip(*items))
                yield tuple(np.asarray(col) for col in columns)
            else:
                yield np.asarray(items)


def train_test_indices(labels: np.ndarray, test_per_class: int,
                       rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    """Split indices into train/test taking ``test_per_class`` per class.

    Mirrors the protocol of Appendix A.2: the test set is a fixed number of
    images per class sampled uniformly, and the remainder is the train pool.
    """
    labels = np.asarray(labels)
    train: List[int] = []
    test: List[int] = []
    for cls in np.unique(labels):
        cls_indices = np.flatnonzero(labels == cls)
        if len(cls_indices) <= test_per_class:
            raise ValueError(
                f"class {cls} has only {len(cls_indices)} examples, cannot hold out "
                f"{test_per_class} for the test set")
        permuted = rng.permutation(cls_indices)
        test.extend(permuted[:test_per_class].tolist())
        train.extend(permuted[test_per_class:].tolist())
    return np.asarray(sorted(train)), np.asarray(sorted(test))
