"""Optimizers used to train modules, baselines, backbones, and the end model.

The paper's training recipes (Appendix A.3) use SGD with momentum (plain and
Nesterov) and Adam; both are implemented here against the
:class:`repro.nn.Parameter` abstraction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self.initial_lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        if lr < 0:
            raise ValueError("learning rate must be non-negative")
        self.lr = float(lr)

    def state_dict(self) -> Dict[str, float]:
        return {"lr": self.lr, "initial_lr": self.initial_lr}


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, Nesterov and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, nesterov: bool = False,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        if momentum < 0:
            raise ValueError("momentum must be non-negative")
        if nesterov and momentum == 0:
            raise ValueError("Nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        # Preallocated per-parameter work buffers so the steady-state step
        # performs no fresh allocations: ``_step`` composes the scaled update,
        # ``_decayed`` holds the weight-decayed gradient when needed.
        self._step_buf: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._decayed: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        momentum = self.momentum
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            step_buf = self._step_buf[i]
            if step_buf is None:
                step_buf = self._step_buf[i] = np.empty_like(p.data)
            if self.weight_decay:
                decayed = self._decayed[i]
                if decayed is None:
                    decayed = self._decayed[i] = np.empty_like(p.data)
                np.multiply(p.data, self.weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            if momentum:
                velocity = self._velocity[i]
                if velocity is None:
                    velocity = self._velocity[i] = np.zeros_like(p.data)
                velocity *= momentum
                velocity += grad
                if self.nesterov:
                    np.multiply(velocity, momentum, out=step_buf)
                    step_buf += grad
                    update = step_buf
                else:
                    update = velocity
            else:
                update = grad
            np.multiply(update, self.lr, out=step_buf)
            np.subtract(p.data, step_buf, out=p.data)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), used for the end model and ZSL-KG."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._scratch: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._decayed: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            scratch = self._scratch[i]
            if scratch is None:
                scratch = self._scratch[i] = np.empty_like(p.data)
            if self.weight_decay:
                decayed = self._decayed[i]
                if decayed is None:
                    decayed = self._decayed[i] = np.empty_like(p.data)
                np.multiply(p.data, self.weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            m, v = self._m[i], self._v[i]
            # All updates route through the single scratch buffer, so the
            # steady-state step allocates nothing.
            np.multiply(grad, 1.0 - self.beta1, out=scratch)
            m *= self.beta1
            m += scratch
            np.multiply(grad, grad, out=scratch)
            scratch *= 1.0 - self.beta2
            v *= self.beta2
            v += scratch
            # update = lr * (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(v, bias2, out=scratch)
            np.sqrt(scratch, out=scratch)
            scratch += self.eps
            np.divide(m, scratch, out=scratch)
            scratch *= self.lr / bias1
            np.subtract(p.data, scratch, out=p.data)
