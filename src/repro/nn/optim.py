"""Optimizers used to train modules, baselines, backbones, and the end model.

The paper's training recipes (Appendix A.3) use SGD with momentum (plain and
Nesterov) and Adam; both are implemented here against the
:class:`repro.nn.Parameter` abstraction.

Both optimizers run their elementwise update in *fused flat* form whenever
possible: all per-parameter state (momentum/moment buffers, scratch space)
lives in per-parameter views of one contiguous array, gradients are gathered
into a shared flat gradient buffer, and the update math executes as a handful
of ufunc calls over the whole flat array instead of ``O(kernels × params)``
dispatches.  Elementwise ops over disjoint views are bit-identical to the
per-parameter loop, which is kept as the fallback for steps where some
parameters have no gradient (their state must not advance) or parameters mix
dtypes.  The graph replay executor (:mod:`repro.nn.replay`) writes gradients
directly into the flat views (:meth:`Optimizer.grad_view_for`), making the
gather step a no-op on the replay fast path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self.initial_lr = float(lr)
        #: flat gradient buffer + per-parameter views (built lazily; None
        #: entries until :meth:`_flat_state` runs, ``False`` when parameters
        #: mix dtypes and flat mode is unavailable)
        self._flat_grad: Optional[np.ndarray] = None
        self._flat_grad_views: Optional[List[np.ndarray]] = None
        self._flat_ok: Optional[bool] = None

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        if lr < 0:
            raise ValueError("learning rate must be non-negative")
        self.lr = float(lr)

    def state_dict(self) -> Dict[str, float]:
        return {"lr": self.lr, "initial_lr": self.initial_lr}

    # ------------------------------------------------------------------ #
    # Fused flat execution support
    # ------------------------------------------------------------------ #
    def _alloc_flat(self, fill: Optional[float] = None):
        """One contiguous array covering all parameters + per-param views."""
        dtype = self.parameters[0].data.dtype
        total = sum(p.data.size for p in self.parameters)
        flat = (np.empty(total, dtype=dtype) if fill is None
                else np.full(total, fill, dtype=dtype))
        views, offset = [], 0
        for p in self.parameters:
            views.append(flat[offset:offset + p.data.size].reshape(p.data.shape))
            offset += p.data.size
        return flat, views

    def _flat_available(self) -> bool:
        if self._flat_ok is None:
            dtypes = {p.data.dtype for p in self.parameters}
            self._flat_ok = len(dtypes) == 1
            if self._flat_ok:
                self._flat_grad, self._flat_grad_views = self._alloc_flat()
        return self._flat_ok

    def grad_view_for(self, param: Parameter) -> Optional[np.ndarray]:
        """The flat-gradient view backing ``param``, or None.

        The replay executor computes gradients straight into these views so
        the flat update needs no gather copy.  Callers that bind the view to
        ``param.grad`` get bit-identical behavior either way — the gather in
        :meth:`_gather_grads` skips views that are already in place.
        """
        if not self._flat_available():
            return None
        for p, view in zip(self.parameters, self._flat_grad_views):
            if p is param:
                return view
        return None

    def _gather_grads(self) -> Optional[np.ndarray]:
        """Copy every ``param.grad`` into the flat buffer (no-op per view
        already written in place).  Returns None — demanding the per-param
        fallback — when flat mode is unavailable or any gradient is missing
        (those parameters' state must not advance)."""
        if not self._flat_available():
            return None
        grads = [p.grad for p in self.parameters]
        if any(g is None for g in grads):
            return None
        for g, view in zip(grads, self._flat_grad_views):
            if g is not view:
                np.copyto(view, g)
        return self._flat_grad


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, Nesterov and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, nesterov: bool = False,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        if momentum < 0:
            raise ValueError("momentum must be non-negative")
        if nesterov and momentum == 0:
            raise ValueError("Nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        # Per-parameter state and work buffers; allocated on first use as
        # views of flat arrays when possible (see module docstring), as
        # standalone arrays otherwise.  ``_step_buf`` composes the scaled
        # update, ``_decayed`` holds the weight-decayed gradient.
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._step_buf: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._decayed: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._velocity_flat: Optional[np.ndarray] = None
        self._step_flat: Optional[np.ndarray] = None
        self._decayed_flat: Optional[np.ndarray] = None
        self._materialized = False

    def _materialize(self) -> None:
        self._materialized = True
        if self._flat_available():
            self._velocity_flat, self._velocity = self._alloc_flat(fill=0.0)
            self._step_flat, self._step_buf = self._alloc_flat()
            if self.weight_decay:
                self._decayed_flat, self._decayed = self._alloc_flat()
        else:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]
            self._step_buf = [np.empty_like(p.data) for p in self.parameters]
            if self.weight_decay:
                self._decayed = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        if not self._materialized:
            self._materialize()
        momentum = self.momentum
        lr = self.lr
        weight_decay = self.weight_decay
        grad_flat = self._gather_grads()
        if grad_flat is not None:
            # Fused flat path: a handful of whole-buffer ufunc calls.
            if weight_decay:
                decayed = self._decayed_flat
                for p, view in zip(self.parameters, self._decayed):
                    np.multiply(p.data, weight_decay, out=view)
                decayed += grad_flat
                grad_flat = decayed
            if momentum:
                velocity = self._velocity_flat
                velocity *= momentum
                velocity += grad_flat
                if self.nesterov:
                    np.multiply(velocity, momentum, out=self._step_flat)
                    self._step_flat += grad_flat
                    update = self._step_flat
                else:
                    update = velocity
            else:
                update = grad_flat
            np.multiply(update, lr, out=self._step_flat)
            for p, view in zip(self.parameters, self._step_buf):
                np.subtract(p.data, view, out=p.data)
            return
        # Per-parameter fallback (some gradients missing or mixed dtypes);
        # operates on the same state buffers/views as the flat path.
        nesterov = self.nesterov
        for i, p in enumerate(self.parameters):
            grad = p.grad
            if grad is None:
                continue
            step_buf = self._step_buf[i]
            if weight_decay:
                decayed = self._decayed[i]
                np.multiply(p.data, weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            if momentum:
                velocity = self._velocity[i]
                velocity *= momentum
                velocity += grad
                if nesterov:
                    np.multiply(velocity, momentum, out=step_buf)
                    step_buf += grad
                    update = step_buf
                else:
                    update = velocity
            else:
                update = grad
            np.multiply(update, lr, out=step_buf)
            np.subtract(p.data, step_buf, out=p.data)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), used for the end model and ZSL-KG."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._scratch: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._decayed: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._m_flat: Optional[np.ndarray] = None
        self._v_flat: Optional[np.ndarray] = None
        self._scratch_flat: Optional[np.ndarray] = None
        self._decayed_flat: Optional[np.ndarray] = None
        self._materialized = False
        self._t = 0

    def _materialize(self) -> None:
        self._materialized = True
        if self._flat_available():
            self._m_flat, self._m = self._alloc_flat(fill=0.0)
            self._v_flat, self._v = self._alloc_flat(fill=0.0)
            self._scratch_flat, self._scratch = self._alloc_flat()
            if self.weight_decay:
                self._decayed_flat, self._decayed = self._alloc_flat()
        else:
            self._m = [np.zeros_like(p.data) for p in self.parameters]
            self._v = [np.zeros_like(p.data) for p in self.parameters]
            self._scratch = [np.empty_like(p.data) for p in self.parameters]
            if self.weight_decay:
                self._decayed = [np.empty_like(p.data) for p in self.parameters]

    def step(self) -> None:
        if not self._materialized:
            self._materialize()
        self._t += 1
        beta1, beta2 = self.beta1, self.beta2
        one_minus_beta1 = 1.0 - beta1
        one_minus_beta2 = 1.0 - beta2
        bias1 = 1.0 - beta1 ** self._t
        bias2 = 1.0 - beta2 ** self._t
        weight_decay = self.weight_decay
        eps = self.eps
        lr_over_bias1 = self.lr / bias1
        grad_flat = self._gather_grads()
        if grad_flat is not None:
            # Fused flat path: the whole update is ~11 ufunc calls total.
            if weight_decay:
                for p, view in zip(self.parameters, self._decayed):
                    np.multiply(p.data, weight_decay, out=view)
                self._decayed_flat += grad_flat
                grad_flat = self._decayed_flat
            m, v, scratch = self._m_flat, self._v_flat, self._scratch_flat
            np.multiply(grad_flat, one_minus_beta1, out=scratch)
            m *= beta1
            m += scratch
            np.multiply(grad_flat, grad_flat, out=scratch)
            scratch *= one_minus_beta2
            v *= beta2
            v += scratch
            # update = lr * (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(v, bias2, out=scratch)
            np.sqrt(scratch, out=scratch)
            scratch += eps
            np.divide(m, scratch, out=scratch)
            scratch *= lr_over_bias1
            for p, view in zip(self.parameters, self._scratch):
                np.subtract(p.data, view, out=p.data)
            return
        # Per-parameter fallback on the same state buffers/views.
        for i, p in enumerate(self.parameters):
            grad = p.grad
            if grad is None:
                continue
            scratch = self._scratch[i]
            if weight_decay:
                decayed = self._decayed[i]
                np.multiply(p.data, weight_decay, out=decayed)
                decayed += grad
                grad = decayed
            m, v = self._m[i], self._v[i]
            np.multiply(grad, one_minus_beta1, out=scratch)
            m *= beta1
            m += scratch
            np.multiply(grad, grad, out=scratch)
            scratch *= one_minus_beta2
            v *= beta2
            v += scratch
            np.divide(v, bias2, out=scratch)
            np.sqrt(scratch, out=scratch)
            scratch += eps
            np.divide(m, scratch, out=scratch)
            scratch *= lr_over_bias1
            np.subtract(p.data, scratch, out=p.data)
