"""Data augmentation for synthetic feature-grid "images".

The paper applies random resized crops and horizontal flips during training,
and FixMatch relies on a weak/strong augmentation pair.  Our synthetic
images are flat feature vectors rendered from concept prototypes, so the
augmentations here are the information-preserving analogs of those image
operations:

* :class:`RandomScale` — global brightness/contrast-like rescaling (weak).
* :class:`GaussianJitter` — additive noise, the analog of small crops (weak).
* :class:`RandomFeatureDrop` — zeroing a random subset of features, the
  analog of cutout/strong color jitter (strong).
* :class:`RandomPermuteBlocks` — shuffling small blocks of the feature grid,
  the analog of aggressive geometric distortion (strong).

All transforms consume and produce ``(n, d)`` NumPy batches and are
deterministic given their RNG, which keeps FixMatch's two augmented views
reproducible in tests.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from .tensor import get_default_dtype

__all__ = [
    "Transform",
    "Compose",
    "IdentityTransform",
    "GaussianJitter",
    "RandomScale",
    "RandomFeatureDrop",
    "RandomPermuteBlocks",
    "weak_augment",
    "strong_augment",
]


class Transform:
    """Base class: a callable mapping an ``(n, d)`` batch to an ``(n, d)`` batch."""

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class IdentityTransform(Transform):
    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.asarray(batch, dtype=get_default_dtype())


class Compose(Transform):
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]):
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = np.asarray(batch, dtype=get_default_dtype())
        for transform in self.transforms:
            out = transform(out, rng)
        return out


class GaussianJitter(Transform):
    """Add isotropic Gaussian noise with standard deviation ``sigma``."""

    def __init__(self, sigma: float = 0.05):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        batch = np.asarray(batch, dtype=get_default_dtype())
        if self.sigma == 0:
            return batch.copy()
        noise = rng.normal(0.0, self.sigma, size=batch.shape)
        return batch + noise.astype(batch.dtype, copy=False)


class RandomScale(Transform):
    """Multiply every example by a random scale drawn from ``[low, high]``."""

    def __init__(self, low: float = 0.9, high: float = 1.1):
        if low > high:
            raise ValueError("low must be <= high")
        self.low = low
        self.high = high

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        batch = np.asarray(batch, dtype=get_default_dtype())
        scales = rng.uniform(self.low, self.high, size=(batch.shape[0], 1))
        return batch * scales.astype(batch.dtype, copy=False)


class RandomFeatureDrop(Transform):
    """Zero out a random fraction ``p`` of features per example (cutout analog)."""

    def __init__(self, p: float = 0.2):
        if not 0.0 <= p < 1.0:
            raise ValueError("p must be in [0, 1)")
        self.p = p

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        batch = np.asarray(batch, dtype=get_default_dtype())
        if self.p == 0:
            return batch.copy()
        mask = rng.random(batch.shape) >= self.p
        return batch * mask


class RandomPermuteBlocks(Transform):
    """Shuffle contiguous blocks of the feature vector (geometric-distortion analog)."""

    def __init__(self, n_blocks: int = 4):
        if n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        self.n_blocks = n_blocks

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        batch = np.asarray(batch, dtype=get_default_dtype())
        d = batch.shape[1]
        n_blocks = min(self.n_blocks, d)
        boundaries = np.linspace(0, d, n_blocks + 1, dtype=int)
        blocks = [batch[:, boundaries[i]:boundaries[i + 1]] for i in range(n_blocks)]
        order = rng.permutation(n_blocks)
        return np.concatenate([blocks[i] for i in order], axis=1)


def weak_augment(sigma: float = 0.03, scale: float = 0.05) -> Transform:
    """The weak augmentation used on labeled data and FixMatch's pseudo-label view."""
    return Compose([RandomScale(1.0 - scale, 1.0 + scale), GaussianJitter(sigma)])


def strong_augment(sigma: float = 0.10, drop: float = 0.25) -> Transform:
    """The strong augmentation used on FixMatch's consistency-regularized view."""
    return Compose([
        RandomScale(0.85, 1.15),
        GaussianJitter(sigma),
        RandomFeatureDrop(drop),
    ])
