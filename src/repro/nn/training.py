"""Shared training loops used by modules, baselines, and the end model.

Every learning method in the paper boils down to one of two supervised
loops: hard-label cross entropy (fine-tuning, the Transfer and Multi-task
phases, FixMatch's supervised term) or soft-label cross entropy (the
distillation stage).  Centralizing them keeps the module implementations
focused on *what* data they train on, which is the paper's actual
contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from .data import ArrayDataset, DataLoader, SoftLabeledDataset
from .modules import Module
from .optim import SGD, Adam, Optimizer
from .replay import GraphReplay, ReplayStats
from .schedulers import (ConstantLR, CosineAnnealingLR, FixMatchCosineLR,
                         LRScheduler, MultiStepLR, WarmupMultiStepLR)
from .tensor import Tensor, get_default_dtype, inference_mode
from .transforms import Transform

__all__ = [
    "TrainConfig",
    "build_optimizer",
    "build_scheduler",
    "predict_logits",
    "predict_proba",
    "softmax_rows",
    "evaluate_accuracy",
    "train_classifier",
    "train_soft_classifier",
    "iterate_forever",
]


@dataclass
class TrainConfig:
    """Hyperparameters of a supervised training run.

    The defaults follow the ResNet-50 recipes of Appendix A.3, scaled down to
    the synthetic workload (fewer epochs, smaller batches).
    """

    epochs: int = 10
    batch_size: int = 64
    lr: float = 0.01
    momentum: float = 0.9
    nesterov: bool = False
    weight_decay: float = 0.0
    optimizer: str = "sgd"              # "sgd" or "adam"
    scheduler: str = "constant"          # constant | multistep | warmup | cosine | fixmatch
    #: epoch indices at which the LR decays (converted to steps internally)
    milestones: Tuple[int, ...] = ()
    warmup_steps: int = 0
    gamma: float = 0.1
    augment: Optional[Transform] = None
    seed: int = 0
    shuffle: bool = True
    #: graph capture/replay executor for the training loop: ``None`` follows
    #: the engine-wide flag (on by default, see ``use_graph_replay``),
    #: ``True``/``False`` force it for this run.  Replayed training is
    #: bit-identical to the eager fused path; unsupported models fall back
    #: to eager automatically (see :mod:`repro.nn.replay`).
    replay: Optional[bool] = None
    #: optional shared counter collecting the executor's per-step outcomes
    #: (captures / replays / eager fallbacks with reasons) for this run —
    #: pass a :class:`~repro.nn.replay.ReplayStats` to turn silent eager
    #: fallbacks into an observable (and testable) signal
    replay_stats: Optional[ReplayStats] = None

    def with_updates(self, **overrides) -> "TrainConfig":
        """Return a copy with selected fields replaced."""
        from dataclasses import replace

        return replace(self, **overrides)


def build_optimizer(model: Module, config: TrainConfig) -> Optimizer:
    params = model.parameters()
    if config.optimizer == "sgd":
        return SGD(params, lr=config.lr, momentum=config.momentum,
                   nesterov=config.nesterov, weight_decay=config.weight_decay)
    if config.optimizer == "adam":
        return Adam(params, lr=config.lr, weight_decay=config.weight_decay)
    raise ValueError(f"unknown optimizer {config.optimizer!r}")


def build_scheduler(optimizer: Optimizer, config: TrainConfig,
                    total_steps: int, steps_per_epoch: int = 1) -> LRScheduler:
    """Build the LR scheduler; epoch-based milestones are converted to steps."""
    steps_per_epoch = max(steps_per_epoch, 1)
    milestone_steps = [m * steps_per_epoch for m in config.milestones]
    if config.scheduler == "constant":
        return ConstantLR(optimizer)
    if config.scheduler == "multistep":
        return MultiStepLR(optimizer, milestones=milestone_steps,
                           gamma=config.gamma)
    if config.scheduler == "warmup":
        return WarmupMultiStepLR(optimizer, warmup_steps=config.warmup_steps,
                                 milestones=milestone_steps,
                                 gamma=config.gamma)
    if config.scheduler == "cosine":
        return CosineAnnealingLR(optimizer, total_steps=max(total_steps, 1))
    if config.scheduler == "fixmatch":
        return FixMatchCosineLR(optimizer, total_steps=max(total_steps, 1))
    raise ValueError(f"unknown scheduler {config.scheduler!r}")


def predict_logits(model: Module, features: np.ndarray,
                   batch_size: Optional[int] = 256) -> np.ndarray:
    """Run the model in eval mode and return the raw logits.

    Runs under :func:`~repro.nn.tensor.no_grad` (the model's parameters have
    ``requires_grad=True``, so without it every eval forward would record a
    full backward tape).  ``batch_size=None`` runs the whole array as a
    single batch, which the ensemble uses for pseudo-label inference.
    """
    features = np.asarray(features, dtype=get_default_dtype())
    model.eval()
    if batch_size is None:
        batch_size = max(len(features), 1)

    with inference_mode():
        chunks: List[np.ndarray] = []
        for start in range(0, len(features), batch_size):
            batch = features[start:start + batch_size]
            logits = model(Tensor(batch))
            chunks.append(logits.data)
    if not chunks:
        return np.zeros((0, 0))
    return np.concatenate(chunks, axis=0) if len(chunks) > 1 else chunks[0]


def softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable row-wise softmax over a ``(n, C)`` logit matrix.

    The one conversion every probability-producing path goes through
    (offline :func:`predict_proba` and the serving layer's
    ``ServableModel``), so they stay bit-identical by construction.
    """
    if logits.size == 0:
        return logits
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def predict_proba(model: Module, features: np.ndarray,
                  batch_size: Optional[int] = 256) -> np.ndarray:
    """Softmax probabilities of the model on ``features``."""
    return softmax_rows(predict_logits(model, features, batch_size=batch_size))


def evaluate_accuracy(model: Module, features: np.ndarray,
                      labels: np.ndarray) -> float:
    """Top-1 accuracy of the model on a labeled array pair."""
    logits = predict_logits(model, features)
    return F.accuracy(logits, labels)


def _epoch_loader(features: np.ndarray, labels: np.ndarray, config: TrainConfig,
                  rng: np.random.Generator, soft: bool) -> DataLoader:
    dataset = (SoftLabeledDataset(features, labels) if soft
               else ArrayDataset(features, labels))
    return DataLoader(dataset, batch_size=config.batch_size,
                      shuffle=config.shuffle, rng=rng)


def train_classifier(model: Module, features: np.ndarray, labels: np.ndarray,
                     config: TrainConfig,
                     callback: Optional[Callable[[int, float], None]] = None) -> Module:
    """Train ``model`` with hard-label cross entropy (paper Eq. 1/2/4/5).

    ``callback(epoch, mean_loss)`` is invoked after each epoch, which the
    experiment runner uses for logging.
    """
    features = np.asarray(features, dtype=get_default_dtype())
    labels = np.asarray(labels, dtype=np.int64)
    if len(features) == 0:
        raise ValueError("cannot train on an empty dataset")
    rng = np.random.default_rng(config.seed)
    loader = _epoch_loader(features, labels, config, rng, soft=False)
    optimizer = build_optimizer(model, config)
    total_steps = config.epochs * max(len(loader), 1)
    scheduler = build_scheduler(optimizer, config, total_steps,
                                steps_per_epoch=len(loader))

    stepper = GraphReplay(model, optimizer, loss="cross_entropy",
                          enabled=config.replay, stats=config.replay_stats)
    model.train()
    for epoch in range(config.epochs):
        # The fused-epoch API checks the structural fingerprint once per
        # batch signature per epoch instead of once per step; nothing inside
        # the loop can mutate the model, so the amortization is sound.
        losses = stepper.run_epoch(loader, scheduler=scheduler,
                                   augment=config.augment, rng=rng)
        if callback is not None:
            callback(epoch, float(np.mean(losses)) if losses else float("nan"))
    model.eval()
    return model


def train_soft_classifier(model: Module, features: np.ndarray,
                          soft_labels: np.ndarray, config: TrainConfig,
                          callback: Optional[Callable[[int, float], None]] = None) -> Module:
    """Train ``model`` with soft-target cross entropy (paper Eq. 7)."""
    features = np.asarray(features, dtype=get_default_dtype())
    soft_labels = np.asarray(soft_labels, dtype=get_default_dtype())
    if len(features) == 0:
        raise ValueError("cannot train on an empty dataset")
    rng = np.random.default_rng(config.seed)
    loader = _epoch_loader(features, soft_labels, config, rng, soft=True)
    optimizer = build_optimizer(model, config)
    total_steps = config.epochs * max(len(loader), 1)
    scheduler = build_scheduler(optimizer, config, total_steps,
                                steps_per_epoch=len(loader))

    stepper = GraphReplay(model, optimizer, loss="soft_cross_entropy",
                          enabled=config.replay, stats=config.replay_stats)
    model.train()
    for epoch in range(config.epochs):
        losses = stepper.run_epoch(loader, scheduler=scheduler,
                                   augment=config.augment, rng=rng)
        if callback is not None:
            callback(epoch, float(np.mean(losses)) if losses else float("nan"))
    model.eval()
    return model


def iterate_forever(loader: DataLoader) -> Iterator:
    """Cycle a loader indefinitely (used by step-based recipes like FixMatch)."""
    while True:
        for batch in loader:
            yield batch
