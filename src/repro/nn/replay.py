"""Whole-graph capture/replay executor for static training loops.

The eager engine rebuilds the autograd tape on every training step: each op
allocates a :class:`~repro.nn.Tensor`, a backward closure, and fresh gradient
arrays, and ``backward`` re-walks the graph.  For the training loops in this
reproduction the graph shape never changes between steps — same model, same
loss, same batch shape — so all of that per-step Python work is redundant.

:class:`GraphReplay` removes it.  The first time a step signature is seen it
runs the ordinary eager step while *tracing* module calls (a thread-local
hook in :meth:`Module.__call__` records ``(module, input, output)``).  The
trace is validated to be a linear chain of supported leaf layers feeding one
of the fused losses, then compiled into a plan of raw NumPy kernels bound to
preallocated intermediate and gradient buffers.  Every later step with the
same signature replays those kernels against the rebound input batch: no
tensors, no closures, no tape, no topological sort, and no allocation beyond
what NumPy's kernels need internally.  The arithmetic is kernel-for-kernel
identical to the fused eager path, so replayed training is bit-identical to
eager training (asserted by ``tests/nn/test_replay.py``).

Fallback rules (checked on *every* step, before replaying):

* replay disabled (``TrainConfig.replay=False``, ``use_graph_replay(False)``,
  or ``seed_compat_mode()``), fused ops disabled, or gradients disabled
  → eager step;
* batch shape/dtype or target shape/dtype changed → separate plan per
  signature (the capture step for a new signature runs eagerly);
* model structure changed — layer added/removed/replaced, parameter shape,
  dtype or ``requires_grad`` changed, a dropout layer's mode flipped, the
  optimizer's parameter list changed → recapture (an eager step) under the
  new signature; stale plans are never replayed;
* unsupported structure (a non-chain graph, an unknown layer type such as
  ``BatchNorm1d`` in the trace, mixed dtypes, custom tensor math in a
  ``forward``) → the signature is marked unsupported and every step with it
  runs eagerly.

Supported leaf layers: ``Linear`` (2-D fused path), ``ReLU``, ``Tanh``,
``Identity``, and ``Dropout`` (in eval mode it is a no-op; in training mode
the mask is drawn from the layer's own RNG exactly as the eager forward
does, so the RNG stream stays aligned).  Supported losses: the fused
``cross_entropy`` (hard targets), ``soft_cross_entropy``, and the fused
``l2_loss`` used by the ZSL-KG pretrain.  Optimizer updates reuse
``optimizer.step()`` itself — gradients are written into preallocated
buffers and bound to ``param.grad``, so SGD momentum and Adam state evolve
exactly as in eager mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from . import functional as F
from .modules import (Dropout, Identity, Linear, Module, ReLU, Tanh,
                      trace_module_calls)
from .optim import Optimizer
from .tensor import (Tensor, fused_ops_enabled, graph_replay_enabled,
                     inference_mode, is_grad_enabled)

__all__ = ["GraphReplay", "ReplayStats", "ReplayUnsupported", "compile_step"]


class ReplayUnsupported(RuntimeError):
    """Raised during capture when a traced step cannot be compiled."""


_LOSS_FNS: Dict[str, Callable] = {
    "cross_entropy": F.cross_entropy,
    "soft_cross_entropy": F.soft_cross_entropy,
    "l2": F.l2_loss,
}

# Leaf layer types the compiler knows how to replay.  Anything else that
# shows up in the traced chain breaks the input/output identity check and
# the signature is marked unsupported.
_LEAF_TYPES = (Linear, ReLU, Tanh, Identity, Dropout)


# --------------------------------------------------------------------------- #
# Compiled layer steps
# --------------------------------------------------------------------------- #
# Each step owns its preallocated output / gradient buffers and reads layer
# parameters through the live module attribute (``layer.weight.data``), so
# in-place parameter updates and ``load_state_dict`` swaps are picked up
# without recompiling.


class _LinearStep:
    __slots__ = ("layer", "out", "gin", "gw", "gb", "need_input_grad", "x")

    def __init__(self, layer: Linear, inp: np.ndarray, out: np.ndarray,
                 need_input_grad: bool, optimizer: Optional[Optimizer],
                 train: bool):
        self.layer = layer
        self.out = np.empty_like(out)
        self.need_input_grad = need_input_grad
        self.gin = np.empty_like(inp) if need_input_grad else None
        # Parameter gradients go straight into the optimizer's flat-gradient
        # views when available, so the fused flat optimizer update needs no
        # gather copy (standalone buffers otherwise).  Eval plans never run
        # a backward and allocate no gradient buffers at all.
        self.gw = None
        if train and layer.weight.requires_grad:
            self.gw = (optimizer.grad_view_for(layer.weight)
                       if optimizer is not None else None)
            if self.gw is None:
                self.gw = np.empty_like(layer.weight.data)
        self.gb = None
        if train and layer.bias is not None and layer.bias.requires_grad:
            self.gb = (optimizer.grad_view_for(layer.bias)
                       if optimizer is not None else None)
            if self.gb is None:
                self.gb = np.empty_like(layer.bias.data)
        self.x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.x = x
        layer = self.layer
        out = self.out
        np.matmul(x, layer.weight.data, out=out)
        if layer.bias is not None:
            out += layer.bias.data
        return out

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        layer = self.layer
        if self.gw is not None:
            np.matmul(self.x.T, grad, out=self.gw)
            layer.weight.grad = self.gw
        if self.gb is not None:
            # ndarray.sum lowers to add.reduce; call it directly to skip
            # the np.sum dispatch layer (hot path: once per linear per step).
            np.add.reduce(grad, axis=0, out=self.gb)
            layer.bias.grad = self.gb
        if self.need_input_grad:
            np.matmul(grad, layer.weight.data.T, out=self.gin)
            return self.gin
        return None


class _ReLUStep:
    __slots__ = ("mask", "out", "gin", "need_input_grad")

    def __init__(self, inp: np.ndarray, out: np.ndarray, need_input_grad: bool):
        self.mask = np.empty(inp.shape, dtype=bool)
        self.out = np.empty_like(out)
        self.need_input_grad = need_input_grad
        self.gin = np.empty_like(inp) if need_input_grad else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        np.greater(x, 0, out=self.mask)
        np.multiply(x, self.mask, out=self.out)
        return self.out

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        if not self.need_input_grad:
            return None
        np.multiply(grad, self.mask, out=self.gin)
        return self.gin


class _TanhStep:
    __slots__ = ("out", "tmp", "gin", "need_input_grad")

    def __init__(self, inp: np.ndarray, out: np.ndarray, need_input_grad: bool):
        self.out = np.empty_like(out)
        self.need_input_grad = need_input_grad
        self.tmp = np.empty_like(out) if need_input_grad else None
        self.gin = np.empty_like(inp) if need_input_grad else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        np.tanh(x, out=self.out)
        return self.out

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        if not self.need_input_grad:
            return None
        # Eager computes ``grad * (1 - out ** 2)``; ``out ** 2`` lowers to
        # an elementwise square, which np.square reproduces bit-for-bit.
        np.square(self.out, out=self.tmp)
        np.subtract(1.0, self.tmp, out=self.tmp)
        np.multiply(grad, self.tmp, out=self.gin)
        return self.gin


class _DropoutStep:
    __slots__ = ("layer", "mask", "out", "gin", "need_input_grad")

    def __init__(self, layer: Dropout, inp: np.ndarray, out: np.ndarray,
                 need_input_grad: bool):
        self.layer = layer
        self.mask: Optional[np.ndarray] = None
        self.out = np.empty_like(out)
        self.need_input_grad = need_input_grad
        self.gin = np.empty_like(inp) if need_input_grad else None

    def forward(self, x: np.ndarray) -> np.ndarray:
        layer = self.layer
        keep = 1.0 - layer.p
        # Draw from the layer's own RNG with the exact expression the eager
        # forward uses, keeping the RNG stream aligned with eager training.
        self.mask = (layer._rng.random(x.shape) < keep).astype(x.dtype) / keep
        np.multiply(x, self.mask, out=self.out)
        return self.out

    def backward(self, grad: np.ndarray) -> Optional[np.ndarray]:
        if not self.need_input_grad:
            return None
        np.multiply(grad, self.mask, out=self.gin)
        return self.gin


# --------------------------------------------------------------------------- #
# Compiled loss kernels
# --------------------------------------------------------------------------- #


class _HardCrossEntropyLoss:
    """Fused softmax + hard cross entropy (matches ``softmax_cross_entropy``)."""

    __slots__ = ("rows", "maxbuf", "shifted", "exp", "sumexp", "logbuf", "d",
                 "denom", "num_classes", "targets")

    def __init__(self, logits: np.ndarray):
        n, c = logits.shape
        dtype = logits.dtype
        self.rows = np.arange(n)
        self.maxbuf = np.empty((n, 1), dtype=dtype)
        self.shifted = np.empty((n, c), dtype=dtype)
        self.exp = np.empty((n, c), dtype=dtype)
        self.sumexp = np.empty((n, 1), dtype=dtype)
        self.logbuf = np.empty(n, dtype=dtype)
        self.d = np.empty((n, c), dtype=dtype)
        self.denom = float(n)
        self.num_classes = c
        self.targets: Optional[np.ndarray] = None

    def check(self, targets: np.ndarray) -> bool:
        return (targets.ndim == 1 and len(targets) == len(self.rows)
                and targets.dtype.kind in "iu")

    def forward(self, z: np.ndarray, targets: np.ndarray,
                need_value: bool = True) -> Optional[float]:
        targets = np.asarray(targets, dtype=np.int64)
        F.check_label_range(targets, self.num_classes)
        self.targets = targets
        np.maximum.reduce(z, axis=1, keepdims=True, out=self.maxbuf)
        np.subtract(z, self.maxbuf, out=self.shifted)
        np.exp(self.shifted, out=self.exp)
        np.add.reduce(self.exp, axis=1, keepdims=True, out=self.sumexp)
        if not need_value:
            # The backward needs only exp/sumexp; the scalar is elided when
            # the caller does not consume it.
            return None
        np.log(self.sumexp[:, 0], out=self.logbuf)
        picked = self.shifted[self.rows, targets]
        picked -= self.logbuf
        return -float(picked.sum()) / self.denom

    def backward(self) -> np.ndarray:
        d = self.d
        np.divide(self.exp, self.sumexp, out=d)
        d[self.rows, self.targets] -= 1.0
        d *= 1.0 / self.denom
        return d


class _SoftCrossEntropyLoss:
    """Fused soft-target cross entropy (matches ``soft_cross_entropy``)."""

    __slots__ = ("maxbuf", "shifted", "exp", "sumexp", "logbuf", "prod",
                 "tsum", "d", "denom", "shape", "dtype", "targets")

    def __init__(self, logits: np.ndarray):
        n, c = logits.shape
        dtype = logits.dtype
        self.maxbuf = np.empty((n, 1), dtype=dtype)
        self.shifted = np.empty((n, c), dtype=dtype)
        self.exp = np.empty((n, c), dtype=dtype)
        self.sumexp = np.empty((n, 1), dtype=dtype)
        self.logbuf = np.empty((n, 1), dtype=dtype)
        self.prod = np.empty((n, c), dtype=dtype)
        self.tsum = np.empty((n, 1), dtype=dtype)
        self.d = np.empty((n, c), dtype=dtype)
        self.denom = float(n)
        self.shape = (n, c)
        self.dtype = dtype
        self.targets: Optional[np.ndarray] = None

    def check(self, targets: np.ndarray) -> bool:
        return targets.shape == self.shape

    def forward(self, z: np.ndarray, targets: np.ndarray,
                need_value: bool = True) -> Optional[float]:
        targets = np.asarray(targets, dtype=self.dtype)
        self.targets = targets
        np.maximum.reduce(z, axis=1, keepdims=True, out=self.maxbuf)
        np.subtract(z, self.maxbuf, out=self.shifted)
        np.exp(self.shifted, out=self.exp)
        np.add.reduce(self.exp, axis=1, keepdims=True, out=self.sumexp)
        if not need_value:
            return None
        np.log(self.sumexp, out=self.logbuf)
        # log_probs = shifted - log(sumexp); loss = -sum(t * log_probs)/n
        np.subtract(self.shifted, self.logbuf, out=self.prod)
        np.multiply(self.prod, targets, out=self.prod)
        return -float(self.prod.sum()) / self.denom

    def backward(self) -> np.ndarray:
        d = self.d
        np.divide(self.exp, self.sumexp, out=d)
        np.add.reduce(self.targets, axis=1, keepdims=True, out=self.tsum)
        d *= self.tsum
        d -= self.targets
        d *= 1.0 / self.denom
        return d


class _L2Loss:
    """Fused mean squared L2 row distance (matches the fused ``l2_loss``)."""

    __slots__ = ("diff", "sq", "d", "denom", "shape", "dtype")

    def __init__(self, predictions: np.ndarray):
        self.diff = np.empty_like(predictions)
        self.sq = np.empty_like(predictions)
        self.d = np.empty_like(predictions)
        self.denom = float(max(predictions.size // predictions.shape[-1], 1))
        self.shape = predictions.shape
        self.dtype = predictions.dtype

    def check(self, targets: np.ndarray) -> bool:
        return (targets.shape == self.shape
                and np.asarray(targets).dtype == self.dtype)

    def forward(self, pred: np.ndarray, targets: np.ndarray,
                need_value: bool = True) -> Optional[float]:
        np.subtract(pred, targets, out=self.diff)
        if not need_value:
            return None
        np.multiply(self.diff, self.diff, out=self.sq)
        return float(self.sq.sum()) / self.denom

    def backward(self) -> np.ndarray:
        np.multiply(self.diff, 2.0 * 1.0 / self.denom, out=self.d)
        return self.d


_LOSS_COMPILERS = {
    "cross_entropy": _HardCrossEntropyLoss,
    "soft_cross_entropy": _SoftCrossEntropyLoss,
    "l2": _L2Loss,
}


# --------------------------------------------------------------------------- #
# Structural fingerprint (the per-step signature guard)
# --------------------------------------------------------------------------- #


def _model_fingerprint(module: Module, out: Optional[list] = None) -> tuple:
    """A cheap structural identity of the model, rebuilt on every step.

    Captures everything a compiled plan depends on: the identity and type of
    every submodule in attribute order, parameter shapes/dtypes and
    ``requires_grad`` flags for ``Linear`` layers, and mode/probability for
    ``Dropout`` (whose replay behavior depends on them).  Any mutation —
    adding a layer, replacing a head, freezing a parameter, flipping a
    dropout to train mode — changes the fingerprint and forces a recapture.
    """
    root = out is None
    if root:
        out = []
    t = type(module)
    if t is Linear:
        w = module.weight
        b = module.bias
        out.append((id(module), t, id(w), w.data.shape, w.data.dtype,
                    w.requires_grad,
                    None if b is None else (id(b), b.data.shape, b.data.dtype,
                                            b.requires_grad)))
    elif t is Dropout:
        out.append((id(module), t, module.p, module.training))
    else:
        out.append((id(module), t))
    for value in vars(module).values():
        if isinstance(value, Module):
            _model_fingerprint(value, out)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Module):
                    _model_fingerprint(item, out)
    return tuple(out) if root else ()


# --------------------------------------------------------------------------- #
# The compiled plan
# --------------------------------------------------------------------------- #


class _CompiledStep:
    __slots__ = ("steps", "loss", "optimizer", "in_dtype", "_forwards",
                 "_backwards")

    def __init__(self, steps: List, loss, optimizer: Optional[Optimizer],
                 in_dtype: np.dtype):
        self.steps = steps
        self.loss = loss
        self.optimizer = optimizer
        self.in_dtype = in_dtype
        # Prebound kernel methods: the replay loop is pure C-call dispatch.
        self._forwards = [step.forward for step in steps]
        self._backwards = [step.backward for step in reversed(steps)]

    def run(self, x: np.ndarray, y: np.ndarray,
            need_value: bool = True) -> Optional[float]:
        if x.dtype != self.in_dtype:
            # The eager path casts through ``Tensor(x)``; match it.
            x = x.astype(self.in_dtype)
        a = x
        for forward in self._forwards:
            a = forward(a)
        loss = self.loss.forward(a, y, need_value)
        grad = self.loss.backward()
        for backward in self._backwards:
            grad = backward(grad)
            if grad is None:
                break
        self.optimizer.step()
        return loss

    def run_eval(self, x: np.ndarray, y: np.ndarray) -> float:
        """Forward + loss value only (the compiled inference pass)."""
        if x.dtype != self.in_dtype:
            x = x.astype(self.in_dtype)
        a = x
        for forward in self._forwards:
            a = forward(a)
        return self.loss.forward(a, y)


_STEP_COMPILERS = {
    Linear: _LinearStep,
    ReLU: _ReLUStep,
    Tanh: _TanhStep,
}


def _compile_plan(records: List[Tuple[Module, Tensor, Tensor]],
                  model_input: Tensor, model_output: Tensor, loss_kind: str,
                  optimizer: Optional[Optimizer], targets: np.ndarray,
                  train: bool = True) -> _CompiledStep:
    """Build a replay plan from one traced eager forward, or raise
    :class:`ReplayUnsupported`."""
    leaf_records = [r for r in records if type(r[0]) in _LEAF_TYPES]
    in_dtype = model_input.data.dtype
    steps: List = []
    current = model_input
    seen_layers = set()
    for layer, inp, out in leaf_records:
        if inp is not current:
            raise ReplayUnsupported(
                f"traced graph is not a linear chain at {type(layer).__name__}")
        if id(layer) in seen_layers:
            # A layer applied twice (weight sharing) accumulates gradients
            # in eager mode; the plan's one-buffer-per-step layout cannot
            # express that, so fall back to eager.
            raise ReplayUnsupported(
                f"{type(layer).__name__} appears twice in the traced chain")
        seen_layers.add(id(layer))
        if out is inp:
            # Identity / eval-mode dropout: forward returned its input.
            continue
        if out.data.dtype != in_dtype or inp.data.dtype != in_dtype:
            raise ReplayUnsupported("mixed dtypes in the traced graph")
        t = type(layer)
        need_input_grad = bool(inp.requires_grad)
        if t is Linear:
            if inp.ndim != 2:
                raise ReplayUnsupported("only the 2-D fused linear path "
                                        "is replayable")
            steps.append(_LinearStep(layer, inp.data, out.data,
                                     need_input_grad, optimizer, train))
        elif t is Dropout:
            steps.append(_DropoutStep(layer, inp.data, out.data,
                                      need_input_grad))
        elif t in _STEP_COMPILERS:
            steps.append(_STEP_COMPILERS[t](inp.data, out.data,
                                            need_input_grad))
        else:  # pragma: no cover - _LEAF_TYPES and compilers are in sync
            raise ReplayUnsupported(f"no replay kernel for {t.__name__}")
        current = out
    if current is not model_output:
        raise ReplayUnsupported("model output is not the last traced leaf "
                                "output (custom tensor math in forward?)")
    if not steps:
        raise ReplayUnsupported("traced graph contains no replayable ops")
    if model_output.ndim != 2:
        raise ReplayUnsupported("losses replay on 2-D outputs only")

    loss = _LOSS_COMPILERS[loss_kind](model_output.data)
    if not loss.check(np.asarray(targets)):
        raise ReplayUnsupported("targets incompatible with the fused loss")
    return _CompiledStep(steps, loss, optimizer, in_dtype)


# --------------------------------------------------------------------------- #
# Public executor
# --------------------------------------------------------------------------- #


@dataclass
class ReplayStats:
    """Counters exposed for tests and diagnostics."""

    captures: int = 0
    replays: int = 0
    eager_steps: int = 0

    @property
    def total(self) -> int:
        return self.captures + self.replays + self.eager_steps


class _UnsupportedPlan:
    """Negative cache entry: this signature cannot be compiled.

    Pins the traced modules so their ids (which participate in the
    signature) cannot be recycled for different modules while the entry
    lives.
    """

    __slots__ = ("pins",)

    def __init__(self, pins):
        self.pins = pins


#: plans cached per executor; beyond this many distinct signatures the
#: executor stops compiling and runs eager (a shape-churning workload would
#: otherwise accumulate buffers without ever amortizing a capture)
_MAX_PLANS = 16


class GraphReplay:
    """Capture/replay stepper for one ``(model, loss, optimizer)`` loop.

    ``step(x, y)`` performs one full training step — forward, loss, backward,
    optimizer update — and returns the loss as a float.  The first step for
    each signature runs eagerly (tracing the graph); subsequent steps replay
    compiled NumPy kernels.  Every fallback rule in the module docstring is
    re-checked per step, so the executor is always safe to leave on.

    The learning-rate schedule lives outside: callers keep invoking
    ``scheduler.step()`` before each ``step`` exactly as in the eager loop
    (the replayed update reads ``optimizer.lr`` live).
    """

    def __init__(self, model: Module, optimizer: Optimizer,
                 loss: str = "cross_entropy",
                 enabled: Optional[bool] = None):
        if loss not in _LOSS_FNS:
            raise ValueError(f"unknown replay loss {loss!r}; "
                             f"known: {sorted(_LOSS_FNS)}")
        self.model = model
        self.optimizer = optimizer
        self.loss_kind = loss
        self._loss_fn = _LOSS_FNS[loss]
        self._enabled = enabled
        self._plans: Dict[tuple, object] = {}
        self._last_sig: Optional[tuple] = None
        self._last_plan: Optional[_CompiledStep] = None
        self.stats = ReplayStats()

    # -- eager reference step ------------------------------------------- #
    def _eager_step(self, x: np.ndarray, y: np.ndarray) -> float:
        self.stats.eager_steps += 1
        logits = self.model(Tensor(x))
        loss = self._loss_fn(logits, y)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()

    # -- capture -------------------------------------------------------- #
    def _traced_step(self, x: np.ndarray,
                     y: np.ndarray) -> Tuple[Optional[_CompiledStep], list, float]:
        """Run one eager step with the module-call tracer on.

        The step always completes eagerly — including when compilation
        fails — so the capture step is indistinguishable from a plain eager
        step (same updates, same RNG draws, and ``zero_grad`` clears any
        stale gradient state before buffer-bound gradients take over).
        Returns ``(plan_or_None, traced_modules, loss)``.
        """
        records: List[Tuple[Module, Tensor, Tensor]] = []
        x_t = Tensor(x)
        with trace_module_calls(records):
            logits = self.model(x_t)
        try:
            plan = _compile_plan(records, x_t, logits, self.loss_kind,
                                 self.optimizer, y)
        except ReplayUnsupported:
            plan = None
        loss = self._loss_fn(logits, y)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return plan, [r[0] for r in records], loss.item()

    def _traced_eval(self, x: np.ndarray,
                     y: np.ndarray) -> Tuple[Optional[_CompiledStep], list, float]:
        """Eager inference pass (tape-free) with the tracer on."""
        records: List[Tuple[Module, Tensor, Tensor]] = []
        with inference_mode():
            x_t = Tensor(x)
            with trace_module_calls(records):
                out = self.model(x_t)
            try:
                plan = _compile_plan(records, x_t, out, self.loss_kind,
                                     None, y, train=False)
            except ReplayUnsupported:
                plan = None
            loss = self._loss_fn(out, y).item()
        return plan, [r[0] for r in records], loss

    def _signature(self, x: np.ndarray, y: np.ndarray) -> tuple:
        return (x.shape, x.dtype, y.shape, y.dtype,
                tuple(id(p) for p in self.optimizer.parameters),
                _model_fingerprint(self.model))

    # -- the step ------------------------------------------------------- #
    def step(self, x: np.ndarray, y: np.ndarray,
             compute_loss: bool = True) -> Optional[float]:
        """One training step (forward, loss, backward, optimizer update).

        With ``compute_loss=False`` a replayed step elides materializing the
        loss scalar (the gradient does not depend on it) and returns None —
        used by loops that discard the training loss, like the ZSL-KG
        pretrain.  Eager/capture steps still compute and return it.
        """
        enabled = (self._enabled if self._enabled is not None
                   else graph_replay_enabled())
        if not (enabled and fused_ops_enabled() and is_grad_enabled()):
            return self._eager_step(x, y)
        x = np.asarray(x)
        y = np.asarray(y)
        sig = self._signature(x, y)
        if sig == self._last_sig:
            plan = self._last_plan
        else:
            plan = self._plans.get(sig)
            if plan is None:
                if len(self._plans) >= _MAX_PLANS:
                    return self._eager_step(x, y)
                plan, modules, loss = self._traced_step(x, y)
                if plan is None:
                    self._plans[sig] = _UnsupportedPlan(modules)
                    self.stats.eager_steps += 1
                else:
                    self._plans[sig] = plan
                    self._last_sig, self._last_plan = sig, plan
                    self.stats.captures += 1
                return loss
            if isinstance(plan, _UnsupportedPlan):
                return self._eager_step(x, y)
            self._last_sig, self._last_plan = sig, plan
        self.stats.replays += 1
        return plan.run(x, y, compute_loss)

    # -- compiled inference --------------------------------------------- #
    def _eager_eval(self, x: np.ndarray, y: np.ndarray) -> float:
        self.stats.eager_steps += 1
        with inference_mode():
            return self._loss_fn(self.model(Tensor(x)), y).item()

    def eval_loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Loss of the model on ``(x, y)`` via a compiled inference pass.

        The tape-free equivalent of ``loss_fn(model(Tensor(x)), y).item()``
        under :func:`~repro.nn.tensor.inference_mode`, replayed through
        forward-only kernels.  Same signature guards and eager fallback as
        :meth:`step`; separate plans, so train/eval batch shapes coexist.
        """
        enabled = (self._enabled if self._enabled is not None
                   else graph_replay_enabled())
        if not (enabled and fused_ops_enabled()):
            return self._eager_eval(x, y)
        x = np.asarray(x)
        y = np.asarray(y)
        sig = ("eval",) + self._signature(x, y)
        plan = self._plans.get(sig)
        if plan is None:
            if len(self._plans) >= _MAX_PLANS:
                return self._eager_eval(x, y)
            plan, modules, loss = self._traced_eval(x, y)
            if plan is None:
                self._plans[sig] = _UnsupportedPlan(modules)
                self.stats.eager_steps += 1
            else:
                self._plans[sig] = plan
                self.stats.captures += 1
            return loss
        if isinstance(plan, _UnsupportedPlan):
            return self._eager_eval(x, y)
        self.stats.replays += 1
        return plan.run_eval(x, y)


def compile_step(model: Module, optimizer: Optimizer,
                 loss: str = "cross_entropy",
                 enabled: Optional[bool] = None) -> GraphReplay:
    """Build a :class:`GraphReplay` stepper for a static training loop."""
    return GraphReplay(model, optimizer, loss=loss, enabled=enabled)
