"""Whole-graph capture/replay executor for static training loops.

The eager engine rebuilds the autograd tape on every training step: each op
allocates a :class:`~repro.nn.Tensor`, a backward closure, and fresh gradient
arrays, and ``backward`` re-walks the graph.  For the training loops in this
reproduction the graph shape never changes between steps — same model, same
loss, same batch shape — so all of that per-step Python work is redundant.

:class:`GraphReplay` removes it.  The first time a step signature is seen it
runs the ordinary eager step while *tracing* the op DAG: a thread-local hook
records every ``Module.__call__`` (``("module", module, input, output)``),
every traced tensor combinator (``("add"/"mul", a, b, out)``), and every
fused loss (``("loss", kind, logits, targets, extra, out)``).  The compiler
walks the records backward from the loss root, resolving each tensor to the
record that produced it or to a declared step input, and emits a kernel plan
in the original execution order.  The plan is a general DAG, not just a
linear chain: it supports fan-out (one activation consumed by several
consumers), fan-in (summed / weighted-sum losses), and weight sharing (the
same layer applied to several inputs, as in FixMatch's two-view consistency
step), with gradient contributions written once and accumulated thereafter
in exactly the eager backward order.  Every later step with the same
signature replays raw NumPy kernels bound to preallocated buffers: no
tensors, no closures, no tape, no topological sort.  The arithmetic is
kernel-for-kernel identical to the fused eager path, so replayed training is
bit-identical to eager training (asserted by ``tests/nn/test_replay.py`` and
``tests/nn/test_replay_dag.py``).

Fallback rules (checked on *every* step, before replaying):

* replay disabled (``TrainConfig.replay=False``, ``use_graph_replay(False)``,
  or ``seed_compat_mode()``), fused ops disabled, or gradients disabled
  → eager step;
* batch shape/dtype or target shape/dtype changed → separate plan per
  signature (the capture step for a new signature runs eagerly);
* model structure changed — layer added/removed/replaced, parameter shape,
  dtype or ``requires_grad`` changed, a dropout or batch-norm layer's mode
  flipped, batch-norm momentum/eps/running-stat dtype changed, the
  optimizer's parameter list changed, or the engine default dtype changed →
  recapture (an eager step) under the new signature; stale plans are never
  replayed;
* unsupported structure (tensor math outside the traced op set, constants
  created inside the step function, loss targets that are not step inputs)
  → the signature is marked unsupported and every step with it runs eagerly,
  with the reason recorded in :attr:`ReplayStats.fallbacks`.

Supported leaf layers: ``Linear`` (2-D fused path), ``ReLU``, ``Tanh``,
``Identity``, ``Dropout`` (in eval mode a no-op; in training mode the mask
is drawn from the layer's own RNG exactly as the eager forward does, so the
RNG stream stays aligned), and ``BatchNorm1d`` (train mode recomputes batch
statistics and updates the running stats exactly as eager does — including
rebinding fresh running-stat arrays — and eval mode normalizes with the live
running stats; the backward treats the batch statistics as constants, which
is the eager engine's semantic).  Supported glue ops: tensor ``+`` and ``*``
(e.g. summed or weighted-sum losses).  Supported losses: the fused
``cross_entropy`` (hard targets, with optional per-sample weights),
``soft_cross_entropy``, and the fused squared-error losses (``l2_loss`` /
``mse_loss``).  Optimizer updates reuse ``optimizer.step()`` itself —
gradients are written into preallocated buffers (the optimizer's flat
gradient views when available) and bound to ``param.grad``, so SGD momentum
and Adam state evolve exactly as in eager mode.

Beyond the classic ``step(x, y)`` chain API, the executor exposes:

* :meth:`GraphReplay.step_fn` — capture/replay an arbitrary step *function*
  ``fn(model, batch)`` returning a scalar loss Tensor (FixMatch's two-view
  consistency step runs through this);
* :meth:`GraphReplay.forward` — a compiled inference forward returning raw
  logits (FixMatch's pseudo-label view);
* :meth:`GraphReplay.eval_loss` — a compiled forward + loss value;
* :meth:`GraphReplay.run_epoch` — the fused-epoch API: the structural
  fingerprint is checked once per (shape, dtype) signature per epoch instead
  of per step, amortizing the per-step guard across a whole epoch.  The
  caller promises not to mutate the model structure mid-epoch (the training
  loops in :mod:`repro.nn.training` cannot).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from . import functional as F
from .modules import (BatchNorm1d, Dropout, Linear, Module, ReLU, Tanh,
                      trace_module_calls)
from .optim import Optimizer
from .tensor import (Tensor, _unbroadcast, fused_ops_enabled,
                     get_default_dtype, graph_replay_enabled, inference_mode,
                     is_grad_enabled)

__all__ = ["GraphReplay", "ReplayStats", "ReplayUnsupported", "compile_step",
           "collect_replay_stats"]


class ReplayUnsupported(RuntimeError):
    """Raised during capture when a traced step cannot be compiled."""


_LOSS_FNS: Dict[str, Callable] = {
    "cross_entropy": F.cross_entropy,
    "soft_cross_entropy": F.soft_cross_entropy,
    "l2": F.l2_loss,
}

# --------------------------------------------------------------------------- #
# Stats
# --------------------------------------------------------------------------- #


class ReplayStats:
    """Counters exposed for tests and diagnostics.

    ``captures`` counts compile steps (which run eagerly exactly once per
    signature), ``replays`` counts compiled-kernel steps, and
    ``eager_steps`` counts every step that fell back to the eager engine,
    with the reasons tallied in :attr:`fallbacks` (reason → count).  On a
    static loop with replay enabled, ``eager_steps`` — and therefore
    ``fallback_count`` — must be zero; the pipeline regression tests assert
    exactly that.  Increments are lock-protected so one instance can collect
    across the parallel controller's worker threads.
    """

    def __init__(self) -> None:
        self.captures = 0
        self.replays = 0
        self.eager_steps = 0
        self.fallbacks: Dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def total(self) -> int:
        return self.captures + self.replays + self.eager_steps

    @property
    def fallback_count(self) -> int:
        return sum(self.fallbacks.values())

    def add_capture(self) -> None:
        with self._lock:
            self.captures += 1

    def add_replay(self) -> None:
        with self._lock:
            self.replays += 1

    def add_eager(self, reason: str) -> None:
        with self._lock:
            self.eager_steps += 1
            self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ReplayStats(captures={self.captures}, replays={self.replays}, "
                f"eager_steps={self.eager_steps}, fallbacks={self.fallbacks})")


#: ambient stats sinks (see :func:`collect_replay_stats`); appended to every
#: GraphReplay created while the scope is active
_AMBIENT_SINKS: List[ReplayStats] = []


@contextmanager
def collect_replay_stats(stats: ReplayStats):
    """Collect replay counters from every stepper created in this scope.

    The :class:`~repro.core.Controller` wraps its run in this scope when
    ``ControllerConfig.replay_stats`` is set, so one counter aggregates every
    training loop in the pipeline (module fine-tuning, the ZSL-KG pretrain,
    FixMatch's two-view step, end-model distillation) — including loops run
    by the parallel controller's worker threads.
    """
    _AMBIENT_SINKS.append(stats)
    try:
        yield stats
    finally:
        _AMBIENT_SINKS.remove(stats)


# --------------------------------------------------------------------------- #
# Compiled kernel nodes
# --------------------------------------------------------------------------- #
# Each node owns its preallocated forward/backward buffers and reads layer
# parameters through the live module attribute (``layer.weight.data``), so
# in-place parameter updates and ``load_state_dict`` swaps are picked up
# without recompiling.  Gradient deposit slots (``gw``/``gb``/``gin``/``ta``
# /``tb``/``tz``) are wired by the compiler: ``None`` means "not needed",
# otherwise the slot holds the target buffer — a producer node's grad buffer
# or an optimizer flat-gradient view — plus an ``*_acc`` flag.  The first
# contribution in backward-execution order writes the target; later ones
# accumulate through a private ``*_tmp`` buffer, reproducing the eager
# engine's write-then-add gradient accumulation bit for bit.


class _InputNode:
    """A step input, rebound on every replay (cast to the captured dtype)."""

    __slots__ = ("key", "cast_dtype")

    def __init__(self, key: str, cast_dtype):
        self.key = key
        self.cast_dtype = cast_dtype


class _LinearStep:
    __slots__ = ("index", "layer", "requires_grad", "x", "out", "grad",
                 "gw", "gw_acc", "gw_tmp", "gb", "gb_acc", "gb_tmp",
                 "gin", "gin_acc", "gin_tmp",
                 "_src", "_src_rg")

    def __init__(self, layer: Linear, inp: Tensor, out: Tensor):
        if inp.ndim != 2:
            raise ReplayUnsupported("only the 2-D fused linear path is "
                                    "replayable")
        self.layer = layer
        self.x: Optional[np.ndarray] = None
        self.out = np.empty_like(out.data)
        self.grad: Optional[np.ndarray] = None
        self.gw = self.gb = self.gin = None
        self.gw_acc = self.gb_acc = self.gin_acc = False
        self.gw_tmp = self.gb_tmp = self.gin_tmp = None

    def forward(self) -> None:
        layer = self.layer
        out = self.out
        np.matmul(self.x, layer.weight.data, out=out)
        if layer.bias is not None:
            out += layer.bias.data

    def backward(self) -> None:
        layer = self.layer
        grad = self.grad
        if self.gw is not None:
            if self.gw_acc:
                np.matmul(self.x.T, grad, out=self.gw_tmp)
                self.gw += self.gw_tmp
            else:
                np.matmul(self.x.T, grad, out=self.gw)
            layer.weight.grad = self.gw
        if self.gb is not None:
            # ndarray.sum lowers to add.reduce; call it directly to skip
            # the np.sum dispatch layer (hot path: once per linear per step).
            if self.gb_acc:
                np.add.reduce(grad, axis=0, out=self.gb_tmp)
                self.gb += self.gb_tmp
            else:
                np.add.reduce(grad, axis=0, out=self.gb)
            layer.bias.grad = self.gb
        if self.gin is not None:
            if self.gin_acc:
                np.matmul(grad, layer.weight.data.T, out=self.gin_tmp)
                self.gin += self.gin_tmp
            else:
                np.matmul(grad, layer.weight.data.T, out=self.gin)


class _ReLUStep:
    __slots__ = ("index", "requires_grad", "x", "out", "grad", "mask",
                 "gin", "gin_acc", "gin_tmp",
                 "_src", "_src_rg")

    def __init__(self, layer: ReLU, inp: Tensor, out: Tensor):
        self.x: Optional[np.ndarray] = None
        self.mask = np.empty(inp.shape, dtype=bool)
        self.out = np.empty_like(out.data)
        self.grad: Optional[np.ndarray] = None
        self.gin = None
        self.gin_acc = False
        self.gin_tmp = None

    def forward(self) -> None:
        np.greater(self.x, 0, out=self.mask)
        np.multiply(self.x, self.mask, out=self.out)

    def backward(self) -> None:
        if self.gin is None:
            return
        if self.gin_acc:
            np.multiply(self.grad, self.mask, out=self.gin_tmp)
            self.gin += self.gin_tmp
        else:
            np.multiply(self.grad, self.mask, out=self.gin)


class _TanhStep:
    __slots__ = ("index", "requires_grad", "x", "out", "grad", "tmp",
                 "gin", "gin_acc", "gin_tmp",
                 "_src", "_src_rg")

    def __init__(self, layer: Tanh, inp: Tensor, out: Tensor):
        self.x: Optional[np.ndarray] = None
        self.out = np.empty_like(out.data)
        self.tmp = np.empty_like(out.data)
        self.grad: Optional[np.ndarray] = None
        self.gin = None
        self.gin_acc = False
        self.gin_tmp = None

    def forward(self) -> None:
        np.tanh(self.x, out=self.out)

    def backward(self) -> None:
        if self.gin is None:
            return
        # Eager computes ``grad * (1 - out ** 2)``; ``out ** 2`` lowers to
        # an elementwise square, which np.square reproduces bit-for-bit.
        np.square(self.out, out=self.tmp)
        np.subtract(1.0, self.tmp, out=self.tmp)
        if self.gin_acc:
            np.multiply(self.grad, self.tmp, out=self.gin_tmp)
            self.gin += self.gin_tmp
        else:
            np.multiply(self.grad, self.tmp, out=self.gin)


class _DropoutStep:
    __slots__ = ("index", "requires_grad", "layer", "x", "out", "grad",
                 "mask", "gin", "gin_acc", "gin_tmp",
                 "_src", "_src_rg")

    def __init__(self, layer: Dropout, inp: Tensor, out: Tensor):
        self.layer = layer
        self.x: Optional[np.ndarray] = None
        self.mask: Optional[np.ndarray] = None
        self.out = np.empty_like(out.data)
        self.grad: Optional[np.ndarray] = None
        self.gin = None
        self.gin_acc = False
        self.gin_tmp = None

    def forward(self) -> None:
        layer = self.layer
        x = self.x
        keep = 1.0 - layer.p
        # Draw from the layer's own RNG with the exact expression the eager
        # forward uses, keeping the RNG stream aligned with eager training.
        self.mask = (layer._rng.random(x.shape) < keep).astype(x.dtype) / keep
        np.multiply(x, self.mask, out=self.out)

    def backward(self) -> None:
        if self.gin is None:
            return
        if self.gin_acc:
            np.multiply(self.grad, self.mask, out=self.gin_tmp)
            self.gin += self.gin_tmp
        else:
            np.multiply(self.grad, self.mask, out=self.gin)


class _BatchNormStep:
    """BatchNorm1d kernel, mirroring the eager forward line for line.

    Train mode computes batch statistics and updates the running stats with
    the exact eager expression (allocating and *rebinding* fresh running
    arrays, so external holders of the old arrays see eager-identical
    behavior); eval mode reads the live running stats.  The statistics pass
    through the same ``Tensor()`` dtype cast the eager forward applies, and
    the backward treats them as constants — the eager engine's semantic —
    so ``grad_x = (grad * gamma) * scale`` in that exact multiply order.
    """

    __slots__ = ("index", "requires_grad", "layer", "training", "cast_dtype",
                 "x", "out", "grad", "meanbuf", "varbuf", "scalebuf",
                 "negmean", "diff", "norm", "t2", "scratch", "gmul", "_scale",
                 "gg", "gg_acc", "gg_tmp", "gb", "gb_acc", "gb_tmp",
                 "gin", "gin_acc", "gin_tmp",
                 "_src", "_src_rg")

    def __init__(self, layer: BatchNorm1d, inp: Tensor, out: Tensor):
        if inp.ndim != 2:
            raise ReplayUnsupported("BatchNorm1d replays on 2-D inputs only")
        self.layer = layer
        self.training = layer.training
        self.cast_dtype = np.dtype(get_default_dtype())
        in_dt = inp.data.dtype
        n, d = inp.shape
        self.x: Optional[np.ndarray] = None
        self.out = np.empty_like(out.data)
        self.grad: Optional[np.ndarray] = None
        if self.training:
            self.meanbuf = np.empty(d, dtype=in_dt)
            self.varbuf = np.empty(d, dtype=in_dt)
            self.scalebuf = np.empty(d, dtype=in_dt)
        else:
            self.meanbuf = self.varbuf = None
            # Eval mode derives the scale from the running variance (whose
            # dtype is pinned by the fingerprint, so preallocating is safe).
            self.scalebuf = np.empty(d, dtype=layer.running_var.dtype)
        self.negmean = np.empty(d, dtype=self.cast_dtype)
        diff_dt = np.promote_types(in_dt, self.cast_dtype)
        self.diff = np.empty((n, d), dtype=diff_dt)
        norm_dt = np.promote_types(diff_dt, self.cast_dtype)
        self.norm = np.empty((n, d), dtype=norm_dt)
        self.t2 = np.empty((n, d),
                           dtype=np.promote_types(norm_dt,
                                                  layer.gamma.data.dtype))
        self.scratch = np.empty_like(out.data)
        self.gmul = np.empty_like(out.data)
        self._scale: Optional[np.ndarray] = None
        self.gg = self.gb = self.gin = None
        self.gg_acc = self.gb_acc = self.gin_acc = False
        self.gg_tmp = self.gb_tmp = self.gin_tmp = None

    def forward(self) -> None:
        layer = self.layer
        x = self.x
        if self.training:
            np.mean(x, axis=0, out=self.meanbuf)
            np.var(x, axis=0, out=self.varbuf)
            m = layer.momentum
            layer.running_mean = ((1 - m) * layer.running_mean
                                  + m * self.meanbuf)
            layer.running_var = ((1 - m) * layer.running_var
                                 + m * self.varbuf)
            np.add(self.varbuf, layer.eps, out=self.scalebuf)
            np.sqrt(self.scalebuf, out=self.scalebuf)
            np.divide(1.0, self.scalebuf, out=self.scalebuf)
            mean, scale = self.meanbuf, self.scalebuf
        else:
            mean = layer.running_mean
            np.add(layer.running_var, layer.eps, out=self.scalebuf)
            np.sqrt(self.scalebuf, out=self.scalebuf)
            np.divide(1.0, self.scalebuf, out=self.scalebuf)
            scale = self.scalebuf
        # The eager forward routes mean/scale through Tensor(), which casts
        # to the engine dtype; a no-op when the dtypes already agree.
        if mean.dtype != self.cast_dtype:
            mean = mean.astype(self.cast_dtype)
        if scale.dtype != self.cast_dtype:
            scale = scale.astype(self.cast_dtype)
        self._scale = scale
        np.negative(mean, out=self.negmean)
        np.add(x, self.negmean, out=self.diff)
        np.multiply(self.diff, scale, out=self.norm)
        np.multiply(self.norm, layer.gamma.data, out=self.t2)
        np.add(self.t2, layer.beta.data, out=self.out)

    def backward(self) -> None:
        layer = self.layer
        grad = self.grad
        if self.gb is not None:
            if self.gb_acc:
                np.add.reduce(grad, axis=0, out=self.gb_tmp)
                self.gb += self.gb_tmp
            else:
                np.add.reduce(grad, axis=0, out=self.gb)
            layer.beta.grad = self.gb
        if self.gg is not None:
            np.multiply(grad, self.norm, out=self.scratch)
            if self.gg_acc:
                np.add.reduce(self.scratch, axis=0, out=self.gg_tmp)
                self.gg += self.gg_tmp
            else:
                np.add.reduce(self.scratch, axis=0, out=self.gg)
            layer.gamma.grad = self.gg
        if self.gin is not None:
            np.multiply(grad, layer.gamma.data, out=self.gmul)
            if self.gin_acc:
                np.multiply(self.gmul, self._scale, out=self.gmul)
                self.gin += self.gmul
            else:
                np.multiply(self.gmul, self._scale, out=self.gin)


class _AddStep:
    """Tensor ``a + b`` (loss fan-in, residual sums)."""

    __slots__ = ("index", "requires_grad", "a", "b", "out", "grad",
                 "a_shape", "b_shape", "ta", "ta_acc", "tb", "tb_acc",
                 "_srcs")

    def __init__(self, a: Tensor, b: Tensor, out: Tensor):
        self.a: Optional[np.ndarray] = None
        self.b: Optional[np.ndarray] = None
        self.a_shape = a.shape
        self.b_shape = b.shape
        self.out = np.empty_like(out.data)
        self.grad: Optional[np.ndarray] = None
        self.ta = self.tb = None
        self.ta_acc = self.tb_acc = False

    def forward(self) -> None:
        np.add(self.a, self.b, out=self.out)

    def backward(self) -> None:
        grad = self.grad
        if self.ta is not None:
            ga = grad if grad.shape == self.a_shape else \
                _unbroadcast(grad, self.a_shape)
            if self.ta_acc:
                self.ta += ga
            else:
                np.copyto(self.ta, ga)
        if self.tb is not None:
            gb = grad if grad.shape == self.b_shape else \
                _unbroadcast(grad, self.b_shape)
            if self.tb_acc:
                self.tb += gb
            else:
                np.copyto(self.tb, gb)


class _MulStep:
    """Tensor ``a * b`` (e.g. the weighted consistency-loss term)."""

    __slots__ = ("index", "requires_grad", "a", "b", "out", "grad",
                 "a_shape", "b_shape", "tmp_a", "tmp_b",
                 "ta", "ta_acc", "tb", "tb_acc",
                 "_srcs")

    def __init__(self, a: Tensor, b: Tensor, out: Tensor):
        self.a: Optional[np.ndarray] = None
        self.b: Optional[np.ndarray] = None
        self.a_shape = a.shape
        self.b_shape = b.shape
        self.out = np.empty_like(out.data)
        # Product staging buffers (``grad * other`` has the output's shape
        # and dtype; the operands' dtypes are already folded into it).
        self.tmp_a = np.empty_like(out.data)
        self.tmp_b = np.empty_like(out.data)
        self.grad: Optional[np.ndarray] = None
        self.ta = self.tb = None
        self.ta_acc = self.tb_acc = False

    def forward(self) -> None:
        np.multiply(self.a, self.b, out=self.out)

    def backward(self) -> None:
        grad = self.grad
        if self.ta is not None:
            np.multiply(grad, self.b, out=self.tmp_a)
            ga = (self.tmp_a if self.tmp_a.shape == self.a_shape
                  else _unbroadcast(self.tmp_a, self.a_shape))
            if self.ta_acc:
                self.ta += ga
            else:
                np.copyto(self.ta, ga)
        if self.tb is not None:
            np.multiply(grad, self.a, out=self.tmp_b)
            gb = (self.tmp_b if self.tmp_b.shape == self.b_shape
                  else _unbroadcast(self.tmp_b, self.b_shape))
            if self.tb_acc:
                self.tb += gb
            else:
                np.copyto(self.tb, gb)


# --------------------------------------------------------------------------- #
# Compiled loss kernels
# --------------------------------------------------------------------------- #


class _HardCELoss:
    """Fused softmax + hard cross entropy (matches ``softmax_cross_entropy``),
    with optional per-sample weights (FixMatch's confidence mask)."""

    __slots__ = ("index", "requires_grad", "z", "targets", "weights",
                 "weighted", "out", "grad", "need_value", "rows", "maxbuf",
                 "shifted", "exp", "sumexp", "logbuf", "d", "denom",
                 "num_classes", "dtype", "_t", "_w", "tz", "tz_acc",
                 "_src", "_src_rg")

    def __init__(self, logits: Tensor, weighted: bool):
        z = logits.data
        n, c = z.shape
        dtype = z.dtype
        self.z: Optional[np.ndarray] = None
        self.targets: Optional[np.ndarray] = None
        self.weights: Optional[np.ndarray] = None
        self.weighted = weighted
        self.out = np.empty((), dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.need_value = True
        self.rows = np.arange(n)
        self.maxbuf = np.empty((n, 1), dtype=dtype)
        self.shifted = np.empty((n, c), dtype=dtype)
        self.exp = np.empty((n, c), dtype=dtype)
        self.sumexp = np.empty((n, 1), dtype=dtype)
        self.logbuf = np.empty(n, dtype=dtype)
        self.d = np.empty((n, c), dtype=dtype)
        self.denom = float(n)
        self.num_classes = c
        self.dtype = dtype
        self._t = self._w = None
        self.tz = None
        self.tz_acc = False

    def forward(self) -> None:
        t = np.asarray(self.targets, dtype=np.int64)
        F.check_label_range(t, self.num_classes)
        self._t = t
        z = self.z
        np.maximum.reduce(z, axis=1, keepdims=True, out=self.maxbuf)
        np.subtract(z, self.maxbuf, out=self.shifted)
        np.exp(self.shifted, out=self.exp)
        np.add.reduce(self.exp, axis=1, keepdims=True, out=self.sumexp)
        if self.weighted:
            w = np.asarray(self.weights, dtype=self.dtype)
            self._w = w
            self.denom = float(w.sum()) or 1.0
        if not self.need_value:
            # The backward needs only exp/sumexp (and the weighted denom);
            # the scalar is elided when the caller does not consume it.
            return
        np.log(self.sumexp[:, 0], out=self.logbuf)
        picked = self.shifted[self.rows, self._t]
        picked -= self.logbuf
        if self.weighted:
            self.out[()] = -float(self._w @ picked) / self.denom
        else:
            self.out[()] = -float(picked.sum()) / self.denom

    def backward(self) -> None:
        if self.tz is None:
            return
        g = float(self.grad)
        d = self.d if self.tz_acc else self.tz
        np.divide(self.exp, self.sumexp, out=d)
        d[self.rows, self._t] -= 1.0
        if self.weighted:
            d *= self._w[:, None]
        d *= g / self.denom
        if self.tz_acc:
            self.tz += d


class _SoftCELoss:
    """Fused soft-target cross entropy (matches ``soft_cross_entropy``)."""

    __slots__ = ("index", "requires_grad", "z", "targets", "weights",
                 "weighted", "out", "grad", "need_value", "maxbuf", "shifted",
                 "exp", "sumexp", "logbuf", "prod", "tsum", "tbuf", "d",
                 "denom", "dtype", "_t", "tz", "tz_acc",
                 "_src", "_src_rg")

    def __init__(self, logits: Tensor, weighted: bool):
        z = logits.data
        n, c = z.shape
        dtype = z.dtype
        self.z: Optional[np.ndarray] = None
        self.targets: Optional[np.ndarray] = None
        self.weights: Optional[np.ndarray] = None
        self.weighted = weighted
        self.out = np.empty((), dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.need_value = True
        self.maxbuf = np.empty((n, 1), dtype=dtype)
        self.shifted = np.empty((n, c), dtype=dtype)
        self.exp = np.empty((n, c), dtype=dtype)
        self.sumexp = np.empty((n, 1), dtype=dtype)
        self.logbuf = np.empty((n, 1), dtype=dtype)
        self.prod = np.empty((n, c), dtype=dtype)
        self.tsum = np.empty((n, 1), dtype=dtype)
        self.tbuf = np.empty((n, c), dtype=dtype) if weighted else None
        self.d = np.empty((n, c), dtype=dtype)
        self.denom = float(n)
        self.dtype = dtype
        self._t = None
        self.tz = None
        self.tz_acc = False

    def forward(self) -> None:
        t = np.asarray(self.targets, dtype=self.dtype)
        z = self.z
        np.maximum.reduce(z, axis=1, keepdims=True, out=self.maxbuf)
        np.subtract(z, self.maxbuf, out=self.shifted)
        np.exp(self.shifted, out=self.exp)
        np.add.reduce(self.exp, axis=1, keepdims=True, out=self.sumexp)
        if self.weighted:
            w = np.asarray(self.weights, dtype=self.dtype)
            np.multiply(t, w[:, None], out=self.tbuf)
            t = self.tbuf
            self.denom = float(w.sum()) or 1.0
        self._t = t
        if not self.need_value:
            return
        np.log(self.sumexp, out=self.logbuf)
        # log_probs = shifted - log(sumexp); loss = -sum(t * log_probs)/denom
        np.subtract(self.shifted, self.logbuf, out=self.prod)
        np.multiply(self.prod, t, out=self.prod)
        self.out[()] = -float(self.prod.sum()) / self.denom

    def backward(self) -> None:
        if self.tz is None:
            return
        g = float(self.grad)
        d = self.d if self.tz_acc else self.tz
        np.divide(self.exp, self.sumexp, out=d)
        np.add.reduce(self._t, axis=1, keepdims=True, out=self.tsum)
        d *= self.tsum
        d -= self._t
        d *= g / self.denom
        if self.tz_acc:
            self.tz += d


class _SqErrLoss:
    """Fused squared-error loss (matches ``l2_loss`` / ``mse_loss``; the
    recorded denominator distinguishes the two)."""

    __slots__ = ("index", "requires_grad", "z", "targets", "out", "grad",
                 "need_value", "diff", "sq", "d", "denom", "tz", "tz_acc",
                 "_src", "_src_rg")

    def __init__(self, predictions: Tensor, denom: float):
        p = predictions.data
        self.z: Optional[np.ndarray] = None
        self.targets: Optional[np.ndarray] = None
        self.out = np.empty((), dtype=p.dtype)
        self.grad: Optional[np.ndarray] = None
        self.need_value = True
        self.diff = np.empty_like(p)
        self.sq = np.empty_like(p)
        self.d = np.empty_like(p)
        self.denom = denom
        self.tz = None
        self.tz_acc = False

    def forward(self) -> None:
        np.subtract(self.z, self.targets, out=self.diff)
        if not self.need_value:
            return
        np.multiply(self.diff, self.diff, out=self.sq)
        self.out[()] = float(self.sq.sum()) / self.denom

    def backward(self) -> None:
        if self.tz is None:
            return
        g = float(self.grad)
        d = self.d if self.tz_acc else self.tz
        np.multiply(self.diff, 2.0 * g / self.denom, out=d)
        if self.tz_acc:
            self.tz += d


_MODULE_KERNELS = {
    Linear: _LinearStep,
    ReLU: _ReLUStep,
    Tanh: _TanhStep,
    Dropout: _DropoutStep,
    BatchNorm1d: _BatchNormStep,
}

_LOSS_NODES = (_HardCELoss, _SoftCELoss, _SqErrLoss)


# --------------------------------------------------------------------------- #
# Structural fingerprint (the per-step signature guard)
# --------------------------------------------------------------------------- #


def _model_fingerprint(module: Module, out: Optional[list] = None) -> tuple:
    """A cheap structural identity of the model, rebuilt on every step.

    Captures everything a compiled plan depends on: the identity and type of
    every submodule in attribute order, parameter shapes/dtypes and
    ``requires_grad`` flags for ``Linear`` layers, mode/probability for
    ``Dropout``, and for ``BatchNorm1d`` the feature count, momentum, eps,
    train/eval mode, parameter identities/dtypes, and the running-stat
    dtypes (a config or dtype change must force a recapture, never a replay
    of stale kernels).  Any mutation — adding a layer, replacing a head,
    freezing a parameter, flipping a layer's mode — changes the fingerprint.
    """
    if out is not None:  # pragma: no cover - legacy recursive signature
        raise TypeError("_model_fingerprint walks iteratively; pass the root")
    out = []
    # Iterative depth-first walk in attribute order (per-step hot path: a
    # Python-level recursion here costs ~1 us per submodule per step).
    stack = [module]
    while stack:
        m = stack.pop()
        t = type(m)
        if t is Linear:
            w = m.weight
            b = m.bias
            out.append((id(m), t, id(w), w.data.shape, w.data.dtype,
                        w.requires_grad,
                        None if b is None else (id(b), b.data.shape,
                                                b.data.dtype,
                                                b.requires_grad)))
        elif t is Dropout:
            out.append((id(m), t, m.p, m.training))
        elif t is BatchNorm1d:
            g, b = m.gamma, m.beta
            out.append((id(m), t, m.num_features, m.momentum,
                        m.eps, m.training,
                        (id(g), g.data.dtype, g.requires_grad),
                        (id(b), b.data.dtype, b.requires_grad),
                        m.running_mean.dtype, m.running_var.dtype))
        else:
            out.append((id(m), t))
        children = []
        for value in m.__dict__.values():
            if isinstance(value, Module):
                children.append(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        children.append(item)
        if children:
            stack.extend(reversed(children))
    return tuple(out)


# --------------------------------------------------------------------------- #
# The DAG compiler
# --------------------------------------------------------------------------- #


class _CompiledPlan:
    """A compiled kernel DAG: forward in trace order, backward reversed."""

    __slots__ = ("_forwards", "_backwards", "_input_sites", "_clear_grads",
                 "root", "optimizer", "root_is_loss", "pins")

    def __init__(self, forwards, backwards, input_sites, clear_grads, root,
                 optimizer, root_is_loss):
        self._forwards = forwards
        self._backwards = backwards
        self._input_sites = input_sites
        self._clear_grads = clear_grads
        self.root = root
        self.optimizer = optimizer
        self.root_is_loss = root_is_loss
        self.pins = None

    def _bind(self, inputs: Dict[str, np.ndarray]) -> None:
        for node, attr, key, cast_dtype in self._input_sites:
            arr = inputs[key]
            if cast_dtype is not None and arr.dtype != cast_dtype:
                # The eager path casts through ``Tensor(x)``; match it.
                arr = arr.astype(cast_dtype)
            setattr(node, attr, arr)

    def run(self, inputs: Dict[str, np.ndarray],
            need_value: bool = True) -> Optional[float]:
        self._bind(inputs)
        root = self.root
        if self.root_is_loss:
            root.need_value = need_value
        for forward in self._forwards:
            forward()
        value = float(root.out) if need_value else None
        for backward in self._backwards:
            backward()
        # Optimizer parameters this plan computes no gradient for must not
        # advance: eager's zero_grad() leaves them at None, so clear any
        # binding left over from an earlier step with different coverage.
        for param in self._clear_grads:
            param.grad = None
        self.optimizer.step()
        return value

    def run_eval(self, inputs: Dict[str, np.ndarray]) -> float:
        """Forward + loss value only (the compiled inference pass)."""
        self._bind(inputs)
        if self.root_is_loss:
            self.root.need_value = True
        for forward in self._forwards:
            forward()
        return float(self.root.out)

    def run_forward(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        """Forward only; returns the root output buffer (valid until the
        next call on this plan)."""
        self._bind(inputs)
        for forward in self._forwards:
            forward()
        return self.root.out


def _compile(records: List[tuple], root: Tensor,
             input_keys: Dict[int, str], optimizer: Optional[Optimizer],
             train: bool) -> _CompiledPlan:
    """Build a replay plan from one traced eager step, or raise
    :class:`ReplayUnsupported`."""
    # ---- producer map: which record made each tensor ------------------- #
    prod: Dict[int, Tuple[int, tuple]] = {}
    for idx, rec in enumerate(records):
        kind = rec[0]
        if kind == "module":
            module, inp, out = rec[1], rec[2], rec[3]
            # Identity / eval-mode dropout return their input: claim nothing
            # (the tensor resolves through its true producer).  Container
            # modules are skipped; their leaves claim the outputs.
            if type(module) in _MODULE_KERNELS and out is not inp:
                prod[id(out)] = (idx, rec)
        else:
            prod[id(rec[-1])] = (idx, rec)

    nodes: Dict[int, object] = {}
    built: List[object] = []
    input_sites: List[tuple] = []

    def wire(node, attr: str, src) -> None:
        if isinstance(src, _InputNode):
            input_sites.append((node, attr, src.key, src.cast_dtype))
        else:
            setattr(node, attr, src.out)

    def key_for(obj, what: str) -> str:
        oid = id(obj)
        key = input_keys.get(oid)
        if key is None:
            if oid in input_keys:
                raise ReplayUnsupported(
                    f"{what} aliases an array bound to multiple step inputs")
            raise ReplayUnsupported(f"{what} is not a step input")
        return key

    def resolve(t):
        if not isinstance(t, Tensor):
            raise ReplayUnsupported("non-tensor operand in the traced graph")
        tid = id(t)
        node = nodes.get(tid)
        if node is not None:
            return node
        key = input_keys.get(tid)
        if key is not None:
            node = _InputNode(key, t.data.dtype)
            nodes[tid] = node
            return node
        if tid in input_keys:  # registered but aliased (None entry)
            raise ReplayUnsupported(
                "the same array is bound to multiple step inputs")
        entry = prod.get(tid)
        if entry is None:
            raise ReplayUnsupported(
                "tensor produced outside the replayable op set "
                "(custom tensor math or a constant created in the step?)")
        idx, rec = entry
        kind = rec[0]
        if kind == "module":
            module, inp, out = rec[1], rec[2], rec[3]
            src = resolve(inp)
            node = _MODULE_KERNELS[type(module)](module, inp, out)
            wire(node, "x", src)
            node._src = src  # noqa: SLF001 - compiler-internal link
            node._src_rg = inp.requires_grad
        elif kind in ("add", "mul"):
            a, b, out = rec[1], rec[2], rec[3]
            na, nb = resolve(a), resolve(b)
            node = (_AddStep if kind == "add" else _MulStep)(a, b, out)
            wire(node, "a", na)
            wire(node, "b", nb)
            node._srcs = ((na, a.requires_grad), (nb, b.requires_grad))
        else:  # loss
            _, loss_kind, logits, targets, extra, out = rec
            src = resolve(logits)
            if logits.ndim != 2:
                raise ReplayUnsupported("losses replay on 2-D logits only")
            tkey = key_for(targets, "loss targets")
            if loss_kind == "sqerr":
                node = _SqErrLoss(logits, float(extra))
                input_sites.append((node, "targets", tkey,
                                    np.asarray(targets).dtype))
            else:
                weighted = extra is not None
                cls = (_HardCELoss if loss_kind == "cross_entropy"
                       else _SoftCELoss)
                node = cls(logits, weighted)
                input_sites.append((node, "targets", tkey, None))
                if weighted:
                    wkey = key_for(extra, "loss sample weights")
                    input_sites.append((node, "weights", wkey, None))
            wire(node, "z", src)
            node._src = src
            node._src_rg = logits.requires_grad
        node.index = idx
        node.requires_grad = bool(rec[-1].requires_grad) and train
        nodes[tid] = node
        built.append(node)
        return node

    root_node = resolve(root)
    if isinstance(root_node, _InputNode) or not built:
        raise ReplayUnsupported("traced graph contains no replayable ops")
    if train and not root_node.requires_grad:
        raise ReplayUnsupported("loss does not require gradients")

    # Every traced leaf-module call must be reachable from the root: a call
    # the plan would skip could have side effects (dropout RNG draws,
    # batch-norm running stats) that eager execution performs.
    for idx, rec in enumerate(records):
        if rec[0] == "module" and type(rec[1]) in _MODULE_KERNELS \
                and rec[3] is not rec[2] and id(rec[3]) not in nodes:
            raise ReplayUnsupported(
                f"traced {type(rec[1]).__name__} call is not reachable "
                "from the loss")

    built.sort(key=lambda n: n.index)
    forwards = [node.forward for node in built]

    backwards: List[Callable] = []
    if train:
        # Gradient buffers: one per node that participates in the backward.
        for node in built:
            if node.requires_grad:
                node.grad = (np.ones_like(node.out) if node is root_node
                             else np.empty_like(node.out))
        # Deposit wiring in backward-execution order: the first contribution
        # to each target writes it, later ones accumulate — exactly the
        # eager engine's copy-then-add ordering.
        written = set()
        param_targets: Dict[int, np.ndarray] = {}

        def assign(node, prefix: str, src, src_rg: bool,
                   needs_tmp: bool = False) -> None:
            # ``needs_tmp`` marks kernels whose accumulate path stages into
            # a private ``*_tmp`` buffer; the others (losses, add/mul,
            # batch-norm input grads) reuse their own scratch buffers.
            if isinstance(src, _InputNode) or not src_rg:
                return  # slot stays None
            target = src.grad
            acc = id(target) in written
            written.add(id(target))
            setattr(node, prefix, target)
            setattr(node, prefix + "_acc", acc)
            if acc and needs_tmp:
                setattr(node, prefix + "_tmp", np.empty_like(target))

        def assign_param(node, prefix: str, param) -> None:
            if param is None or not param.requires_grad:
                return
            pid = id(param)
            acc = pid in param_targets
            if not acc:
                target = (optimizer.grad_view_for(param)
                          if optimizer is not None else None)
                if target is None:
                    target = np.empty_like(param.data)
                param_targets[pid] = target
            setattr(node, prefix, param_targets[pid])
            setattr(node, prefix + "_acc", acc)
            if acc:
                setattr(node, prefix + "_tmp", np.empty_like(param.data))

        for node in reversed(built):
            if not node.requires_grad:
                continue
            if isinstance(node, _LinearStep):
                assign_param(node, "gw", node.layer.weight)
                assign_param(node, "gb", node.layer.bias)
                assign(node, "gin", node._src, node._src_rg, needs_tmp=True)
            elif isinstance(node, _BatchNormStep):
                assign_param(node, "gb", node.layer.beta)
                assign_param(node, "gg", node.layer.gamma)
                assign(node, "gin", node._src, node._src_rg)
            elif isinstance(node, (_ReLUStep, _TanhStep, _DropoutStep)):
                assign(node, "gin", node._src, node._src_rg, needs_tmp=True)
            elif isinstance(node, (_AddStep, _MulStep)):
                (na, a_rg), (nb, b_rg) = node._srcs
                assign(node, "ta", na, a_rg)
                assign(node, "tb", nb, b_rg)
            else:  # loss node
                assign(node, "tz", node._src, node._src_rg)
            backwards.append(node.backward)

    clear_grads: tuple = ()
    if train and optimizer is not None:
        clear_grads = tuple(p for p in optimizer.parameters
                            if id(p) not in param_targets)

    return _CompiledPlan(forwards, backwards, input_sites, clear_grads,
                         root_node, optimizer,
                         isinstance(root_node, _LOSS_NODES))


# --------------------------------------------------------------------------- #
# Public executor
# --------------------------------------------------------------------------- #


class _UnsupportedPlan:
    """Negative cache entry: this signature cannot be compiled.

    Pins the traced modules (and the step function) so their ids — which
    participate in the signature — cannot be recycled for different objects
    while the entry lives.  Carries the reason so every later eager step
    under this signature is tallied against it.
    """

    __slots__ = ("pins", "reason")

    def __init__(self, pins, reason: str):
        self.pins = pins
        self.reason = reason


def _wrap_inputs(inputs: Dict[str, np.ndarray], tensor_keys=()):
    """Wrap float inputs as Tensors (the eager ``Tensor(x)`` cast) and pass
    integer/bool arrays through raw; return the bound dict plus the id→key
    map the compiler uses to resolve graph inputs.

    Both the Tensor and its ``.data`` array are keyed, so a step function
    may hand ``batch["w"].data`` to a loss as targets/sample-weights and
    still resolve.  Keys in ``tensor_keys`` are wrapped regardless of dtype
    — the chain APIs (``step``/``eval_loss``/``forward``) use this for the
    model input so an integer feature array gets the exact ``Tensor(x)``
    cast the eager step applies.
    """
    bound: Dict[str, object] = {}
    ids: Dict[int, Optional[str]] = {}

    def register(obj, key):
        # The same array bound under two keys is ambiguous: the compiler
        # could not tell which key a traced use belongs to, and a later
        # replay may rebind the keys to different arrays.  A None entry
        # marks the id as aliased; resolution then rejects the capture
        # (eager fallback, which handles aliasing naturally).
        ids[id(obj)] = None if id(obj) in ids else key

    for key, arr in inputs.items():
        if arr.dtype.kind == "f" or key in tensor_keys:
            t = Tensor(arr)
            bound[key] = t
            register(t, key)
            register(t.data, key)
        else:
            bound[key] = arr
            register(arr, key)
    return bound, ids


#: plans cached per executor; beyond this many distinct signatures the
#: executor stops compiling and runs eager (a shape-churning workload would
#: otherwise accumulate buffers without ever amortizing a capture)
_MAX_PLANS = 16

#: run_epoch marker value: this shape signature fell back this epoch
_R_DISABLED = "replay_disabled"


class GraphReplay:
    """Capture/replay stepper for one ``(model, loss, optimizer)`` loop.

    ``step(x, y)`` performs one full training step — forward, loss, backward,
    optimizer update — and returns the loss as a float; ``step_fn(fn, inputs)``
    does the same for an arbitrary traced step function (e.g. FixMatch's
    two-view consistency step).  The first step for each signature runs
    eagerly (tracing the graph); subsequent steps replay compiled NumPy
    kernels.  Every fallback rule in the module docstring is re-checked per
    step, so the executor is always safe to leave on.

    The learning-rate schedule lives outside: callers keep invoking
    ``scheduler.step()`` before each ``step`` exactly as in the eager loop
    (the replayed update reads ``optimizer.lr`` live).

    ``stats`` may be a shared :class:`ReplayStats` (e.g.
    ``TrainConfig.replay_stats``); ambient sinks registered through
    :func:`collect_replay_stats` at construction time are updated too.
    """

    def __init__(self, model: Module, optimizer: Optimizer,
                 loss: str = "cross_entropy",
                 enabled: Optional[bool] = None,
                 stats: Optional[ReplayStats] = None):
        if loss not in _LOSS_FNS:
            raise ValueError(f"unknown replay loss {loss!r}; "
                             f"known: {sorted(_LOSS_FNS)}")
        self.model = model
        self.optimizer = optimizer
        self.loss_kind = loss
        self._loss_fn = _LOSS_FNS[loss]
        self._enabled = enabled
        self._plans: Dict[tuple, object] = {}
        self._last_sig: Optional[tuple] = None
        self._last_plan: Optional[_CompiledPlan] = None
        #: outcome of the most recent ``step()``: the plan it used, or the
        #: eager-fallback reason string (consumed by ``run_epoch`` so the
        #: fused-epoch fast path never recomputes the fingerprint)
        self._last_outcome: object = _R_DISABLED
        own = stats if stats is not None else ReplayStats()
        # Dedupe by identity: the same counter may arrive both explicitly
        # (TrainConfig.replay_stats) and ambiently (collect_replay_stats);
        # it must tick once per event, not once per registration.
        sinks = [own]
        for sink in _AMBIENT_SINKS:
            if all(sink is not existing for existing in sinks):
                sinks.append(sink)
        self._sinks = tuple(sinks)
        self.stats = own

        loss_fn = self._loss_fn

        def _chain(model, batch):
            y = batch["y"]
            return loss_fn(model(batch["x"]),
                           y.data if isinstance(y, Tensor) else y)

        def _fwd(model, batch):
            return model(batch["x"])

        self._chain_fn = _chain
        self._fwd_fn = _fwd

    # -- stats ----------------------------------------------------------- #
    def _count_capture(self) -> None:
        for sink in self._sinks:
            sink.add_capture()

    def _count_replay(self) -> None:
        for sink in self._sinks:
            sink.add_replay()

    def _count_eager(self, reason: str) -> None:
        for sink in self._sinks:
            sink.add_eager(reason)

    # -- mode ------------------------------------------------------------ #
    def _replay_on(self, need_grad: bool = True) -> bool:
        enabled = (self._enabled if self._enabled is not None
                   else graph_replay_enabled())
        if not (enabled and fused_ops_enabled()):
            return False
        return is_grad_enabled() if need_grad else True

    # -- eager reference paths ------------------------------------------- #
    def _eager_step(self, x, y, reason: str) -> float:
        self._count_eager(reason)
        logits = self.model(Tensor(x))
        loss = self._loss_fn(logits, y)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return loss.item()

    def _eager_fn(self, fn, inputs: Dict[str, np.ndarray],
                  reason: str, tensor_keys=()) -> float:
        self._count_eager(reason)
        bound, _ = _wrap_inputs(inputs, tensor_keys)
        root = fn(self.model, bound)
        self.optimizer.zero_grad()
        root.backward()
        self.optimizer.step()
        return root.item()

    # -- capture --------------------------------------------------------- #
    def _capture_train(self, fn, inputs: Dict[str, np.ndarray],
                       tensor_keys=()):
        """Run one eager step with the op tracer on and compile it.

        The step always completes eagerly — including when compilation
        fails — so the capture step is indistinguishable from a plain eager
        step (same updates, same RNG draws, and ``zero_grad`` clears any
        stale gradient state before buffer-bound gradients take over).
        Returns ``(plan_or_None, pins, loss, reason_or_None)``.
        """
        bound, ids = _wrap_inputs(inputs, tensor_keys)
        records: List[tuple] = []
        with trace_module_calls(records):
            root = fn(self.model, bound)
        if not isinstance(root, Tensor):
            raise TypeError("step function must return a loss Tensor")
        reason = None
        plan = None
        try:
            if root.shape != ():
                raise ReplayUnsupported("step function must return a "
                                        "scalar loss")
            plan = _compile(records, root, ids, self.optimizer, train=True)
        except ReplayUnsupported as exc:
            reason = f"unsupported: {exc}"
        self.optimizer.zero_grad()
        root.backward()
        self.optimizer.step()
        pins = ([rec[1] for rec in records if rec[0] == "module"], fn)
        if plan is not None:
            plan.pins = pins
        return plan, pins, root.item(), reason

    def _capture_no_grad(self, fn, inputs: Dict[str, np.ndarray],
                         tensor_keys=()):
        """Eager inference pass (tape-free) with the tracer on.

        Returns ``(plan_or_None, pins, root_tensor, reason_or_None)``.
        """
        with inference_mode():
            bound, ids = _wrap_inputs(inputs, tensor_keys)
            records: List[tuple] = []
            with trace_module_calls(records):
                root = fn(self.model, bound)
            reason = None
            plan = None
            try:
                plan = _compile(records, root, ids, None, train=False)
            except ReplayUnsupported as exc:
                reason = f"unsupported: {exc}"
            pins = ([rec[1] for rec in records if rec[0] == "module"], fn)
            if plan is not None:
                plan.pins = pins
            return plan, pins, root, reason

    # -- plan-cache dance ------------------------------------------------ #
    def _fingerprint_sig(self) -> tuple:
        return (np.dtype(get_default_dtype()),
                tuple(id(p) for p in self.optimizer.parameters),
                _model_fingerprint(self.model))

    def _resolve(self, sig: tuple):
        """Look up a cached plan for ``sig``: returns the plan, an
        ``_UnsupportedPlan``, or None (uncached)."""
        if sig == self._last_sig:
            return self._last_plan
        plan = self._plans.get(sig)
        if plan is not None and not isinstance(plan, _UnsupportedPlan):
            self._last_sig, self._last_plan = sig, plan
        return plan

    def _resolve_or_capture(self, sig: tuple, fn,
                            inputs: Dict[str, np.ndarray], train: bool,
                            tensor_keys=()):
        """Resolve ``sig`` to a compiled plan, capturing on a cache miss.

        The one plan-cache protocol shared by every entry point.  Returns
        ``(plan, reason, result)``:

        * ``(plan, None, result)`` — fresh capture: the step already ran
          eagerly and ``result`` is its outcome (the loss float for train
          captures, the root Tensor for no-grad captures);
        * ``(plan, None, None)`` — cache hit: the caller replays the plan;
        * ``(None, reason, result)`` — capture failed: the step still ran
          eagerly (``result`` as above) and the signature is now
          negative-cached under ``reason``;
        * ``(None, reason, None)`` — the caller must run its eager path
          (plan cache full, or the signature is negative-cached).
        """
        plan = self._resolve(sig)
        if plan is not None:
            if isinstance(plan, _UnsupportedPlan):
                return None, plan.reason, None
            return plan, None, None
        if len(self._plans) >= _MAX_PLANS:
            return None, "plan_cache_full", None
        capture = self._capture_train if train else self._capture_no_grad
        plan, pins, result, reason = capture(fn, inputs, tensor_keys)
        if plan is None:
            self._plans[sig] = _UnsupportedPlan(pins, reason)
            self._count_eager(reason)
            return None, reason, result
        self._plans[sig] = plan
        self._last_sig, self._last_plan = sig, plan
        self._count_capture()
        return plan, None, result

    # -- the step -------------------------------------------------------- #
    def step(self, x: np.ndarray, y: np.ndarray,
             compute_loss: bool = True) -> Optional[float]:
        """One training step (forward, loss, backward, optimizer update).

        With ``compute_loss=False`` a replayed step elides materializing the
        loss scalar (the gradient does not depend on it) and returns None —
        used by loops that discard the training loss, like the ZSL-KG
        pretrain.  Eager/capture steps still compute and return it.
        """
        x = np.asarray(x)
        y = np.asarray(y)
        if not self._replay_on():
            self._last_outcome = _R_DISABLED
            return self._eager_step(x, y, _R_DISABLED)
        return self._step_guarded(x, y, compute_loss, self._fingerprint_sig())

    def _step_guarded(self, x: np.ndarray, y: np.ndarray, compute_loss: bool,
                      fingerprint: tuple) -> Optional[float]:
        """The guarded step given a precomputed structural fingerprint
        (``run_epoch`` computes it once per epoch)."""
        sig = ("train", x.shape, x.dtype, y.shape, y.dtype) + fingerprint
        inputs = {"x": x, "y": y}
        plan, reason, result = self._resolve_or_capture(
            sig, self._chain_fn, inputs, train=True, tensor_keys=("x",))
        self._last_outcome = plan if plan is not None else reason
        if result is not None:
            return result
        if plan is None:
            return self._eager_step(x, y, reason)
        self._count_replay()
        return plan.run(inputs, compute_loss)

    # -- arbitrary step functions ---------------------------------------- #
    def step_fn(self, fn, inputs: Dict[str, np.ndarray],
                compute_loss: bool = True) -> Optional[float]:
        """One training step driven by ``fn(model, batch) -> scalar loss``.

        ``inputs`` maps names to arrays; float arrays are handed to ``fn``
        wrapped as Tensors (exactly the ``Tensor(x)`` cast of an eager
        loop), integer/bool arrays raw.  ``fn`` must be a pure function of
        the model and those inputs — every loss target / sample-weight must
        come from ``inputs`` (pass ``batch["w"].data`` for float targets),
        and any constant folded into the graph (a Python scalar, an array
        created inside ``fn``) makes the step uncompilable and falls back
        to eager.  Keep ``fn`` a single long-lived function: the plan cache
        is keyed on its identity.
        """
        inputs = {k: np.asarray(v) for k, v in inputs.items()}
        if not self._replay_on():
            self._last_outcome = _R_DISABLED
            return self._eager_fn(fn, inputs, _R_DISABLED)
        # Keys are unique, so the sort never compares the shape/dtype parts.
        sig = ("fn", id(fn),
               tuple(sorted([(k, v.shape, v.dtype)
                             for k, v in inputs.items()]))) \
            + self._fingerprint_sig()
        plan, reason, result = self._resolve_or_capture(sig, fn, inputs,
                                                        train=True)
        self._last_outcome = plan if plan is not None else reason
        if result is not None:
            return result
        if plan is None:
            return self._eager_fn(fn, inputs, reason)
        self._count_replay()
        return plan.run(inputs, compute_loss)

    # -- the fused epoch -------------------------------------------------- #
    def run_epoch(self, batches: Iterable, scheduler=None, augment=None,
                  rng=None, compute_loss: bool = True) -> List[Optional[float]]:
        """Run a whole epoch of ``(x, y)`` batches through the executor.

        The structural fingerprint is computed once per epoch: the first
        batch of each distinct (shape, dtype) signature goes through the
        full guard with that shared fingerprint, and later batches with the
        same shapes replay directly with no guard at all — the model cannot
        be mutated from inside this loop, so checking it once per epoch is
        sound.  ``augment`` and ``scheduler`` run inside the loop in the
        same order as the eager epoch (augment → scheduler.step() →
        training step).  Engine-flag changes take effect at epoch
        boundaries on this path.
        """
        losses: List[Optional[float]] = []
        validated: Dict[tuple, object] = {}
        fingerprint: Optional[tuple] = None
        for batch_x, batch_y in batches:
            if augment is not None:
                batch_x = augment(batch_x, rng)
            if scheduler is not None:
                scheduler.step()
            x = np.asarray(batch_x)
            y = np.asarray(batch_y)
            key = (x.shape, x.dtype, y.shape, y.dtype)
            plan = validated.get(key)
            if plan is None:
                if not self._replay_on():
                    self._last_outcome = _R_DISABLED
                    losses.append(self._eager_step(x, y, _R_DISABLED))
                else:
                    if fingerprint is None:
                        fingerprint = self._fingerprint_sig()
                    losses.append(self._step_guarded(x, y, compute_loss,
                                                     fingerprint))
                # Cache what the step resolved to for the rest of the epoch:
                # the compiled plan, or the eager-fallback reason.
                validated[key] = self._last_outcome
            elif isinstance(plan, str):
                losses.append(self._eager_step(x, y, plan))
            else:
                self._count_replay()
                losses.append(plan.run({"x": x, "y": y}, compute_loss))
        return losses

    # -- compiled inference ----------------------------------------------- #
    def _eager_eval(self, x, y, reason: str) -> float:
        self._count_eager(reason)
        with inference_mode():
            return self._loss_fn(self.model(Tensor(x)), y).item()

    def eval_loss(self, x: np.ndarray, y: np.ndarray) -> float:
        """Loss of the model on ``(x, y)`` via a compiled inference pass.

        The tape-free equivalent of ``loss_fn(model(Tensor(x)), y).item()``
        under :func:`~repro.nn.tensor.inference_mode`, replayed through
        forward-only kernels.  Same signature guards and eager fallback as
        :meth:`step`; separate plans, so train/eval batch shapes coexist.
        """
        x = np.asarray(x)
        y = np.asarray(y)
        if not self._replay_on(need_grad=False):
            return self._eager_eval(x, y, _R_DISABLED)
        sig = ("eval", x.shape, x.dtype, y.shape, y.dtype) \
            + self._fingerprint_sig()
        inputs = {"x": x, "y": y}
        plan, reason, result = self._resolve_or_capture(
            sig, self._chain_fn, inputs, train=False, tensor_keys=("x",))
        if result is not None:
            return result.item()
        if plan is None:
            return self._eager_eval(x, y, reason)
        self._count_replay()
        return plan.run_eval(inputs)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Raw model outputs on ``x`` via a compiled inference forward.

        The tape-free equivalent of ``model(Tensor(x)).data`` under
        :func:`~repro.nn.tensor.inference_mode` (FixMatch's pseudo-label
        view).  Returns the plan's output buffer: consume it before the
        next call on this stepper.
        """
        x = np.asarray(x)
        if not self._replay_on(need_grad=False):
            self._count_eager(_R_DISABLED)
            with inference_mode():
                return self.model(Tensor(x)).data
        sig = ("fwd", x.shape, x.dtype) + self._fingerprint_sig()
        inputs = {"x": x}
        plan, reason, result = self._resolve_or_capture(
            sig, self._fwd_fn, inputs, train=False, tensor_keys=("x",))
        if result is not None:
            return result.data
        if plan is None:
            self._count_eager(reason)
            with inference_mode():
                return self.model(Tensor(x)).data
        self._count_replay()
        return plan.run_forward(inputs)


def compile_step(model: Module, optimizer: Optimizer,
                 loss: str = "cross_entropy",
                 enabled: Optional[bool] = None) -> GraphReplay:
    """Build a :class:`GraphReplay` stepper for a static training loop."""
    return GraphReplay(model, optimizer, loss=loss, enabled=enabled)
