"""Saving and loading model weights as ``.npz`` archives.

TAGLETS caches pretrained backbones and the distilled end model; this module
provides the on-disk format for those checkpoints, plus the integrity layer
the serving artifacts (:mod:`repro.serve.artifact`) build on: a *manifest*
describing every entry's shape and dtype, a content digest, and strict
validation that names the offending parameter instead of failing later with
an opaque shape error mid-forward.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, List, Optional

import numpy as np

from .modules import Module

__all__ = [
    "save_state_dict",
    "load_state_dict",
    "save_module",
    "load_into_module",
    "state_dict_manifest",
    "state_dict_digest",
    "validate_state_dict",
    "StateDictMismatchError",
]

_KEY_SEPARATOR = "::"  # npz keys cannot contain '/' portably across dict round-trips

#: dtypes that may be cast into each other on load (the float32 fast mode
#: loads float64 checkpoints and vice versa); every other cast is an error.
_CASTABLE_FLOATS = (np.dtype(np.float32), np.dtype(np.float64))


class StateDictMismatchError(ValueError):
    """A checkpoint does not fit the module it is being loaded into.

    Raised by :func:`validate_state_dict` (and therefore by
    :func:`load_into_module`) with a message naming every missing key,
    unexpected key, shape mismatch, and dtype mismatch at once, so a wrong
    archive fails loudly at load time rather than at the first forward.
    """


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a state dict to ``path`` (parent directories are created)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    safe = {name.replace(".", _KEY_SEPARATOR): value for name, value in state.items()}
    np.savez(path, **safe)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        return {name.replace(_KEY_SEPARATOR, "."): archive[name]
                for name in archive.files}


def save_module(module: Module, path: str) -> None:
    """Persist a module's parameters and buffers."""
    save_state_dict(module.state_dict(), path)


def state_dict_manifest(state: Dict[str, np.ndarray]) -> Dict[str, Dict[str, object]]:
    """Describe every entry of a state dict (shape and dtype).

    The description is JSON-serializable; serving artifacts embed it in
    their ``manifest.json`` so a servable can be inspected — and validated —
    without opening the weight archive.
    """
    return {name: {"shape": list(np.asarray(value).shape),
                   "dtype": str(np.asarray(value).dtype)}
            for name, value in state.items()}


def state_dict_digest(state: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the keys, shapes, dtypes and raw bytes of a state dict.

    Key order does not matter; the digest changes if any array's contents,
    shape, or dtype changes.  Used as the integrity check of exported
    serving artifacts.
    """
    digest = hashlib.sha256()
    for name in sorted(state):
        value = np.ascontiguousarray(state[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def _dtype_compatible(target: np.dtype, source: np.dtype) -> bool:
    if target == source:
        return True
    # float32 <-> float64 casts are the documented fast-mode path.
    return target in _CASTABLE_FLOATS and source in _CASTABLE_FLOATS


def validate_state_dict(module: Module, state: Dict[str, np.ndarray],
                        source: Optional[str] = None) -> None:
    """Check ``state`` against ``module`` before loading it.

    Collects *every* problem — missing keys, unexpected keys, shape
    mismatches, and incompatible dtypes — into one
    :class:`StateDictMismatchError` naming each offending parameter, instead
    of surfacing only the first problem (or, worse, deferring to a shape
    error deep inside a later forward pass).
    """
    own = module.state_dict()
    problems: List[str] = []
    for name in sorted(set(own) - set(state)):
        problems.append(f"missing key {name!r} "
                        f"(module expects shape {tuple(own[name].shape)})")
    for name in sorted(set(state) - set(own)):
        problems.append(f"unexpected key {name!r} "
                        f"(archive shape {tuple(np.asarray(state[name]).shape)})")
    for name in sorted(set(own) & set(state)):
        value = np.asarray(state[name])
        if own[name].shape != value.shape:
            problems.append(f"shape mismatch for {name!r}: module has "
                            f"{tuple(own[name].shape)}, archive has "
                            f"{tuple(value.shape)}")
        elif not _dtype_compatible(own[name].dtype, value.dtype):
            problems.append(f"dtype mismatch for {name!r}: module has "
                            f"{own[name].dtype}, archive has {value.dtype} "
                            "(only float32<->float64 casts are allowed)")
    if problems:
        origin = f" from {source}" if source else ""
        summary = "; ".join(problems)
        raise StateDictMismatchError(
            f"state dict{origin} does not match "
            f"{type(module).__name__}: {summary}")


def load_into_module(module: Module, path: str, strict: bool = True) -> Module:
    """Load a checkpoint into an already-constructed module.

    With ``strict`` (the default) the archive is validated against the
    module first: every missing/unexpected key, shape mismatch, and dtype
    mismatch is reported in one :class:`StateDictMismatchError` naming the
    offending parameters and the archive path.
    """
    state = load_state_dict(path)
    if strict:
        validate_state_dict(module, state, source=path)
    module.load_state_dict(state)
    return module
