"""Saving and loading model weights as ``.npz`` archives.

TAGLETS caches pretrained backbones and the distilled end model; this module
provides the on-disk format for those checkpoints.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .modules import Module

__all__ = ["save_state_dict", "load_state_dict", "save_module", "load_into_module"]

_KEY_SEPARATOR = "::"  # npz keys cannot contain '/' portably across dict round-trips


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a state dict to ``path`` (parent directories are created)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    safe = {name.replace(".", _KEY_SEPARATOR): value for name, value in state.items()}
    np.savez(path, **safe)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        return {name.replace(_KEY_SEPARATOR, "."): archive[name]
                for name in archive.files}


def save_module(module: Module, path: str) -> None:
    """Persist a module's parameters and buffers."""
    save_state_dict(module.state_dict(), path)


def load_into_module(module: Module, path: str) -> Module:
    """Load a checkpoint into an already-constructed module (shape-checked)."""
    module.load_state_dict(load_state_dict(path))
    return module
