"""Neural network layers for the TAGLETS reproduction.

Backbones in this reproduction operate on flattened synthetic "images"
(small feature grids), so the layer zoo is MLP-centric: ``Linear``,
``ReLU``, ``Dropout``, ``BatchNorm1d``, ``Sequential`` and an ``MLP``
convenience builder.  Every layer exposes ``parameters()``,
``state_dict()`` / ``load_state_dict()`` and a train/eval switch, mirroring
the familiar torch.nn API so the higher-level TAGLETS code reads naturally.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import init as init_module
from .functional import linear as _fused_linear
from .tensor import _TRACE, Tensor, get_default_dtype, trace_ops

# --------------------------------------------------------------------------- #
# Module-call tracing (the capture phase of the graph replay executor)
# --------------------------------------------------------------------------- #
# While a trace is active on the current thread, every ``Module.__call__``
# appends ``("module", module, input, output)`` to the recording list that
# the engine-wide op trace (:func:`repro.nn.tensor.trace_ops`) maintains;
# the traced tensor combinators and fused losses append their own tagged
# records to the same list.  The replay compiler (:mod:`repro.nn.replay`)
# runs one eager training step under this context and reconstructs the op
# DAG from the records.
trace_module_calls = trace_ops

__all__ = [
    "Parameter",
    "Module",
    "trace_module_calls",
    "Linear",
    "ReLU",
    "Tanh",
    "Identity",
    "Dropout",
    "BatchNorm1d",
    "Sequential",
    "MLP",
]


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for ``parameters()`` and
    ``state_dict()``.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        out = self.forward(x)
        records = getattr(_TRACE, "records", None)
        if records is not None:
            records.append(("module", self, x, out))
        return out

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield f"{prefix}{name}", value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{prefix}{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{prefix}{name}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Mode switching
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        # Buffers (e.g. batch-norm running stats).
        for name, value in self._named_buffers():
            state[name] = value.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self._named_buffers())
        for name, value in state.items():
            if name in own_params:
                if own_params[name].data.shape != value.shape:
                    raise ValueError(f"shape mismatch for parameter {name!r}: "
                                     f"{own_params[name].data.shape} vs {value.shape}")
                # Preserve the parameter's dtype so float64 checkpoints load
                # cleanly into models built under the float32 fast mode.
                own_params[name].data = value.astype(own_params[name].data.dtype,
                                                     copy=True)
            elif name in own_buffers:
                own_buffers[name][...] = value
            else:
                raise KeyError(f"unexpected key {name!r} in state dict")
        missing = set(own_params) - set(state)
        if missing:
            raise KeyError(f"missing keys in state dict: {sorted(missing)}")

    def _named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield from value._named_buffers(prefix=f"{prefix}{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item._named_buffers(prefix=f"{prefix}{name}.{i}.")
            elif isinstance(value, np.ndarray) and name.startswith("running_"):
                yield f"{prefix}{name}", value

    def clone(self) -> "Module":
        """Deep copy via state-dict round trip (structure must be identical)."""
        import copy

        duplicate = copy.deepcopy(self)
        return duplicate


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_module.kaiming_uniform((in_features, out_features), rng=rng),
            name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return _fused_linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * Tensor(mask)


class BatchNorm1d(Module):
    """Batch normalization over the feature dimension of ``(n, d)`` inputs."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(f"expected (n, {self.num_features}) input, got {x.shape}")
        if self.training:
            batch_mean = x.data.mean(axis=0)
            batch_var = x.data.var(axis=0)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * batch_mean)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * batch_var)
            mean, var = batch_mean, batch_var
        else:
            mean, var = self.running_mean, self.running_var
        scale = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - Tensor(mean)) * Tensor(scale)
        return normalized * self.gamma + self.beta


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class MLP(Module):
    """Multi-layer perceptron with ReLU activations and optional dropout.

    Used as the shared architecture of backbones and classification heads in
    this reproduction (standing in for ResNet-50 / BiT trunks).
    """

    def __init__(self, in_features: int, hidden_sizes: Sequence[int],
                 out_features: int, dropout: float = 0.0,
                 batch_norm: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        sizes = [in_features, *hidden_sizes, out_features]
        layers: List[Module] = []
        for i in range(len(sizes) - 1):
            layers.append(Linear(sizes[i], sizes[i + 1], rng=rng))
            is_last = i == len(sizes) - 2
            if not is_last:
                if batch_norm:
                    layers.append(BatchNorm1d(sizes[i + 1]))
                layers.append(ReLU())
                if dropout > 0:
                    layers.append(Dropout(dropout, rng=rng))
        self.net = Sequential(*layers)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
