"""Parameter initialization schemes for :mod:`repro.nn` modules."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "zeros", "normal"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fan for a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = shape[-1]
    return fan_in, fan_out


def kaiming_uniform(shape: Tuple[int, ...],
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He/Kaiming uniform init, appropriate for ReLU networks."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: Tuple[int, ...],
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He/Kaiming normal init."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...],
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform init, appropriate for tanh/linear heads."""
    rng = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: Tuple[int, ...], std: float = 0.01,
           rng: Optional[np.random.Generator] = None) -> np.ndarray:
    rng = rng if rng is not None else np.random.default_rng()
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
