"""``repro.core`` — the public TAGLETS API: :class:`Task` and :class:`Controller`."""

from .controller import Controller, ControllerConfig, TagletsResult
from .task import Task

__all__ = ["Task", "Controller", "ControllerConfig", "TagletsResult"]
