"""The TAGLETS controller: modules → ensemble → distilled end model.

The :class:`Controller` runs the full pipeline of Figure 2:

1. query SCADS (optionally pruned) for task-related auxiliary data,
2. train each configured module to obtain a taglet,
3. ensemble the taglets' predictions on the unlabeled data into soft pseudo
   labels,
4. distill pseudo-labeled + labeled data into the servable end model.

The intermediate artifacts (auxiliary selection, taglets, ensemble) remain
accessible on the returned :class:`TagletsResult`, which is what the
module-level and ensembling analyses of the paper (Figures 5–7) consume.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..nn.replay import ReplayStats, collect_replay_stats
from ..nn.tensor import default_dtype, use_graph_replay

from ..distill.end_model import EndModel, EndModelConfig, train_end_model
from ..ensemble.voting import TagletEnsemble
from ..modules import (DEFAULT_MODULES, FixMatchModule, MultiTaskModule,
                       TransferModule, ZslKgModule)
from ..modules.base import ModuleInput, Taglet, TrainingModule
from ..scads.query import AuxiliarySelection
from .task import Task

__all__ = ["ControllerConfig", "TagletsResult", "Controller"]

_MODULE_FACTORIES = {
    "transfer": TransferModule,
    "multitask": MultiTaskModule,
    "fixmatch": FixMatchModule,
    "zsl_kg": ZslKgModule,
}


@dataclass
class ControllerConfig:
    """System-level configuration of a TAGLETS run."""

    #: module names (or leave None and pass instances to the Controller)
    modules: Sequence[str] = DEFAULT_MODULES
    #: SCADS pruning level: None (no pruning), 0 or 1 (paper Section 4.3)
    prune_level: Optional[int] = None
    #: whether the exact target concepts may be selected as auxiliary classes
    exclude_target_concepts: bool = False
    end_model: EndModelConfig = field(default_factory=EndModelConfig)
    #: train the end model even when there is no unlabeled data to pseudo-label
    train_end_model_without_unlabeled: bool = True
    #: train the taglet modules concurrently in a thread pool (NumPy's BLAS
    #: releases the GIL).  Every module seeds its own RNGs from the run seed,
    #: so the parallel path is bit-identical to the sequential one.
    parallel_modules: bool = False
    #: thread-pool size for parallel module training (None = one per module,
    #: capped at the machine's CPU count — oversubscribing a single core only
    #: adds GIL contention)
    max_workers: Optional[int] = None
    #: engine dtype for the whole run: None keeps the process default,
    #: "float32" selects the halved-bandwidth fast mode (see docs/performance.md).
    #: The dtype scope is process-global so it propagates into the module
    #: worker threads; running two Controllers concurrently with *different*
    #: dtypes in one process is unsupported.
    dtype: Optional[str] = None
    #: whole-graph capture/replay executor for every static training loop in
    #: the run (module fine-tuning, ZSL-KG pretrain, end-model distillation):
    #: ``None`` inherits the engine-wide flag (on by default), ``True``/
    #: ``False`` force it for this run — mirroring ``TrainConfig.replay``.
    #: Replayed steps are bit-identical to eager; unsupported models fall
    #: back automatically (see docs/performance.md).  Same process-global
    #: scope caveat as ``dtype``.
    replay: Optional[bool] = None
    #: optional shared :class:`~repro.nn.replay.ReplayStats` counter: when
    #: set, every training loop in the run (module fine-tuning, the ZSL-KG
    #: pretrain, FixMatch's two-view step, end-model distillation) reports
    #: its captures / replays / eager fallbacks (with reasons) into it —
    #: including loops run by the parallel controller's worker threads.
    #: Turns the executor's silent eager fallback into an observable signal:
    #: on static loops ``replay_stats.fallback_count`` must stay zero
    #: (asserted by ``tests/nn/test_replay_pipeline.py``).
    replay_stats: Optional[ReplayStats] = None
    #: if set, ``run()`` exports the distilled end model as a versioned
    #: servable artifact at this directory (see :mod:`repro.serve.artifact`)
    #: — the train-to-deploy hook.  Test accuracy is recorded in the
    #: manifest's metrics when the task carries a test set.
    export_path: Optional[str] = None
    #: if set, ``run()`` also exports the full taglet *ensemble* as a
    #: servable artifact at this directory (schema-v2 multi-member format;
    #: see :func:`repro.serve.export_ensemble`) — the quality-over-latency
    #: deployment: the served prediction is the renormalized vote average
    #: of every taglet (Eq. 6) instead of the distilled student.
    export_ensemble_path: Optional[str] = None
    seed: int = 0


@dataclass
class TagletsResult:
    """Everything produced by one TAGLETS run."""

    taglets: List[Taglet]
    ensemble: TagletEnsemble
    end_model: EndModel
    auxiliary: AuxiliarySelection
    pseudo_labels: np.ndarray
    #: the target label space, recorded so the result is exportable as a
    #: self-describing servable artifact (``repro.serve.export_end_model``)
    class_names: List[str] = field(default_factory=list)
    task_name: Optional[str] = None

    def taglet(self, name: str) -> Taglet:
        for taglet in self.taglets:
            if taglet.name == name:
                return taglet
        raise KeyError(f"no taglet named {name!r}")

    def module_accuracies(self, features: np.ndarray,
                          labels: np.ndarray) -> Dict[str, float]:
        return self.ensemble.member_accuracies(features, labels)

    def ensemble_accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        return self.ensemble.accuracy(features, labels)

    def end_model_accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        return self.end_model.accuracy(features, labels)


class Controller:
    """Runs the end-to-end TAGLETS pipeline for a task."""

    def __init__(self,
                 modules: Optional[Sequence[Union[str, TrainingModule]]] = None,
                 config: Optional[ControllerConfig] = None):
        self.config = config or ControllerConfig()
        module_specs = modules if modules is not None else self.config.modules
        self.modules: List[TrainingModule] = [self._resolve_module(m)
                                              for m in module_specs]
        if not self.modules:
            raise ValueError("the controller needs at least one module")
        self._last_result: Optional[TagletsResult] = None

    @staticmethod
    def _resolve_module(spec: Union[str, TrainingModule]) -> TrainingModule:
        if isinstance(spec, TrainingModule):
            return spec
        if spec not in _MODULE_FACTORIES:
            raise KeyError(f"unknown module {spec!r}; known: {sorted(_MODULE_FACTORIES)}")
        return _MODULE_FACTORIES[spec]()

    @property
    def module_names(self) -> List[str]:
        return [m.name for m in self.modules]

    # ------------------------------------------------------------------ #
    # Pipeline
    # ------------------------------------------------------------------ #
    def select_auxiliary_data(self, task: Task) -> AuxiliarySelection:
        """Step 1: query (optionally pruned) SCADS for task-related data."""
        if task.scads is None:
            return AuxiliarySelection(features=np.zeros((0, task.input_shape)),
                                      labels=np.zeros(0, dtype=np.int64),
                                      concepts=[])
        bundle = task.scads
        if self.config.prune_level is not None:
            bundle = bundle.pruned(task.classes, self.config.prune_level)
        rng = np.random.default_rng(self.config.seed)
        return bundle.select(task.classes,
                             num_related_concepts=task.wanted_num_related_class,
                             images_per_concept=task.images_per_related_class,
                             rng=rng,
                             exclude_target_concepts=self.config.exclude_target_concepts)

    def train_taglets(self, task: Task,
                      auxiliary: AuxiliarySelection) -> List[Taglet]:
        """Step 2: train every module independently.

        With ``parallel_modules`` the modules train concurrently in a thread
        pool.  Each module constructs all of its RNGs locally from its
        :class:`ModuleInput` seed and trains a private copy of the backbone,
        so no mutable state is shared between threads and the result is
        bit-identical to the sequential path.
        """
        bundle = task.scads
        if bundle is not None and self.config.prune_level is not None:
            bundle = bundle.pruned(task.classes, self.config.prune_level)
        inputs = [ModuleInput(classes=task.classes,
                              labeled_features=task.labeled_features,
                              labeled_labels=task.labeled_labels,
                              unlabeled_features=task.unlabeled_features,
                              auxiliary=auxiliary,
                              backbone=task.backbone,
                              scads=bundle,
                              seed=self.config.seed)
                  for _ in self.modules]
        if self.config.parallel_modules and len(self.modules) > 1:
            workers = self.config.max_workers or min(len(self.modules),
                                                     os.cpu_count() or 1)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(lambda pair: pair[0].train(pair[1]),
                                     zip(self.modules, inputs)))
        return [module.train(data)
                for module, data in zip(self.modules, inputs)]

    def run(self, task: Task) -> TagletsResult:
        """Run the full pipeline and return all artifacts."""
        if not task.has_backbone:
            raise RuntimeError("the task has no backbone; call set_initial_model()")
        dtype_scope = (default_dtype(self.config.dtype)
                       if self.config.dtype is not None else nullcontext())
        replay_scope = (use_graph_replay(self.config.replay)
                        if self.config.replay is not None else nullcontext())
        stats_scope = (collect_replay_stats(self.config.replay_stats)
                       if self.config.replay_stats is not None
                       else nullcontext())
        with dtype_scope, replay_scope, stats_scope:
            auxiliary = self.select_auxiliary_data(task)
            taglets = self.train_taglets(task, auxiliary)
            ensemble = TagletEnsemble(taglets)

            if len(task.unlabeled_features):
                pseudo_labels = ensemble.predict_proba(task.unlabeled_features,
                                                       batch_size=None)
            else:
                pseudo_labels = np.zeros((0, task.num_classes))

            end_model = train_end_model(
                backbone=task.backbone,
                labeled_features=task.labeled_features,
                labeled_labels=task.labeled_labels,
                pseudo_features=task.unlabeled_features,
                pseudo_probabilities=pseudo_labels,
                num_classes=task.num_classes,
                config=self.config.end_model,
                seed=self.config.seed)

        result = TagletsResult(taglets=taglets, ensemble=ensemble,
                               end_model=end_model, auxiliary=auxiliary,
                               pseudo_labels=pseudo_labels,
                               class_names=task.class_names,
                               task_name=task.name)
        if self.config.export_path is not None:
            self.export(result, self.config.export_path, task=task)
        if self.config.export_ensemble_path is not None:
            self.export_ensemble(result, self.config.export_ensemble_path,
                                 task=task)
        self._last_result = result
        return result

    def export(self, result: TagletsResult, path: str,
               task: Optional[Task] = None) -> str:
        """Export the result's end model as a versioned servable artifact."""
        from ..serve.artifact import export_end_model

        metrics: Dict[str, float] = {}
        if task is not None and task.has_test_set:
            metrics["test_accuracy"] = result.end_model_accuracy(
                task.test_features, task.test_labels)
        return export_end_model(result, path, metrics=metrics)

    def export_ensemble(self, result: TagletsResult, path: str,
                        task: Optional[Task] = None) -> str:
        """Export the result's taglet ensemble as a servable artifact."""
        from ..serve.artifact import export_ensemble

        metrics: Dict[str, float] = {}
        if task is not None and task.has_test_set:
            metrics["test_accuracy"] = result.ensemble_accuracy(
                task.test_features, task.test_labels)
        return export_ensemble(result, path, metrics=metrics)

    def train_end_model(self, task: Task) -> EndModel:
        """Artifact-appendix style entry point: run the pipeline, return the end model."""
        return self.run(task).end_model

    @property
    def last_result(self) -> Optional[TagletsResult]:
        return self._last_result
