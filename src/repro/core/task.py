"""The user-facing description of a target task.

A :class:`Task` gathers everything TAGLETS needs to build a classifier: the
semantic description of the classes (names plus, where needed, anchors into
the knowledge graph), the limited labeled data, the unlabeled data, the SCADS
bundle to draw auxiliary data from, and the pretrained backbone to start
from.  The interface mirrors the artifact appendix of the paper
(``input_shape``, ``batch_size``, ``wanted_num_related_class``,
``set_initial_model``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..backbones.backbone import PretrainedBackbone
from ..datasets.base import ClassSpec, TaskSplit
from ..scads.builder import ScadsBundle

__all__ = ["Task"]


class Task:
    """A target classification task with its data and SCADS attachment."""

    def __init__(self, name: str,
                 classes: Sequence[Union[str, ClassSpec]],
                 labeled_features: np.ndarray,
                 labeled_labels: np.ndarray,
                 unlabeled_features: Optional[np.ndarray] = None,
                 scads: Optional[ScadsBundle] = None,
                 input_shape: Optional[int] = None,
                 batch_size: int = 128,
                 wanted_num_related_class: int = 5,
                 images_per_related_class: int = 30,
                 test_features: Optional[np.ndarray] = None,
                 test_labels: Optional[np.ndarray] = None):
        self.name = name
        self.classes: List[ClassSpec] = [
            c if isinstance(c, ClassSpec) else ClassSpec(name=c, concept=c)
            for c in classes]
        if not self.classes:
            raise ValueError("a task needs at least one class")

        self.labeled_features = np.asarray(labeled_features, dtype=np.float64)
        self.labeled_labels = np.asarray(labeled_labels, dtype=np.int64)
        if len(self.labeled_features) != len(self.labeled_labels):
            raise ValueError("labeled features/labels length mismatch")
        if len(self.labeled_features) == 0:
            raise ValueError("a task needs at least one labeled example")
        if self.labeled_labels.max() >= len(self.classes):
            raise ValueError("labels reference unknown classes")

        if unlabeled_features is None:
            unlabeled_features = np.zeros((0, self.labeled_features.shape[1]))
        self.unlabeled_features = np.asarray(unlabeled_features, dtype=np.float64)

        self.scads = scads
        self.input_shape = input_shape or self.labeled_features.shape[1]
        if self.labeled_features.shape[1] != self.input_shape:
            raise ValueError("labeled data does not match input_shape")
        self.batch_size = batch_size
        self.wanted_num_related_class = wanted_num_related_class
        self.images_per_related_class = images_per_related_class

        self.test_features = (np.asarray(test_features, dtype=np.float64)
                              if test_features is not None else None)
        self.test_labels = (np.asarray(test_labels, dtype=np.int64)
                            if test_labels is not None else None)

        self._backbone: Optional[PretrainedBackbone] = None

    # ------------------------------------------------------------------ #
    # Backbone selection (artifact-appendix API)
    # ------------------------------------------------------------------ #
    def set_initial_model(self, backbone: PretrainedBackbone) -> "Task":
        """Choose the pretrained backbone the modules and end model start from."""
        if backbone.input_dim != self.input_shape:
            raise ValueError(
                f"backbone expects inputs of dim {backbone.input_dim}, task provides "
                f"{self.input_shape}")
        self._backbone = backbone
        return self

    @property
    def backbone(self) -> PretrainedBackbone:
        if self._backbone is None:
            raise RuntimeError("no backbone set; call set_initial_model() first")
        return self._backbone

    @property
    def has_backbone(self) -> bool:
        return self._backbone is not None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def class_names(self) -> List[str]:
        return [c.name for c in self.classes]

    @property
    def has_test_set(self) -> bool:
        return self.test_features is not None and self.test_labels is not None

    def summary(self) -> dict:
        return {
            "name": self.name,
            "num_classes": self.num_classes,
            "labeled": len(self.labeled_features),
            "unlabeled": len(self.unlabeled_features),
            "test": len(self.test_features) if self.has_test_set else 0,
            "input_shape": self.input_shape,
            "backbone": self._backbone.name if self._backbone else None,
        }

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_split(cls, split: TaskSplit, scads: Optional[ScadsBundle] = None,
                   backbone: Optional[PretrainedBackbone] = None,
                   wanted_num_related_class: int = 5,
                   images_per_related_class: int = 30) -> "Task":
        """Build a task directly from a :class:`~repro.datasets.base.TaskSplit`."""
        task = cls(name=f"{split.dataset_name}-{split.shots}shot-split{split.split_seed}",
                   classes=split.classes,
                   labeled_features=split.labeled_features,
                   labeled_labels=split.labeled_labels,
                   unlabeled_features=split.unlabeled_features,
                   scads=scads,
                   wanted_num_related_class=wanted_num_related_class,
                   images_per_related_class=images_per_related_class,
                   test_features=split.test_features,
                   test_labels=split.test_labels)
        if backbone is not None:
            task.set_initial_model(backbone)
        return task
