"""Unsupervised ensembling of taglets (paper Section 3.3).

Each taglet returns a probability vector per example; the vectors are stacked
into a vote matrix ``V`` of shape ``(|T|, C)`` and averaged into the soft
pseudo label ``p_x = 1/|T| * sum_t V_t`` (Eq. 6).  The ensemble is also a
classifier in its own right, which the paper analyses separately from the
distilled end model (Figure 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..modules.base import Taglet

__all__ = ["vote_matrix", "ensemble_probabilities", "TagletEnsemble"]


def vote_matrix(taglet_probabilities: Sequence[np.ndarray]) -> np.ndarray:
    """Stack per-taglet probability matrices into a ``(|T|, n, C)`` vote tensor."""
    if not taglet_probabilities:
        raise ValueError("at least one taglet prediction is required")
    stacked = np.stack([np.asarray(p, dtype=np.float64) for p in taglet_probabilities])
    if stacked.ndim != 3:
        raise ValueError("each taglet prediction must be an (n, C) matrix")
    first = stacked[0].shape
    for probs in stacked[1:]:
        if probs.shape != first:
            raise ValueError("taglet predictions disagree on shape")
    return stacked


def ensemble_probabilities(taglet_probabilities: Sequence[np.ndarray]) -> np.ndarray:
    """Soft pseudo labels: the average of the taglets' probability vectors (Eq. 6)."""
    votes = vote_matrix(taglet_probabilities)
    pseudo = votes.mean(axis=0)
    # Guard against numerical drift: renormalize rows to sum to one.
    row_sums = pseudo.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    return pseudo / row_sums


class TagletEnsemble:
    """A collection of taglets acting as a single (non-servable) classifier."""

    def __init__(self, taglets: Sequence[Taglet]):
        if not taglets:
            raise ValueError("an ensemble needs at least one taglet")
        self.taglets = list(taglets)

    @property
    def names(self) -> List[str]:
        return [t.name for t in self.taglets]

    def member_probabilities(self, features: np.ndarray) -> Dict[str, np.ndarray]:
        """Per-taglet probability matrices, keyed by taglet name."""
        return {t.name: t.predict_proba(features) for t in self.taglets}

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        member = [t.predict_proba(features) for t in self.taglets]
        return ensemble_probabilities(member)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        if len(features) == 0:
            return 0.0
        return float((self.predict(features) == np.asarray(labels)).mean())

    def member_accuracies(self, features: np.ndarray,
                          labels: np.ndarray) -> Dict[str, float]:
        """Accuracy of each member taglet (the per-module numbers of Figure 5)."""
        return {t.name: t.accuracy(features, labels) for t in self.taglets}
