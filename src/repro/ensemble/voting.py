"""Unsupervised ensembling of taglets (paper Section 3.3).

Each taglet returns a probability vector per example; the vectors are stacked
into a vote matrix ``V`` of shape ``(|T|, C)`` and averaged into the soft
pseudo label ``p_x = 1/|T| * sum_t V_t`` (Eq. 6).  The ensemble is also a
classifier in its own right, which the paper analyses separately from the
distilled end model (Figure 6).
"""

from __future__ import annotations

import inspect
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..modules.base import Taglet

__all__ = ["vote_matrix", "renormalized_mean", "ensemble_probabilities",
           "TagletEnsemble"]


def vote_matrix(taglet_probabilities: Sequence[np.ndarray]) -> np.ndarray:
    """Stack per-taglet probability matrices into a ``(|T|, n, C)`` vote tensor."""
    if not taglet_probabilities:
        raise ValueError("at least one taglet prediction is required")
    stacked = np.stack([np.asarray(p, dtype=np.float64) for p in taglet_probabilities])
    if stacked.ndim != 3:
        raise ValueError("each taglet prediction must be an (n, C) matrix")
    first = stacked[0].shape
    for probs in stacked[1:]:
        if probs.shape != first:
            raise ValueError("taglet predictions disagree on shape")
    return stacked


def renormalized_mean(votes: np.ndarray) -> np.ndarray:
    """Average a ``(|T|, n, C)`` vote tensor and renormalize rows to sum to one.

    The single vote-fusing computation of the system (Eq. 6): offline
    pseudo-labeling (:class:`TagletEnsemble`) and the serving tier's fused
    ensemble inference (:class:`repro.serve.ServableEnsemble`) both call it,
    which is what keeps served votes bit-identical to offline voting.
    """
    pseudo = votes.mean(axis=0)
    row_sums = pseudo.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    return pseudo / row_sums


def ensemble_probabilities(taglet_probabilities: Sequence[np.ndarray]) -> np.ndarray:
    """Soft pseudo labels: the average of the taglets' probability vectors (Eq. 6)."""
    return renormalized_mean(vote_matrix(taglet_probabilities))


def _member_proba(taglet: Taglet, features: np.ndarray,
                  batch_size) -> np.ndarray:
    """Call a member's ``predict_proba``, tolerating legacy signatures.

    Custom taglets written against the original ``predict_proba(features)``
    interface keep working; built-in taglets get the batched inference path.
    The signature is inspected rather than caught: a ``TypeError`` raised
    *inside* a member must propagate, not trigger a silent retry.
    """
    parameters = inspect.signature(taglet.predict_proba).parameters
    if "batch_size" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return taglet.predict_proba(features, batch_size=batch_size)
    return taglet.predict_proba(features)


class TagletEnsemble:
    """A collection of taglets acting as a single (non-servable) classifier."""

    def __init__(self, taglets: Sequence[Taglet]):
        if not taglets:
            raise ValueError("an ensemble needs at least one taglet")
        self.taglets = list(taglets)

    @property
    def names(self) -> List[str]:
        return [t.name for t in self.taglets]

    def member_probabilities(self, features: np.ndarray) -> Dict[str, np.ndarray]:
        """Per-taglet probability matrices, keyed by taglet name."""
        return {t.name: t.predict_proba(features) for t in self.taglets}

    def predict_proba(self, features: np.ndarray,
                      batch_size: Optional[int] = 256) -> np.ndarray:
        """Soft pseudo labels over ``features`` (Eq. 6), batched per member.

        Each member scores the whole array in one inference pass into a
        preallocated ``(|T|, n, C)`` vote tensor — no per-chunk Python loop,
        no re-stacking — and the average is renormalized row-wise.
        ``batch_size=None`` disables member-level chunking entirely.
        """
        first = np.asarray(_member_proba(self.taglets[0], features, batch_size))
        if first.ndim != 2:
            raise ValueError("each taglet prediction must be an (n, C) matrix")
        votes = np.empty((len(self.taglets),) + first.shape, dtype=np.float64)
        votes[0] = first
        for i, taglet in enumerate(self.taglets[1:], start=1):
            member = np.asarray(_member_proba(taglet, features, batch_size))
            if member.shape != first.shape:
                raise ValueError("taglet predictions disagree on shape")
            votes[i] = member
        return renormalized_mean(votes)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        if len(features) == 0:
            return 0.0
        return float((self.predict(features) == np.asarray(labels)).mean())

    def member_accuracies(self, features: np.ndarray,
                          labels: np.ndarray) -> Dict[str, float]:
        """Accuracy of each member taglet (the per-module numbers of Figure 5)."""
        return {t.name: t.accuracy(features, labels) for t in self.taglets}
