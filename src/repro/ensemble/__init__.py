"""``repro.ensemble`` — combining taglet predictions into soft pseudo labels."""

from .voting import (TagletEnsemble, ensemble_probabilities,
                     renormalized_mean, vote_matrix)

__all__ = ["TagletEnsemble", "ensemble_probabilities", "renormalized_mean",
           "vote_matrix"]
