"""Synthetic traffic: arrival traces, an open-loop replay harness, and
model validation.

The evaluation half of the capacity program (:mod:`repro.serve.capacity`):
a model of p99 is only as honest as the traffic that measures it, so this
module generates *arrival traces* (bursty, diurnal, adversarial — the
shapes production serving actually sees, not just closed-loop saturation)
and replays them **open-loop** against a live :class:`~repro.serve.Server`
or :class:`~repro.serve.router.Router`: requests fire at their scheduled
instants whether or not earlier ones have finished, which is what makes
overload visible instead of silently throttling the load generator.

Every request's outcome is recorded individually — served, expired (504),
overloaded (429), shed (503), rejected (400), errored — along with its
latency, and :meth:`TrafficReport.deadline_violations` counts the one
outcome the stack promises never happens: a request that completed
*successfully* after its own deadline.

:func:`compare_prediction` closes the loop: observed throughput/p50/p99
against a :class:`~repro.serve.capacity.CapacityPrediction`, as relative
errors the benchmarks assert against the documented bounds.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .batching import DeadlineExceeded, Overloaded, ShuttingDown
from .capacity import CapacityPrediction
from .registry import ModelNotFound

__all__ = ["TrafficGenerator", "TrafficReport", "adversarial_trace",
           "bursty_trace", "compare_prediction", "diurnal_trace",
           "poisson_trace"]


# --------------------------------------------------------------------------- #
# Arrival traces (seconds-from-start offsets, sorted ascending)
# --------------------------------------------------------------------------- #
def poisson_trace(rate: float, duration_s: float,
                  seed: int = 0) -> np.ndarray:
    """Memoryless arrivals at ``rate`` req/s — the model's home turf."""
    if rate <= 0 or duration_s <= 0:
        raise ValueError("rate and duration_s must be > 0")
    rng = np.random.default_rng(seed)
    # Draw enough exponential gaps to cover the window, then clip.
    count = max(16, int(rate * duration_s * 1.5) + 64)
    offsets = np.cumsum(rng.exponential(1.0 / rate, size=count))
    return offsets[offsets < duration_s]


def bursty_trace(base_rate: float, burst_rate: float, duration_s: float,
                 period_s: float = 1.0, burst_fraction: float = 0.2,
                 seed: int = 0) -> np.ndarray:
    """A steady floor with periodic bursts riding on top.

    Every ``period_s``, the first ``burst_fraction`` of the period arrives
    at ``burst_rate`` instead of ``base_rate`` — the flash-crowd shape that
    makes unbounded queues melt and admission control earn its keep.
    """
    if burst_rate < base_rate:
        raise ValueError("burst_rate must be >= base_rate")
    base = poisson_trace(base_rate, duration_s, seed=seed)
    pieces = [base]
    extra = burst_rate - base_rate
    window = period_s * burst_fraction
    start, index = 0.0, 1
    while start < duration_s and extra > 0:
        span = min(window, duration_s - start)
        burst = poisson_trace(extra, span, seed=seed + index) + start
        pieces.append(burst)
        start += period_s
        index += 1
    return np.sort(np.concatenate(pieces))


def diurnal_trace(mean_rate: float, duration_s: float,
                  period_s: float = 10.0, amplitude: float = 0.8,
                  seed: int = 0) -> np.ndarray:
    """Sinusoidally modulated arrivals (a compressed day/night cycle).

    Implemented by thinning a Poisson stream at the peak rate: an arrival
    at time ``t`` survives with probability ``rate(t) / peak``, giving an
    inhomogeneous Poisson process with
    ``rate(t) = mean_rate * (1 + amplitude * sin(2πt/period))``.
    """
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError("amplitude must be in [0, 1]")
    peak = mean_rate * (1.0 + amplitude)
    candidates = poisson_trace(peak, duration_s, seed=seed)
    rng = np.random.default_rng(seed + 1)
    rate_at = mean_rate * (1.0 + amplitude
                           * np.sin(2.0 * np.pi * candidates / period_s))
    keep = rng.random(len(candidates)) < rate_at / peak
    return candidates[keep]


def adversarial_trace(rate: float, duration_s: float,
                      spike_every_s: float = 0.5,
                      seed: int = 0) -> np.ndarray:
    """Worst-case arrivals: the whole period's traffic lands at one instant.

    Same average rate as the Poisson trace, maximally bunched — every
    ``spike_every_s`` window's arrivals hit simultaneously (plus ~1 ms of
    jitter so submission order is not degenerate).  Queue depth under this
    trace spikes to ``rate * spike_every_s`` immediately; it is the trace
    that separates "p99 under Poisson" from "p99 under an adversary".
    """
    rng = np.random.default_rng(seed)
    spikes = np.arange(0.0, duration_s, spike_every_s)
    per_spike = rng.poisson(rate * spike_every_s, size=len(spikes))
    offsets = np.repeat(spikes, per_spike)
    offsets = offsets + rng.random(len(offsets)) * 1e-3
    return np.sort(offsets[offsets < duration_s])


# --------------------------------------------------------------------------- #
# Per-request records and the report
# --------------------------------------------------------------------------- #
#: outcome labels, in the order summary() reports them
OUTCOMES = ("ok", "expired", "overloaded", "shed", "rejected", "error")


@dataclass
class TrafficReport:
    """Everything one trace replay observed, per request and aggregated."""

    #: scheduled arrival offsets (seconds from trace start)
    offsets: np.ndarray
    #: measured latency per request, ms (NaN where the request never got an
    #: answer before the harness timeout)
    latencies_ms: np.ndarray
    #: one of :data:`OUTCOMES` per request
    outcomes: List[str]
    #: wall-clock seconds from first dispatch to last resolution
    duration_s: float
    #: the deadline each request carried (None if none)
    deadline_ms: Optional[float] = None
    errors: List[str] = field(default_factory=list)

    @property
    def sent(self) -> int:
        return len(self.outcomes)

    def count(self, outcome: str) -> int:
        return sum(1 for o in self.outcomes if o == outcome)

    @property
    def ok(self) -> int:
        return self.count("ok")

    def throughput(self) -> float:
        """Completed (ok) requests per second of wall-clock replay."""
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    def _ok_latencies(self) -> np.ndarray:
        mask = np.array([o == "ok" for o in self.outcomes], dtype=bool)
        return self.latencies_ms[mask]

    def p50_ms(self) -> float:
        ok = self._ok_latencies()
        return float(np.percentile(ok, 50)) if len(ok) else float("nan")

    def p99_ms(self) -> float:
        ok = self._ok_latencies()
        return float(np.percentile(ok, 99)) if len(ok) else float("nan")

    def shed_rate(self) -> float:
        """Fraction of arrivals not served (everything but ok)."""
        return 1.0 - self.ok / self.sent if self.sent else 0.0

    def deadline_violations(self, grace_ms: float = 0.0) -> int:
        """Successful responses that landed *after* their own deadline.

        The stack promises this is zero: the batcher re-checks expiry at
        delivery and the router suppresses late 200s.  ``grace_ms`` admits
        client-side measurement skew (the done-callback runs a beat after
        the server-side expiry check) — keep it 0 for in-process replays.
        """
        if self.deadline_ms is None:
            return 0
        bound = float(self.deadline_ms) + grace_ms
        return int(sum(1 for latency, outcome
                       in zip(self.latencies_ms, self.outcomes)
                       if outcome == "ok" and latency > bound))

    def summary(self, grace_ms: float = 0.0) -> Dict[str, object]:
        counts = {outcome: self.count(outcome) for outcome in OUTCOMES}
        return {
            "sent": self.sent,
            "duration_s": round(self.duration_s, 3),
            "throughput_req_per_sec": round(self.throughput(), 1),
            "p50_ms": round(self.p50_ms(), 3) if self.ok else None,
            "p99_ms": round(self.p99_ms(), 3) if self.ok else None,
            "shed_rate": round(self.shed_rate(), 4),
            "deadline_ms": self.deadline_ms,
            "deadline_violations": self.deadline_violations(grace_ms),
            **counts,
        }


def _classify(error: BaseException) -> str:
    if isinstance(error, DeadlineExceeded):
        return "expired"
    if isinstance(error, Overloaded):
        return "overloaded"
    if isinstance(error, ShuttingDown):
        return "shed"
    if isinstance(error, (ModelNotFound, ValueError)):
        return "rejected"
    return "error"


# --------------------------------------------------------------------------- #
# The generator
# --------------------------------------------------------------------------- #
class TrafficGenerator:
    """Replay an arrival trace against a live serving target.

    ``target`` is anything with the server surface: a
    :class:`~repro.serve.Server` or :class:`~repro.serve.MicroBatcher`
    (replayed **open-loop** through ``submit`` — no client-thread cap, the
    mode capacity validation uses) or a
    :class:`~repro.serve.router.Router` (blocking ``predict`` calls on a
    thread pool of ``client_threads`` — an HTTP hop per request).

    Inputs are ``distinct_inputs`` pre-generated feature rows cycled
    through in order; size it above the server's LRU capacity (or disable
    the cache) when measuring the model path rather than the cache.
    """

    def __init__(self, target, model: str = "default",
                 input_dim: Optional[int] = None,
                 dtype=np.float64, seed: int = 0,
                 distinct_inputs: int = 2048, client_threads: int = 16,
                 dispatch_threads: int = 4):
        self.target = target
        self.model = model
        self.client_threads = int(client_threads)
        self.dispatch_threads = max(1, int(dispatch_threads))
        if input_dim is None:
            registry = getattr(target, "registry", None)
            if registry is not None:
                _, _, servable = registry.resolve(model)
                input_dim = servable.input_dim
            elif getattr(target, "input_dim", None) is not None:
                input_dim = target.input_dim
            else:
                raise ValueError("pass input_dim: the target does not "
                                 "expose one")
        rng = np.random.default_rng(seed)
        self._inputs = rng.normal(
            size=(int(distinct_inputs), int(input_dim))).astype(np.dtype(dtype))
        #: Server.submit takes model=; MicroBatcher.submit does not
        self._takes_model = getattr(target, "registry", None) is not None

    # ------------------------------------------------------------------ #
    def run(self, offsets: Sequence[float],
            deadline_ms: Optional[float] = None, priority: int = 0,
            timeout_s: float = 120.0) -> TrafficReport:
        """Fire one request per offset; block until every outcome is known."""
        offsets = np.sort(np.asarray(offsets, dtype=np.float64))
        if len(offsets) == 0:
            raise ValueError("empty trace")
        if hasattr(self.target, "submit"):
            return self._run_open_loop(offsets, deadline_ms, priority,
                                       timeout_s)
        return self._run_blocking(offsets, deadline_ms, priority, timeout_s)

    def _run_open_loop(self, offsets: np.ndarray,
                       deadline_ms: Optional[float], priority: int,
                       timeout_s: float) -> TrafficReport:
        n = len(offsets)
        latencies = np.full(n, np.nan)
        outcomes: List[str] = ["error"] * n
        errors: List[str] = []
        pending = threading.Semaphore(0)
        finished = np.zeros(n)

        def resolve(index: int, sent: float, future) -> None:
            done = time.perf_counter()
            try:
                future.result(timeout=0)
            except BaseException as error:
                outcomes[index] = _classify(error)
                if outcomes[index] == "error":
                    errors.append(f"{type(error).__name__}: {error}")
            else:
                outcomes[index] = "ok"
            latencies[index] = (done - sent) * 1000.0
            finished[index] = done
            pending.release()

        start = time.perf_counter()

        def dispatch(indices) -> None:
            for i in indices:
                due = start + offsets[i]
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                row = self._inputs[i % len(self._inputs)]
                sent = time.perf_counter()
                try:
                    if self._takes_model:
                        future = self.target.submit(
                            row, model=self.model, priority=priority,
                            deadline_ms=deadline_ms)
                    else:
                        future = self.target.submit(
                            row, priority=priority, deadline_ms=deadline_ms)
                except BaseException as error:
                    # Synchronous refusal: admission shed (429), shutdown
                    # (503), validation (400) — all fail before queueing.
                    done = time.perf_counter()
                    outcomes[i] = _classify(error)
                    if outcomes[i] == "error":
                        errors.append(f"{type(error).__name__}: {error}")
                    latencies[i] = (done - sent) * 1000.0
                    finished[i] = done
                    pending.release()
                    continue
                future.add_done_callback(
                    lambda f, i=i, sent=sent: resolve(i, sent, f))

        # Round-robin the schedule across dispatch threads so a single
        # GIL-bound submit loop cannot itself become the bottleneck at
        # high arrival rates.
        threads = [threading.Thread(
            target=dispatch, args=(range(k, n, self.dispatch_threads),),
            daemon=True, name=f"repro-traffic-dispatch-{k}")
            for k in range(self.dispatch_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        harness_deadline = time.monotonic() + timeout_s
        for _ in range(n):
            remaining = harness_deadline - time.monotonic()
            if remaining <= 0 or not pending.acquire(timeout=remaining):
                errors.append("harness timeout: not every request resolved")
                break
        duration = max(float(finished.max()), time.perf_counter()) - start \
            if finished.any() else time.perf_counter() - start
        return TrafficReport(offsets=offsets, latencies_ms=latencies,
                             outcomes=outcomes, duration_s=duration,
                             deadline_ms=deadline_ms, errors=errors)

    def _run_blocking(self, offsets: np.ndarray,
                      deadline_ms: Optional[float], priority: int,
                      timeout_s: float) -> TrafficReport:
        n = len(offsets)
        latencies = np.full(n, np.nan)
        outcomes: List[str] = ["error"] * n
        errors: List[str] = []
        start = time.perf_counter()
        last_done = [start]
        lock = threading.Lock()

        def call(index: int) -> None:
            row = self._inputs[index % len(self._inputs)]
            sent = time.perf_counter()
            try:
                self.target.predict(row, model=self.model, priority=priority,
                                    deadline_ms=deadline_ms)
            except BaseException as error:
                outcomes[index] = _classify(error)
                if outcomes[index] == "error":
                    errors.append(f"{type(error).__name__}: {error}")
            else:
                outcomes[index] = "ok"
            done = time.perf_counter()
            latencies[index] = (done - sent) * 1000.0
            with lock:
                last_done[0] = max(last_done[0], done)

        with ThreadPoolExecutor(max_workers=self.client_threads) as pool:
            futures = []
            for i in range(n):
                delay = start + offsets[i] - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                futures.append(pool.submit(call, i))
            for future in futures:
                future.result(timeout=timeout_s)
        return TrafficReport(offsets=offsets, latencies_ms=latencies,
                             outcomes=outcomes,
                             duration_s=last_done[0] - start,
                             deadline_ms=deadline_ms, errors=errors)


# --------------------------------------------------------------------------- #
# Closing the loop: observed vs predicted
# --------------------------------------------------------------------------- #
def compare_prediction(report: TrafficReport,
                       prediction: CapacityPrediction) -> Dict[str, float]:
    """Relative errors of a prediction against one replay's observations.

    ``rel_error = |predicted - observed| / observed`` per metric; the
    benchmarks assert these against the documented bounds
    (:data:`~repro.serve.capacity.THROUGHPUT_ERROR_BOUND`,
    :data:`~repro.serve.capacity.LATENCY_ERROR_BOUND`).
    """
    def rel(observed: float, predicted: float) -> float:
        if not np.isfinite(observed) or observed <= 0:
            return float("nan")
        return abs(predicted - observed) / observed

    return {
        "throughput_rel_error": rel(report.throughput(),
                                    prediction.throughput),
        "p50_rel_error": rel(report.p50_ms(), prediction.p50_ms),
        "p99_rel_error": rel(report.p99_ms(), prediction.p99_ms),
        "shed_rate_observed": report.shed_rate(),
        "shed_rate_predicted": prediction.shed_rate,
    }
