"""A versioned in-process store of servable models.

The registry maps ``name -> {version -> servable}`` plus a ``latest``
pointer per name.  References are strings of the form ``name``,
``name@latest``, or ``name@<version>``; resolution is atomic under a lock
and returns the servable *object*, so a request that resolved version ``2``
keeps using those exact weights even if ``3`` is registered (or ``2`` is
retired) while the request is in flight — hot swaps never drop or corrupt
in-flight work.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from .artifact import Servable, ServableModel, load_servable

__all__ = ["ModelRegistry", "ModelNotFound", "parse_reference"]

LATEST = "latest"


class ModelNotFound(KeyError):
    """No servable matches the requested ``name@version`` reference."""


def parse_reference(reference: str) -> Tuple[str, str]:
    """Split ``name[@version]`` into ``(name, version)``; bare names mean latest."""
    if not reference or not isinstance(reference, str):
        raise ValueError(f"invalid model reference {reference!r}")
    name, _, version = reference.partition("@")
    if not name:
        raise ValueError(f"invalid model reference {reference!r}")
    return name, (version or LATEST)


class ModelRegistry:
    """Named, versioned servables with an atomically swappable latest pointer."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._models: Dict[str, "Dict[str, Servable]"] = {}
        self._latest: Dict[str, str] = {}
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, servable: Servable,
                 version: Optional[str] = None,
                 make_latest: bool = True) -> str:
        """Add a servable under ``name`` and return its version string.

        Versions auto-increment (``"1"``, ``"2"``, …) unless given
        explicitly.  With ``make_latest`` (default) the ``latest`` pointer
        swings to the new version in the same critical section — the hot
        swap is one atomic pointer update.
        """
        if not isinstance(servable, Servable):
            raise TypeError(f"expected a Servable (ServableModel or "
                            f"ServableEnsemble), got {type(servable).__name__}")
        with self._lock:
            versions = self._models.setdefault(name, {})
            if version is None:
                self._counters[name] = self._counters.get(name, 0) + 1
                version = str(self._counters[name])
            else:
                version = str(version)
                if version == LATEST:
                    raise ValueError(f"{LATEST!r} is a reserved version name")
            if version in versions:
                raise ValueError(f"model {name!r} already has version {version!r}")
            versions[version] = servable
            if make_latest or name not in self._latest:
                self._latest[name] = version
            return version

    def load(self, name: str, path: str, version: Optional[str] = None,
             make_latest: bool = True) -> str:
        """Load an exported artifact directory and register it."""
        return self.register(name, load_servable(path), version=version,
                             make_latest=make_latest)

    def unregister(self, name: str, version: Optional[str] = None) -> None:
        """Retire one version (or, with ``version=None``, the whole name).

        In-flight requests that already resolved the servable keep their
        reference; the registry only stops handing it out.
        """
        with self._lock:
            if name not in self._models:
                raise ModelNotFound(name)
            if version is None:
                del self._models[name]
                self._latest.pop(name, None)
                return
            version = str(version)
            versions = self._models[name]
            if version not in versions:
                raise ModelNotFound(f"{name}@{version}")
            del versions[version]
            if not versions:
                del self._models[name]
                self._latest.pop(name, None)
            elif self._latest.get(name) == version:
                # Fall back to the newest remaining registration order.
                self._latest[name] = next(reversed(versions))

    def set_latest(self, name: str, version: str) -> None:
        """Atomically repoint ``name@latest`` (e.g. a rollback)."""
        with self._lock:
            if name not in self._models or str(version) not in self._models[name]:
                raise ModelNotFound(f"{name}@{version}")
            self._latest[name] = str(version)

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def resolve(self, reference: str) -> Tuple[str, str, Servable]:
        """Resolve ``name[@version]`` to ``(name, concrete_version, servable)``."""
        name, version = parse_reference(reference)
        with self._lock:
            if name not in self._models:
                raise ModelNotFound(
                    f"no model named {name!r}; registered: {sorted(self._models)}")
            if version == LATEST:
                version = self._latest[name]
            servable = self._models[name].get(version)
            if servable is None:
                raise ModelNotFound(
                    f"model {name!r} has no version {version!r}; "
                    f"available: {self.versions(name)}")
            return name, version, servable

    def versions(self, name: str) -> List[str]:
        with self._lock:
            if name not in self._models:
                raise ModelNotFound(name)
            return list(self._models[name])

    def latest_version(self, name: str) -> str:
        with self._lock:
            if name not in self._latest:
                raise ModelNotFound(name)
            return self._latest[name]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._models)

    def manifest(self) -> List[str]:
        """Every registered pair as ``name@version`` strings, latest first.

        The flat shard manifest of this registry: what ``/healthz`` reports
        and what a fleet router uses to route ``model@version`` references
        to the replicas that can actually answer them.  The version the
        ``latest`` pointer designates leads each name's group.
        """
        with self._lock:
            entries: List[str] = []
            for name in sorted(self._models):
                latest = self._latest.get(name)
                ordered = sorted(self._models[name],
                                 key=lambda v: (v != latest, v))
                entries.extend(f"{name}@{version}" for version in ordered)
            return entries

    def describe(self) -> Dict[str, dict]:
        """A JSON-friendly listing of every registered servable."""
        with self._lock:
            return {
                name: {
                    "latest": self._latest[name],
                    "versions": {version: servable.describe()
                                 for version, servable in versions.items()},
                }
                for name, versions in self._models.items()
            }

    def __contains__(self, reference: str) -> bool:
        try:
            self.resolve(reference)
            return True
        except (ModelNotFound, ValueError):
            return False

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._models.values())
