"""``python -m repro.serve`` — stand up the JSON endpoint over artifacts.

Serve one or more exported end-model artifacts::

    python -m repro.serve artifacts/fmd
    python -m repro.serve --model fmd=artifacts/fmd --model demo=artifacts/demo \\
        --port 8080 --max-batch-size 64 --max-latency-ms 5
    python -m repro.serve artifacts/fmd --fleet 4        # 4 worker processes
    python -m repro.serve --model a=... --model b=... --fleet 2 --shard

With ``--fleet N`` the models are served by N **worker processes** behind a
routing front end (health checks, retry-on-death, respawn) instead of one
in-process server — same port, same client API, but throughput scales past
the GIL on multi-core hosts.  ``--shard`` partitions the models across the
fleet instead of replicating all of them on every worker.

With ``--demo``, a small synthetic workspace is built, the TAGLETS pipeline
is trained end to end, the end model *and* the taglet ensemble are exported
to a temporary directory, and the server starts on both (``default`` and
``ensemble``) — the zero-to-served smoke path CI exercises.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Tuple

from .artifact import export_end_model, export_ensemble
from .batching import BatchingConfig
from .fleet import FleetConfig, ServingFleet, replicated_specs, sharded_specs
from .http import make_http_server
from .server import Server


def _parse_models(args: argparse.Namespace) -> List[Tuple[str, str]]:
    models: List[Tuple[str, str]] = []
    for spec in args.model or []:
        name, separator, path = spec.partition("=")
        if not separator or not name or not path:
            raise SystemExit(f"--model expects name=path, got {spec!r}")
        models.append((name, path))
    taken = {name for name, _ in models}
    for path in args.artifacts:
        # The first positional artifact is served as 'default' (what a bare
        # POST /predict queries) unless a --model already claimed that name.
        name = "default" if "default" not in taken else f"model{len(models)}"
        taken.add(name)
        models.append((name, path))
    return models


def _train_demo_artifact(directory: str, seed: int = 0) -> Tuple[str, str]:
    """Train a quick small-workspace pipeline and export it (the CI smoke).

    Returns ``(end_model_path, ensemble_path)`` — both deployment shapes
    (the distilled student and the voted ensemble) from one run.
    """
    import os

    from ..core import Controller, ControllerConfig, Task
    from ..distill import EndModelConfig
    from ..kg import GraphSpec
    from ..modules import MultiTaskConfig, MultiTaskModule
    from ..synth import WorldSpec
    from ..workspace import Workspace, WorkspaceSpec

    print("demo: building a reduced workspace and training TAGLETS...",
          flush=True)
    spec = WorkspaceSpec(graph=GraphSpec(num_filler_concepts=300, seed=seed),
                         world=WorldSpec(seed=seed),
                         scads_images_per_concept=30, seed=seed)
    workspace = Workspace(spec)
    split = workspace.make_task_split("fmd", shots=5, split_seed=0)
    task = Task.from_split(split, scads=workspace.scads,
                           backbone=workspace.backbone("resnet50"),
                           wanted_num_related_class=3,
                           images_per_related_class=8)
    config = ControllerConfig(end_model=EndModelConfig(epochs=20),
                              dtype="float32", seed=seed)
    result = Controller(modules=[MultiTaskModule(MultiTaskConfig(epochs=10))],
                        config=config).run(task)
    accuracy = result.end_model_accuracy(split.test_features, split.test_labels)
    end_path = export_end_model(result, os.path.join(directory, "end-model"),
                                metrics={"test_accuracy": accuracy})
    print(f"demo: exported end model (test accuracy {accuracy:.3f}) "
          f"to {end_path}", flush=True)
    ensemble_accuracy = result.ensemble_accuracy(split.test_features,
                                                 split.test_labels)
    ensemble_path = export_ensemble(
        result, os.path.join(directory, "ensemble"),
        metrics={"test_accuracy": ensemble_accuracy})
    print(f"demo: exported {len(result.taglets)}-member ensemble "
          f"(test accuracy {ensemble_accuracy:.3f}) to {ensemble_path}",
          flush=True)
    return end_path, ensemble_path


def _attach_capacity(server: Server, model_name: str,
                     args: argparse.Namespace) -> None:
    """Calibrate, optionally autotune the batching knobs, attach admission.

    Runs the calibration probe against the first loaded model, prints the
    fitted service law, then — with ``--autotune-p99-ms`` — swaps the
    server's batching config for the cheapest one whose *predicted* p99
    meets the SLO at ``--autotune-rate`` (batchers are created lazily, so
    this is safe before traffic starts).  With ``--admission-max-delay-ms``
    it attaches the admission gate that turns hopeless requests into
    retryable 429s.  Everything lands on ``GET /capacity``.
    """
    from .capacity import (AdmissionController, CapacityModel, SLO,
                           calibrate_service_model)

    _, _, servable = server.registry.resolve(model_name)
    print(f"calibrating service model against {model_name!r}...", flush=True)
    service = calibrate_service_model(servable.predict_proba,
                                      input_dim=servable.input_dim,
                                      dtype=servable.dtype)
    print(f"  s(B) = {service.base_s * 1e3:.3f} ms "
          f"+ {service.per_row_s * 1e3:.4f} ms/row, "
          f"dispatch overhead {service.overhead_s * 1e6:.1f} us/req",
          flush=True)
    model = CapacityModel(service)
    if args.autotune_p99_ms is not None:
        slo = SLO(p99_ms=args.autotune_p99_ms)
        try:
            tuned, prediction = model.autotune(
                slo, arrival_rate=args.autotune_rate,
                base_config=server.batching)
        except ValueError as error:
            raise SystemExit(f"autotune: {error}")
        server.batching = tuned
        print(f"autotuned for p99 <= {args.autotune_p99_ms:.1f} ms at "
              f"{args.autotune_rate:.0f} req/s: "
              f"max_batch_size={tuned.max_batch_size} "
              f"max_latency_ms={tuned.max_latency_ms} "
              f"num_workers={tuned.num_workers} "
              f"(predicted p99 {prediction.p99_ms:.1f} ms, capacity "
              f"{prediction.capacity:.0f} req/s)", flush=True)
    if args.admission_max_delay_ms is not None:
        server.set_admission(AdmissionController(
            model, server.batching,
            max_delay_ms=args.admission_max_delay_ms))
        print(f"admission control armed: shedding (429) beyond "
              f"{args.admission_max_delay_ms:.1f} ms predicted wait",
              flush=True)
    else:
        server.capacity_model = model


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve exported TAGLETS end models over JSON/HTTP.")
    parser.add_argument("artifacts", nargs="*",
                        help="artifact directories (first is served as 'default')")
    parser.add_argument("--model", action="append", metavar="NAME=PATH",
                        help="serve PATH under NAME (repeatable)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="TCP port (0 picks an ephemeral port)")
    parser.add_argument("--max-batch-size", type=int, default=32,
                        help="rows fused into one forward (default 32)")
    parser.add_argument("--max-latency-ms", type=float, default=2.0,
                        help="max time the first request waits for a batch")
    parser.add_argument("--cache-size", type=int, default=1024,
                        help="LRU prediction-cache entries (0 disables)")
    parser.add_argument("--num-workers", type=int, default=1,
                        help="worker threads per model draining the batch "
                             "queue (forwards release the GIL; >1 overlaps "
                             "forwards on multi-core hosts)")
    parser.add_argument("--fleet", type=int, default=0, metavar="N",
                        help="serve with N worker processes behind a routing "
                             "front end (health checks, retry, respawn) "
                             "instead of one in-process server; 0 (default) "
                             "keeps the single-process path")
    parser.add_argument("--shard", action="store_true",
                        help="with --fleet: partition the models across the "
                             "workers instead of replicating every model on "
                             "every worker")
    parser.add_argument("--start-method", default="spawn",
                        choices=["spawn", "fork", "forkserver"],
                        help="multiprocessing start method for --fleet "
                             "workers (default: spawn)")
    parser.add_argument("--demo", action="store_true",
                        help="train a small synthetic pipeline and serve it "
                             "(both the end model and the taglet ensemble)")
    parser.add_argument("--autotune-p99-ms", type=float, default=None,
                        metavar="MS",
                        help="calibrate the default model, then replace the "
                             "batching knobs with the cheapest config whose "
                             "predicted p99 meets this SLO at "
                             "--autotune-rate (single-process only)")
    parser.add_argument("--autotune-rate", type=float, default=100.0,
                        metavar="REQ_PER_S",
                        help="arrival rate the autotuned SLO must hold at "
                             "(default 100 req/s)")
    parser.add_argument("--admission-max-delay-ms", type=float, default=None,
                        metavar="MS",
                        help="attach model-driven admission control: shed "
                             "requests (HTTP 429, retryable) whose predicted "
                             "queue wait exceeds this budget, or whose own "
                             "deadline cannot be met (single-process only)")
    args = parser.parse_args(argv)

    batching = BatchingConfig(max_batch_size=args.max_batch_size,
                              max_latency_ms=args.max_latency_ms,
                              cache_size=args.cache_size,
                              num_workers=args.num_workers)

    models = _parse_models(args)
    if args.demo:
        demo_dir = tempfile.mkdtemp(prefix="repro-serve-demo-")
        end_path, ensemble_path = _train_demo_artifact(demo_dir)
        models = [("default", end_path), ("ensemble", ensemble_path)] + models
    if not models:
        parser.error("nothing to serve: pass artifact paths, --model, or --demo")

    capacity_flags = (args.autotune_p99_ms is not None
                      or args.admission_max_delay_ms is not None)
    if args.fleet > 0:
        if capacity_flags:
            print("warning: --autotune-p99-ms/--admission-max-delay-ms "
                  "calibrate against an in-process servable and are ignored "
                  "with --fleet", file=sys.stderr, flush=True)
        specs = (sharded_specs(models, args.fleet) if args.shard
                 else replicated_specs(models, args.fleet))
        fleet = ServingFleet(specs, FleetConfig(
            batching=batching, start_method=args.start_method))
        print(f"spawning {args.fleet} serving worker process(es) "
              f"({'sharded' if args.shard else 'replicated'}, "
              f"{args.start_method})...", flush=True)
        fleet.start()
        for replica_id, (host, port) in sorted(fleet.addresses().items()):
            served = sorted(fleet.router.replica(replica_id).versions)
            print(f"  {replica_id} on {host}:{port} serving {served}",
                  flush=True)
        app = fleet.router
    else:
        fleet = None
        server = Server(batching=batching)
        for name, path in models:
            version = server.load(name, path)
            print(f"loaded {name}@{version} from {path}", flush=True)
        if capacity_flags:
            _attach_capacity(server, models[0][0], args)
        app = server

    httpd = make_http_server(app, host=args.host, port=args.port)
    host, port = httpd.server_address[:2]
    count = len(models)
    print(f"serving {count} model(s) on http://{host}:{port} "
          f"(POST /predict, GET /models, /stats, /healthz, /capacity)",
          flush=True)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        print("shutting down...", flush=True)
    finally:
        httpd.shutdown()
        if fleet is not None:
            fleet.close()
        else:
            server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
