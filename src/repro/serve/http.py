"""A stdlib JSON-over-HTTP front end for :class:`~repro.serve.Server`.

No web framework — ``http.server.ThreadingHTTPServer`` handles each
connection on its own thread, and those threads all feed the same
micro-batching queue, so concurrent HTTP clients are fused into shared
forwards exactly like in-process callers.

Routes::

    GET  /healthz   -> {"status": "ok", "draining": false, "queue_depth": 0,
                        "workers": {...}, "models": ["name@version", ...]}
    GET  /models    -> registry listing (manifest summaries per version)
    GET  /stats     -> per-model batcher counters
    GET  /describe  -> full server description (models + batching + stats)
    GET  /capacity  -> calibrated capacity model + admission-control state
                       (queue depth, predicted wait, shed counters)
    POST /predict   -> {"model": "name[@version]", "inputs": [[...], ...],
                        "return_probabilities": false,
                        "priority": 0, "deadline_ms": null}

Fleet worker processes additionally expose an admin plane (opt-in via
``make_http_server(..., admin=True)`` — never enabled on a public router
port)::

    POST /admin/load   -> {"name": ..., "path": ..., "version": null,
                           "make_latest": true}   # hot-swap an artifact in
    POST /admin/drain  -> {"draining": true}      # advisory drain flag

The handler serves any app exposing the small ``predict`` / ``health`` /
``models`` / ``stats`` / ``describe`` surface — the in-process
:class:`~repro.serve.Server` and the fleet
:class:`~repro.serve.router.Router` both do, which is what keeps the
client API identical whether one process or a fleet answers.

Error mapping: a malformed request (bad JSON, wrong feature width or
dtype) is the client's fault and returns **400** — and, because requests
are validated before they are fused, it fails alone without disturbing the
valid requests batched alongside it.  A request whose ``deadline_ms``
passes while it queues returns **504**.  Unknown models are **404**; a
server that is shutting down answers **503** (retryable — a fleet router
fails the request over to a healthy replica); a request shed by
model-driven admission control answers **429** (retryable — the request
was fine, this replica just predicted it could not serve it in budget);
only genuine serving failures return **500**.
"""

from __future__ import annotations

import json
import socket as socket_module
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from .batching import DeadlineExceeded, Overloaded, ShuttingDown
from .registry import ModelNotFound
from .server import Server

__all__ = ["make_http_server", "start_http_server"]

#: Largest accepted request body (a crude guard against unbounded reads).
MAX_BODY_BYTES = 64 * 1024 * 1024


class _ServeHandler(BaseHTTPRequestHandler):
    """Dispatches HTTP requests to the attached :class:`Server`."""

    server_version = "repro-serve/3.0"
    #: the attached Server (or Router) instance (set by :func:`make_http_server`)
    serve_app: Server
    #: whether the /admin/* control plane is exposed (fleet workers only)
    admin_enabled: bool = False

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the caller's business, not stderr's

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
        app = type(self).serve_app
        if self.path == "/healthz":
            self._send_json(app.health())
        elif self.path == "/models":
            self._send_json(app.models())
        elif self.path == "/stats":
            self._send_json(app.stats())
        elif self.path == "/describe":
            self._send_json(app.describe())
        elif self.path == "/capacity":
            capacity = getattr(app, "capacity", None)
            if capacity is None:
                self._send_error_json(
                    404, "this app exposes no capacity surface")
            else:
                self._send_json(capacity())
        else:
            self._send_error_json(404, f"unknown path {self.path!r}")

    def _read_json_body(self) -> Optional[dict]:
        """Parse the request body as JSON; answers the error itself (and
        returns ``None``) when the body is missing or malformed."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._send_error_json(400, "invalid Content-Length")
            return None
        if length <= 0:
            self._send_error_json(400, "request body required (JSON)")
            return None
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413, f"request body of {length} bytes exceeds the "
                     f"{MAX_BODY_BYTES}-byte limit — split the batch")
            return None
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_error_json(400, f"invalid JSON body: {error}")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(400, "JSON body must be an object")
            return None
        return payload

    def _do_admin(self, payload: dict) -> None:
        """The fleet control plane: hot-swap loads and drain flags."""
        app = type(self).serve_app
        if self.path == "/admin/load":
            name = payload.get("name")
            path = payload.get("path")
            if not name or not path:
                self._send_error_json(400, "'name' and 'path' are required")
                return
            try:
                version = app.load(str(name), str(path),
                                   version=payload.get("version"),
                                   make_latest=bool(payload.get("make_latest",
                                                                True)))
            except Exception as error:
                self._send_error_json(400, f"{type(error).__name__}: {error}")
                return
            self._send_json({"name": str(name), "version": version})
        elif self.path == "/admin/drain":
            app.set_draining(bool(payload.get("draining", True)))
            self._send_json(app.health())
        else:
            self._send_error_json(404, f"unknown admin path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib API name)
        app = type(self).serve_app
        if self.path.startswith("/admin/"):
            if not type(self).admin_enabled:
                self._send_error_json(
                    404, "admin endpoints are not enabled on this server")
                return
            payload = self._read_json_body()
            if payload is not None:
                self._do_admin(payload)
            return
        if self.path != "/predict":
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._send_error_json(400, "invalid Content-Length")
            return
        if length <= 0:
            self._send_error_json(400, "request body required (JSON)")
            return
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413, f"request body of {length} bytes exceeds the "
                     f"{MAX_BODY_BYTES}-byte limit — split the batch")
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_error_json(400, f"invalid JSON body: {error}")
            return

        model = payload.get("model", "default")
        inputs = payload.get("inputs")
        if inputs is None:
            self._send_error_json(400, "missing 'inputs'")
            return
        try:
            array = np.asarray(inputs, dtype=np.float64)
        except (TypeError, ValueError) as error:
            self._send_error_json(400, f"inputs are not numeric: {error}")
            return
        if array.ndim not in (1, 2) or array.size == 0:
            self._send_error_json(
                400, f"inputs must be one example or a non-empty batch, "
                     f"got shape {array.shape}")
            return
        # null is treated like an absent field for both optional knobs.
        priority = payload.get("priority")
        try:
            priority = 0 if priority is None else int(priority)
        except (TypeError, ValueError):
            self._send_error_json(400, "'priority' must be an integer")
            return
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            try:
                deadline_ms = float(deadline_ms)
            except (TypeError, ValueError):
                self._send_error_json(
                    400, "'deadline_ms' must be a number of milliseconds")
                return
        try:
            response = app.predict(
                array, model=str(model),
                return_probabilities=bool(payload.get("return_probabilities",
                                                      False)),
                priority=priority, deadline_ms=deadline_ms)
        except ModelNotFound as error:
            self._send_error_json(404, str(error))
            return
        except DeadlineExceeded as error:
            self._send_error_json(504, str(error))
            return
        except Overloaded as error:
            # Retryable: admission control shed the request before it
            # queued — another replica (or a later retry) can serve it.
            self._send_error_json(429, str(error))
            return
        except ShuttingDown as error:
            # Retryable: the process is going away, the request was fine.
            self._send_error_json(503, str(error))
            return
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        except Exception as error:  # a serving failure, not a client error
            self._send_error_json(500, f"{type(error).__name__}: {error}")
            return
        self._send_json(response)


def make_http_server(app: Server, host: str = "127.0.0.1",
                     port: int = 8080,
                     sock: Optional[socket_module.socket] = None,
                     admin: bool = False) -> ThreadingHTTPServer:
    """Build (but do not start) an HTTP server bound to ``app``.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``httpd.server_address``.  With ``sock``, the server adopts an
    already-bound, already-listening socket instead of binding its own —
    the socket-activation handoff fleet worker processes use: the parent
    binds the replica's port, keeps its copy, and passes a duplicate to
    each (re)spawned worker, so the address survives worker death and
    connections queued in the listen backlog are answered by the
    replacement.  ``admin=True`` exposes the ``/admin/*`` control plane
    (fleet workers only; never on a public router port).
    """
    handler = type("BoundServeHandler", (_ServeHandler,),
                   {"serve_app": app, "admin_enabled": admin})
    # The stdlib default listen backlog (5) drops connections under the
    # very request bursts micro-batching exists to absorb.
    server_cls = type("ServeHTTPServer", (ThreadingHTTPServer,),
                      {"request_queue_size": 128, "daemon_threads": True})
    if sock is None:
        return server_cls((host, port), handler)
    httpd = server_cls(sock.getsockname()[:2], handler, bind_and_activate=False)
    httpd.socket.close()    # drop the placeholder; adopt the inherited one
    httpd.socket = sock
    httpd.server_address = sock.getsockname()
    httpd.server_activate()
    return httpd


def start_http_server(app: Server, host: str = "127.0.0.1",
                      port: int = 8080) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Start the endpoint on a background thread; returns (httpd, thread).

    Stop with ``httpd.shutdown()`` followed by ``app.close()``.
    """
    httpd = make_http_server(app, host=host, port=port)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True,
                              name="repro-serve-http")
    thread.start()
    return httpd, thread
