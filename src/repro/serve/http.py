"""A stdlib JSON-over-HTTP front end for :class:`~repro.serve.Server`.

No web framework — ``http.server.ThreadingHTTPServer`` handles each
connection on its own thread, and those threads all feed the same
micro-batching queue, so concurrent HTTP clients are fused into shared
forwards exactly like in-process callers.

Routes::

    GET  /healthz   -> {"status": "ok"}
    GET  /models    -> registry listing (manifest summaries per version)
    GET  /stats     -> per-model batcher counters
    GET  /describe  -> full server description (models + batching + stats)
    POST /predict   -> {"model": "name[@version]", "inputs": [[...], ...],
                        "return_probabilities": false,
                        "priority": 0, "deadline_ms": null}

Error mapping: a malformed request (bad JSON, wrong feature width or
dtype) is the client's fault and returns **400** — and, because requests
are validated before they are fused, it fails alone without disturbing the
valid requests batched alongside it.  A request whose ``deadline_ms``
passes while it queues returns **504**.  Unknown models are **404**; only
genuine serving failures return **500**.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

import numpy as np

from .batching import DeadlineExceeded
from .registry import ModelNotFound
from .server import Server

__all__ = ["make_http_server", "start_http_server"]

#: Largest accepted request body (a crude guard against unbounded reads).
MAX_BODY_BYTES = 64 * 1024 * 1024


class _ServeHandler(BaseHTTPRequestHandler):
    """Dispatches HTTP requests to the attached :class:`Server`."""

    server_version = "repro-serve/2.0"
    #: the attached Server instance (set by :func:`make_http_server`)
    serve_app: Server

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the caller's business, not stderr's

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
        app = type(self).serve_app
        if self.path == "/healthz":
            self._send_json({"status": "ok"})
        elif self.path == "/models":
            self._send_json(app.registry.describe())
        elif self.path == "/stats":
            self._send_json(app.stats())
        elif self.path == "/describe":
            self._send_json(app.describe())
        else:
            self._send_error_json(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib API name)
        app = type(self).serve_app
        if self.path != "/predict":
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._send_error_json(400, "invalid Content-Length")
            return
        if length <= 0:
            self._send_error_json(400, "request body required (JSON)")
            return
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413, f"request body of {length} bytes exceeds the "
                     f"{MAX_BODY_BYTES}-byte limit — split the batch")
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_error_json(400, f"invalid JSON body: {error}")
            return

        model = payload.get("model", "default")
        inputs = payload.get("inputs")
        if inputs is None:
            self._send_error_json(400, "missing 'inputs'")
            return
        try:
            array = np.asarray(inputs, dtype=np.float64)
        except (TypeError, ValueError) as error:
            self._send_error_json(400, f"inputs are not numeric: {error}")
            return
        if array.ndim not in (1, 2) or array.size == 0:
            self._send_error_json(
                400, f"inputs must be one example or a non-empty batch, "
                     f"got shape {array.shape}")
            return
        # null is treated like an absent field for both optional knobs.
        priority = payload.get("priority")
        try:
            priority = 0 if priority is None else int(priority)
        except (TypeError, ValueError):
            self._send_error_json(400, "'priority' must be an integer")
            return
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            try:
                deadline_ms = float(deadline_ms)
            except (TypeError, ValueError):
                self._send_error_json(
                    400, "'deadline_ms' must be a number of milliseconds")
                return
        try:
            response = app.predict(
                array, model=str(model),
                return_probabilities=bool(payload.get("return_probabilities",
                                                      False)),
                priority=priority, deadline_ms=deadline_ms)
        except ModelNotFound as error:
            self._send_error_json(404, str(error))
            return
        except DeadlineExceeded as error:
            self._send_error_json(504, str(error))
            return
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        except Exception as error:  # a serving failure, not a client error
            self._send_error_json(500, f"{type(error).__name__}: {error}")
            return
        self._send_json(response)


def make_http_server(app: Server, host: str = "127.0.0.1",
                     port: int = 8080) -> ThreadingHTTPServer:
    """Build (but do not start) an HTTP server bound to ``app``.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``httpd.server_address``.
    """
    handler = type("BoundServeHandler", (_ServeHandler,), {"serve_app": app})
    # The stdlib default listen backlog (5) drops connections under the
    # very request bursts micro-batching exists to absorb.
    server_cls = type("ServeHTTPServer", (ThreadingHTTPServer,),
                      {"request_queue_size": 128, "daemon_threads": True})
    return server_cls((host, port), handler)


def start_http_server(app: Server, host: str = "127.0.0.1",
                      port: int = 8080) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Start the endpoint on a background thread; returns (httpd, thread).

    Stop with ``httpd.shutdown()`` followed by ``app.close()``.
    """
    httpd = make_http_server(app, host=host, port=port)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True,
                              name="repro-serve-http")
    thread.start()
    return httpd, thread
