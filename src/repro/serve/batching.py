"""Dynamic micro-batching: many concurrent requests, one fused forward.

The serving hot path has the same shape as the training fast path: NumPy's
per-call overhead dwarfs the arithmetic at small batch sizes, so answering
each request with its own forward wastes most of the machine.  The
:class:`MicroBatcher` instead drains a request queue on one or more worker
threads into batches bounded by ``max_batch_size`` and ``max_latency_ms``,
runs *one* forward over the concatenated rows, and fans the result rows back
out to per-request futures — the batched-routing shape of distributed
serving stacks, scaled to one process.

Traffic shaping: requests carry an optional **priority** (higher drains
first; FIFO within a level) and an optional **deadline** — a request whose
deadline passes while it queues fails fast with :class:`DeadlineExceeded`
instead of occupying rows in a forward.  With ``num_workers > 1`` several
workers drain the same queue concurrently: module forwards are BLAS-bound
and release the GIL, so on a multi-core host forwards genuinely overlap
(the batch quantum stays fixed, so served bits do not depend on which
worker answered).

Isolation: a request is validated against the servable's feature width and
dtype *at submit time*, so one malformed request fails alone with a
``ValueError`` instead of poisoning every innocent request fused into its
batch.

An LRU prediction cache keyed by input digest sits in front of the forward:
repeated requests (health probes, hot queries) are answered without touching
the model.
"""

from __future__ import annotations

import hashlib
import heapq
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = ["BatchingConfig", "BatcherStats", "DeadlineExceeded",
           "MicroBatcher", "Overloaded", "ShuttingDown", "input_digest",
           "run_at_quantum"]


class DeadlineExceeded(RuntimeError):
    """A request's deadline passed before a worker could serve it."""


class Overloaded(RuntimeError):
    """The server shed this request *before* queueing it (HTTP 429).

    Raised by model-driven admission control (see
    :class:`repro.serve.capacity.AdmissionController`) when the predicted
    queueing delay already exceeds the latency budget — the request would
    only expire in the queue, so it is refused up front while it is still
    cheap to retry elsewhere.  Retryable by design: a fleet router fails a
    429 over to a less-loaded replica.
    """


class ShuttingDown(RuntimeError):
    """The batcher (or server) is stopping and cannot answer this request.

    Raised synchronously by ``submit`` on a closed batcher, and set on the
    futures of queued requests that a non-draining shutdown (or a drain
    that ran out of time) will never serve — clients fail fast instead of
    hanging on a future nobody will ever resolve.  A ``RuntimeError``
    subclass, so callers that caught the old closed-batcher error keep
    working.
    """


def run_at_quantum(fn, rows: np.ndarray, quantum: int) -> np.ndarray:
    """Run ``fn`` over ``rows`` in chunks of *exactly* ``quantum`` rows.

    Short chunks (including the tail) are padded by repeating their last row
    and the padding is stripped from the output.  Fixing the row count of
    every call is what makes predictions bit-for-bit reproducible: BLAS gemm
    kernels pick different reduction orders for different row counts, so a
    row's result is a pure function of (row, weights, batch rows).  Both the
    micro-batcher and offline quantized inference
    (``ServableModel.predict_logits(x, batch_size=...)``) go through this
    one implementation, which is what keeps them bit-identical.
    """
    chunks: List[np.ndarray] = []
    for start in range(0, len(rows), quantum):
        chunk = rows[start:start + quantum]
        short = quantum - len(chunk)
        if short > 0:
            padded = np.concatenate(
                [chunk, np.repeat(chunk[-1:], short, axis=0)])
            chunks.append(fn(padded)[:-short])
        else:
            chunks.append(fn(chunk))
    return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]


@dataclass
class BatchingConfig:
    """Knobs of the dynamic micro-batching engine.

    ``max_batch_size`` bounds the rows fused into one forward;
    ``max_latency_ms`` bounds how long the first request of a batch waits
    for company.  ``max_batch_size=1`` degenerates to one forward per
    request (the unbatched baseline the serving benchmark compares against).
    """

    max_batch_size: int = 32
    max_latency_ms: float = 2.0
    #: LRU prediction-cache capacity in entries; 0 disables caching.
    cache_size: int = 1024
    #: queue capacity; 0 means unbounded.  When bounded, ``submit`` blocks
    #: once the backlog is full (back-pressure instead of memory growth).
    max_queue_size: int = 0
    #: run every forward at *exactly* ``max_batch_size`` rows, padding
    #: smaller batches and chunking larger ones.  BLAS gemm kernels pick
    #: different reduction orders for different row counts, so a row's
    #: result is a pure function of (row, weights, batch rows) — fixing the
    #: row count makes every served prediction bit-for-bit reproducible
    #: regardless of what traffic it happened to share a batch with, equal
    #: to offline inference at the same quantum
    #: (``ServableModel.predict_proba(x, batch_size=max_batch_size)``).
    pad_to_max_batch: bool = True
    #: worker threads draining the queue.  Forwards are BLAS-bound and
    #: release the GIL, so on a multi-core host N workers genuinely overlap
    #: N forwards; on a single CPU extra workers only add switching, so the
    #: default stays 1.  Bit-determinism is preserved at any worker count:
    #: with ``pad_to_max_batch`` every forward runs at the fixed quantum,
    #: and a row's result does not depend on which worker ran it.
    num_workers: int = 1

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_latency_ms < 0:
            raise ValueError("max_latency_ms must be >= 0")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")


@dataclass
class BatcherStats:
    """Counters exposed by ``MicroBatcher.stats()`` (and ``GET /stats``)."""

    requests: int = 0
    examples: int = 0
    batches: int = 0
    batched_examples: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    largest_batch: int = 0
    #: requests answered with a prediction (cache hits included).  Together
    #: with the failure counters this conserves accepted traffic: once all
    #: futures have resolved, ``requests == served + expired + shed +
    #: errors`` (``rejected`` requests never count into ``requests`` — they
    #: fail synchronously at submit).
    served: int = 0
    #: requests whose forward raised — the error fanned out to the batch
    errors: int = 0
    #: requests rejected at submit (wrong width/dtype/shape) — each failed
    #: alone, no batch-mate ever saw them
    rejected: int = 0
    #: requests whose deadline passed before a forward could serve them —
    #: or, the forward done, before the result could be delivered (a
    #: request never completes successfully after its own deadline)
    expired: int = 0
    #: queued requests failed fast with :class:`ShuttingDown` because the
    #: batcher stopped before a worker could serve them
    shed: int = 0

    def add(self, other: "BatcherStats") -> "BatcherStats":
        """Accumulate ``other`` into this instance (counters sum,
        ``largest_batch`` takes the max); returns ``self``.  Iterates the
        dataclass fields so a newly added counter aggregates automatically
        instead of being silently dropped from rollups."""
        for field in fields(self):
            if field.name == "largest_batch":
                self.largest_batch = max(self.largest_batch,
                                         other.largest_batch)
            else:
                setattr(self, field.name,
                        getattr(self, field.name) + getattr(other, field.name))
        return self

    def copy(self) -> "BatcherStats":
        return BatcherStats().add(self)

    def as_dict(self) -> Dict[str, float]:
        mean = (self.batched_examples / self.batches) if self.batches else 0.0
        return {"requests": self.requests, "examples": self.examples,
                "batches": self.batches, "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "largest_batch": self.largest_batch,
                "mean_batch_size": round(mean, 2),
                "served": self.served, "errors": self.errors,
                "rejected": self.rejected, "expired": self.expired,
                "shed": self.shed}


def input_digest(features: np.ndarray, salt: str = "") -> str:
    """Digest of one request's input rows (the prediction-cache key).

    Covers shape, dtype, and raw bytes; ``salt`` carries the model
    fingerprint so a hot-swap never serves stale cached predictions.  The
    micro-batcher digests the rows *after* normalizing them to the
    servable's dtype, so identical rows submitted as float32 vs float64
    share one cache entry.
    """
    array = np.ascontiguousarray(features)
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(str(array.shape).encode("utf-8"))
    digest.update(str(array.dtype).encode("utf-8"))
    digest.update(array.tobytes())
    return digest.hexdigest()


class _LRUCache:
    """A tiny thread-safe LRU map (digest -> prediction rows)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[np.ndarray]:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: str, value: np.ndarray) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _Request:
    __slots__ = ("features", "future", "rows", "single", "digest",
                 "enqueued_at", "priority", "deadline", "sort_key")

    def __init__(self, features: np.ndarray, single: bool,
                 priority: int = 0, deadline: Optional[float] = None):
        self.features = features
        self.future: "Future[np.ndarray]" = Future()
        self.rows = len(features)
        self.single = single
        self.digest: Optional[str] = None
        self.enqueued_at = time.perf_counter()
        self.priority = priority
        #: absolute ``time.perf_counter()`` instant, or None for no deadline
        self.deadline = deadline
        #: heap key assigned by the queue; reused when a request that would
        #: overflow a batch is handed back, so it keeps its place in line
        self.sort_key: Optional[tuple] = None

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.perf_counter()) > self.deadline


#: Sentinel asking the worker threads to drain the queue and exit.
_SHUTDOWN = object()


class _RequestQueue:
    """A blocking priority queue of requests (plus the shutdown sentinel).

    Orders by ``(-priority, enqueue_seq)``: higher priorities drain first,
    FIFO within a priority level.  The shutdown sentinel sorts *after*
    every request, so by the time any worker pops it the queue holds no
    unanswered work — which is what lets N workers share one queue and one
    sentinel.  ``maxsize=0`` means unbounded; when bounded, ``put`` blocks
    (back-pressure) unless forced.
    """

    def __init__(self, maxsize: int = 0):
        self._maxsize = maxsize
        self._heap: List[tuple] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)

    def put(self, item, force: bool = False) -> None:
        with self._lock:
            if self._maxsize > 0 and not force:
                while len(self._heap) >= self._maxsize:
                    self._not_full.wait()
            self._seq += 1
            # Keys are unique (the sequence number is embedded), so heap
            # comparisons never fall through to the item itself.
            if item is _SHUTDOWN:
                key = (float("inf"), self._seq)
            else:
                key = (-item.priority, self._seq)
                item.sort_key = key
            heapq.heappush(self._heap, (key, item))
            self._not_empty.notify()

    def put_back(self, request: "_Request") -> None:
        """Re-insert a popped request under its original key (it keeps its
        place in line).  Never blocks — a worker handing work back must not
        deadlock against a full queue."""
        with self._lock:
            heapq.heappush(self._heap, (request.sort_key, request))
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None):
        """Pop the highest-priority item, blocking up to ``timeout`` seconds
        (``None`` blocks forever).  Raises ``queue.Empty`` on timeout."""
        with self._lock:
            if timeout is None:
                while not self._heap:
                    self._not_empty.wait()
            else:
                deadline = time.monotonic() + timeout
                while not self._heap:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise queue.Empty
                    self._not_empty.wait(remaining)
            _, item = heapq.heappop(self._heap)
            if self._maxsize > 0:
                self._not_full.notify()
            return item

    def drain_pending(self) -> List["_Request"]:
        """Atomically remove and return every queued *request*.

        The shutdown sentinel (if queued) stays put so workers still wake
        up and exit.  Used by a non-draining ``close`` to fail pending
        futures fast instead of leaving clients hanging.
        """
        with self._lock:
            requests = [item for _, item in self._heap if item is not _SHUTDOWN]
            self._heap = [(key, item) for key, item in self._heap
                          if item is _SHUTDOWN]
            heapq.heapify(self._heap)
            if self._maxsize > 0:
                self._not_full.notify_all()
            return requests

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for _, item in self._heap if item is not _SHUTDOWN)


class MicroBatcher:
    """Queue requests, fuse them into batches, fan results back out.

    ``predict_fn`` maps a ``(n, d)`` float array to an ``(n, k)`` array;
    rows are independent (as in any batched model forward), which is what
    makes fan-out/fan-in sound.  With ``num_workers == 1`` a single daemon
    worker thread owns the model forward, so the model itself needs no
    thread safety; with more workers ``predict_fn`` must be safe to call
    concurrently (true of the read-only compiled servable forwards — see
    :mod:`repro.serve.artifact`).

    ``input_dim`` / ``dtype``, when given (the :class:`~repro.serve.Server`
    plumbs them from the servable), are enforced at :meth:`submit`: a
    request with the wrong feature width or an uncastable dtype raises
    ``ValueError`` immediately and alone, and every request is normalized to
    the servable dtype *before* it is digested or fused — so a malformed or
    mixed-dtype request can never poison the batch-mates it would have been
    fused with, and identical rows share one cache entry regardless of the
    dtype they were submitted as.
    """

    def __init__(self, predict_fn: Callable[[np.ndarray], np.ndarray],
                 config: Optional[BatchingConfig] = None,
                 cache_salt: str = "",
                 input_dim: Optional[int] = None,
                 dtype: Optional[np.dtype] = None):
        self.predict_fn = predict_fn
        self.config = config or BatchingConfig()
        self.cache_salt = cache_salt
        self.input_dim = input_dim
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self._cache = _LRUCache(self.config.cache_size)
        self._queue = _RequestQueue(self.config.max_queue_size)
        self._stats = BatcherStats()
        self._stats_lock = threading.Lock()
        self._closed = False
        # Serializes enqueues against close(): a request put under this lock
        # is guaranteed to sort ahead of the shutdown sentinel, so a worker
        # always answers it before exiting (no future ever hangs).
        self._submit_lock = threading.Lock()
        self._worker_stats = [BatcherStats()
                              for _ in range(self.config.num_workers)]
        self._workers = [
            threading.Thread(target=self._run, args=(stats,), daemon=True,
                             name=f"repro-serve-batcher-{i}")
            for i, stats in enumerate(self._worker_stats)]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def _validate(self, features: np.ndarray) -> np.ndarray:
        """Shape/width/dtype checks + dtype normalization for one request.

        Raises ``ValueError`` on a malformed request — synchronously, before
        the request can ever reach a fused batch — and returns the array
        normalized to the servable dtype otherwise.
        """
        array = np.asarray(features)
        if array.ndim not in (1, 2) or array.size == 0:
            raise ValueError(f"expected (d,) or non-empty (n, d) input, "
                             f"got shape {array.shape}")
        width = array.shape[-1]
        if self.input_dim is not None and width != self.input_dim:
            raise ValueError(
                f"request has {width} features per row; this model takes "
                f"{self.input_dim}")
        if self.dtype is not None and array.dtype != self.dtype:
            if not np.can_cast(array.dtype, self.dtype, casting="same_kind"):
                raise ValueError(
                    f"request dtype {array.dtype} cannot be cast to the "
                    f"model dtype {self.dtype}")
            array = array.astype(self.dtype)
        return array

    def submit(self, features: np.ndarray, priority: int = 0,
               deadline_ms: Optional[float] = None) -> "Future[np.ndarray]":
        """Enqueue one request; the future resolves to its prediction rows.

        ``features`` may be a single example ``(d,)`` or a block ``(n, d)``;
        the future carries matching ``(k,)`` or ``(n, k)`` predictions.
        Higher ``priority`` requests drain first (FIFO within a level).
        With ``deadline_ms``, a request still queued that many milliseconds
        from now fails with :class:`DeadlineExceeded` instead of occupying
        rows in a forward.
        """
        if self._closed:
            raise ShuttingDown("MicroBatcher is closed")
        try:
            array = self._validate(features)
        except ValueError:
            with self._stats_lock:
                self._stats.rejected += 1
            raise
        single = array.ndim == 1
        if single:
            array = array[None, :]
        deadline = None
        if deadline_ms is not None:
            deadline = time.perf_counter() + float(deadline_ms) / 1000.0
        request = _Request(array, single=single, priority=int(priority),
                           deadline=deadline)
        with self._stats_lock:
            self._stats.requests += 1
            self._stats.examples += request.rows
        if request.expired():
            self._expire(request)
            return request.future
        # Answer straight from the cache when possible — no queue, no batch.
        if self.config.cache_size > 0:
            request.digest = input_digest(array, self.cache_salt)
            cached = self._cache.get(request.digest)
            if cached is not None:
                with self._stats_lock:
                    self._stats.cache_hits += 1
                    self._stats.served += 1
                # A fresh copy per hit: a caller mutating its result in
                # place must never corrupt what later requests are served.
                result = cached.copy()
                request.future.set_result(result[0] if single else result)
                return request.future
            with self._stats_lock:
                self._stats.cache_misses += 1
        with self._submit_lock:
            if self._closed:
                raise ShuttingDown("MicroBatcher is closed")
            self._queue.put(request)
        return request.future

    def predict(self, features: np.ndarray,
                timeout: Optional[float] = None, priority: int = 0,
                deadline_ms: Optional[float] = None) -> np.ndarray:
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(features, priority=priority,
                           deadline_ms=deadline_ms).result(timeout=timeout)

    def snapshot(self) -> BatcherStats:
        """All counters rolled up across workers, as one BatcherStats."""
        with self._stats_lock:
            merged = self._stats.copy()
            for worker_stats in self._worker_stats:
                merged.add(worker_stats)
        return merged

    def worker_breakdown(self) -> Optional[List[Dict[str, int]]]:
        """Per-worker batch counters, or ``None`` with a single worker."""
        if self.config.num_workers <= 1:
            return None
        with self._stats_lock:
            return [{"batches": ws.batches,
                     "batched_examples": ws.batched_examples,
                     "largest_batch": ws.largest_batch}
                    for ws in self._worker_stats]

    def stats(self, merged: Optional[BatcherStats] = None) -> Dict[str, object]:
        """Rolled-up counters plus worker metadata, as one JSON-ready dict.

        ``merged`` substitutes pre-merged counters (the :class:`Server`
        passes the snapshot combined with a retired predecessor's counters)
        so every ``stats`` consumer shares this one entry shape.
        """
        stats = merged if merged is not None else self.snapshot()
        result: Dict[str, object] = stats.as_dict()
        result["num_workers"] = self.config.num_workers
        breakdown = self.worker_breakdown()
        if breakdown is not None:   # the live batcher's share only
            result["per_worker"] = breakdown
        return result

    def close(self, timeout: Optional[float] = 10.0,
              drain: bool = True) -> None:
        """Stop accepting work and shut the workers down.

        With ``drain`` (the default) everything already queued is still
        served before the workers exit.  With ``drain=False`` — a replica
        being torn down, a server that must stop *now* — queued requests
        fail fast with :class:`ShuttingDown` instead.  Either way, any
        request still queued once the join ``timeout`` lapses (a worker
        wedged inside a forward, say) is failed with :class:`ShuttingDown`
        rather than left as a future nobody will ever resolve: a stopping
        batcher never hangs its clients.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                self._shed(self._queue.drain_pending())
            # One sentinel is enough for N workers: it sorts after every
            # request, and each exiting worker re-enqueues it for the next.
            self._queue.put(_SHUTDOWN, force=True)
        # One shared deadline across all joins, so the worst case is
        # ``timeout`` total — not ``timeout`` per worker.
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        for worker in self._workers:
            remaining = (max(0.0, deadline - time.monotonic())
                         if deadline is not None else None)
            worker.join(timeout=remaining)
        # Workers that did not exit in time will never serve what is left.
        self._shed(self._queue.drain_pending())

    def _shed(self, requests: List["_Request"]) -> None:
        """Fail queued-but-never-served requests fast with ShuttingDown."""
        if not requests:
            return
        with self._stats_lock:
            self._stats.shed += len(requests)
        for request in requests:
            request.future.set_exception(ShuttingDown(
                "batcher shut down before this request could be served"))

    def queue_depth(self) -> int:
        """Requests currently waiting in the queue (health-check signal)."""
        return len(self._queue)

    def workers_alive(self) -> int:
        """How many worker threads are currently running."""
        return sum(1 for worker in self._workers if worker.is_alive())

    def is_draining(self) -> bool:
        """True while any worker thread is still running (e.g. answering
        queued requests after :meth:`close`) — its counters may still move."""
        return any(worker.is_alive() for worker in self._workers)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _expire(self, request: "_Request") -> None:
        with self._stats_lock:
            self._stats.expired += 1
        waited = (time.perf_counter() - request.enqueued_at) * 1000.0
        request.future.set_exception(DeadlineExceeded(
            f"request deadline exceeded after {waited:.1f} ms in queue"))

    def _drain_batch(self, first: "_Request") -> List["_Request"]:
        """Gather requests until the batch is full or the deadline passes.

        A request whose rows would push the batch past ``max_batch_size`` is
        handed back to the queue (keeping its place in line) and opens the
        next batch instead — a batch never overshoots the configured max.
        Only a single request larger than the whole quantum runs alone:
        chunked to the quantum by ``run_at_quantum`` when
        ``pad_to_max_batch`` is on, as one oversized forward otherwise.
        """
        batch = [first]
        rows = first.rows
        deadline = time.perf_counter() + self.config.max_latency_ms / 1000.0
        while rows < self.config.max_batch_size:
            # ``max_latency_ms`` bounds how long the batch *waits* for
            # company; requests already queued when the window closes are
            # still scooped (a zero-timeout get) — fusing a backlog adds
            # no latency, and under load it is what lets a batch-B config
            # actually reach B-row forwards instead of degenerating to
            # one-row batches.
            remaining = deadline - time.perf_counter()
            try:
                item = self._queue.get(timeout=max(0.0, remaining))
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Re-enqueue so the outer loop sees it after this batch.
                self._queue.put(_SHUTDOWN, force=True)
                break
            if item.expired():
                self._expire(item)
                continue
            if rows + item.rows > self.config.max_batch_size:
                self._queue.put_back(item)
                break
            batch.append(item)
            rows += item.rows
        return batch

    def _forward(self, fused: np.ndarray) -> np.ndarray:
        """One model call — at the fixed batch quantum when padding is on."""
        quantum = self.config.max_batch_size
        if not self.config.pad_to_max_batch or len(fused) == quantum:
            return self.predict_fn(fused)
        return run_at_quantum(self.predict_fn, fused, quantum)

    def _process(self, batch: List["_Request"],
                 worker_stats: BatcherStats) -> None:
        # Fuse-time re-check: a deadline can pass between the gather in
        # _drain_batch (where expiry was last checked) and this forward —
        # the batch may have waited out max_latency_ms collecting company.
        # Expired requests are dropped here so they never occupy rows in
        # the forward; their batch-mates are fused and served unharmed.
        now = time.perf_counter()
        live: List["_Request"] = []
        for request in batch:
            if request.expired(now):
                self._expire(request)
            else:
                live.append(request)
        if not live:
            return
        batch = live
        rows = int(sum(r.rows for r in batch))
        fused = (batch[0].features if len(batch) == 1
                 else np.concatenate([r.features for r in batch]))
        try:
            predictions = self._forward(fused)
        except BaseException as error:  # fan the failure out, keep serving
            with self._stats_lock:
                self._stats.errors += len(batch)
            for request in batch:
                request.future.set_exception(error)
            return
        with self._stats_lock:
            worker_stats.batches += 1
            worker_stats.batched_examples += rows
            worker_stats.largest_batch = max(worker_stats.largest_batch, rows)
        offset = 0
        delivered = 0
        for request in batch:
            result = predictions[offset:offset + request.rows]
            offset += request.rows
            if self.config.cache_size > 0 and request.digest is not None:
                # Cache an owned copy: the requester's array must never
                # alias the cache (callers may mutate their result), and a
                # row-sized copy does not pin the whole fused batch alive.
                # Cached even when the requester expired below — the
                # forward is done, so the work may as well serve repeats.
                self._cache.put(request.digest, result.copy())
            # Delivery-time check: the deadline may have passed *during*
            # the forward.  Failing with DeadlineExceeded here is what
            # guarantees a request never completes successfully after its
            # own deadline — the latency contract stays honest even when
            # the answer was computed.
            if request.expired():
                self._expire(request)
                continue
            request.future.set_result(result[0] if request.single else result)
            delivered += 1
        if delivered:
            with self._stats_lock:
                self._stats.served += delivered

    def _run(self, worker_stats: BatcherStats) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                # Requests all sort ahead of the sentinel, so the queue
                # holds no unanswered work; re-enqueue it so sibling
                # workers wake up and exit too.
                self._queue.put(_SHUTDOWN, force=True)
                return
            if item.expired():
                self._expire(item)
                continue
            self._process(self._drain_batch(item), worker_stats)
