"""Dynamic micro-batching: many concurrent requests, one fused forward.

The serving hot path has the same shape as the training fast path: NumPy's
per-call overhead dwarfs the arithmetic at small batch sizes, so answering
each request with its own forward wastes most of the machine.  The
:class:`MicroBatcher` instead drains a request queue on a worker thread into
batches bounded by ``max_batch_size`` and ``max_latency_ms``, runs *one*
forward over the concatenated rows, and fans the result rows back out to
per-request futures — the batched-routing shape of distributed serving
stacks, scaled to one process.

An LRU prediction cache keyed by input digest sits in front of the forward:
repeated requests (health probes, hot queries) are answered without touching
the model.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = ["BatchingConfig", "BatcherStats", "MicroBatcher", "input_digest",
           "run_at_quantum"]


def run_at_quantum(fn, rows: np.ndarray, quantum: int) -> np.ndarray:
    """Run ``fn`` over ``rows`` in chunks of *exactly* ``quantum`` rows.

    Short chunks (including the tail) are padded by repeating their last row
    and the padding is stripped from the output.  Fixing the row count of
    every call is what makes predictions bit-for-bit reproducible: BLAS gemm
    kernels pick different reduction orders for different row counts, so a
    row's result is a pure function of (row, weights, batch rows).  Both the
    micro-batcher and offline quantized inference
    (``ServableModel.predict_logits(x, batch_size=...)``) go through this
    one implementation, which is what keeps them bit-identical.
    """
    chunks: List[np.ndarray] = []
    for start in range(0, len(rows), quantum):
        chunk = rows[start:start + quantum]
        short = quantum - len(chunk)
        if short > 0:
            padded = np.concatenate(
                [chunk, np.repeat(chunk[-1:], short, axis=0)])
            chunks.append(fn(padded)[:-short])
        else:
            chunks.append(fn(chunk))
    return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]


@dataclass
class BatchingConfig:
    """Knobs of the dynamic micro-batching engine.

    ``max_batch_size`` bounds the rows fused into one forward;
    ``max_latency_ms`` bounds how long the first request of a batch waits
    for company.  ``max_batch_size=1`` degenerates to one forward per
    request (the unbatched baseline the serving benchmark compares against).
    """

    max_batch_size: int = 32
    max_latency_ms: float = 2.0
    #: LRU prediction-cache capacity in entries; 0 disables caching.
    cache_size: int = 1024
    #: queue capacity; 0 means unbounded.  When bounded, ``submit`` blocks
    #: once the backlog is full (back-pressure instead of memory growth).
    max_queue_size: int = 0
    #: run every forward at *exactly* ``max_batch_size`` rows, padding
    #: smaller batches and chunking larger ones.  BLAS gemm kernels pick
    #: different reduction orders for different row counts, so a row's
    #: result is a pure function of (row, weights, batch rows) — fixing the
    #: row count makes every served prediction bit-for-bit reproducible
    #: regardless of what traffic it happened to share a batch with, equal
    #: to offline inference at the same quantum
    #: (``ServableModel.predict_proba(x, batch_size=max_batch_size)``).
    pad_to_max_batch: bool = True

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_latency_ms < 0:
            raise ValueError("max_latency_ms must be >= 0")
        if self.cache_size < 0:
            raise ValueError("cache_size must be >= 0")


@dataclass
class BatcherStats:
    """Counters exposed by ``MicroBatcher.stats()`` (and ``GET /stats``)."""

    requests: int = 0
    examples: int = 0
    batches: int = 0
    batched_examples: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    largest_batch: int = 0

    def as_dict(self) -> Dict[str, float]:
        mean = (self.batched_examples / self.batches) if self.batches else 0.0
        return {"requests": self.requests, "examples": self.examples,
                "batches": self.batches, "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "largest_batch": self.largest_batch,
                "mean_batch_size": round(mean, 2)}


def input_digest(features: np.ndarray, salt: str = "") -> str:
    """Digest of one request's input rows (the prediction-cache key).

    Covers shape, dtype, and raw bytes; ``salt`` carries the model
    fingerprint so a hot-swap never serves stale cached predictions.
    """
    array = np.ascontiguousarray(features)
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(str(array.shape).encode("utf-8"))
    digest.update(str(array.dtype).encode("utf-8"))
    digest.update(array.tobytes())
    return digest.hexdigest()


class _LRUCache:
    """A tiny thread-safe LRU map (digest -> prediction rows)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[np.ndarray]:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: str, value: np.ndarray) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class _Request:
    __slots__ = ("features", "future", "rows", "single", "digest",
                 "enqueued_at")

    def __init__(self, features: np.ndarray, single: bool):
        self.features = features
        self.future: "Future[np.ndarray]" = Future()
        self.rows = len(features)
        self.single = single
        self.digest: Optional[str] = None
        self.enqueued_at = time.perf_counter()


#: Sentinel asking the worker thread to drain the queue and exit.
_SHUTDOWN = object()


class MicroBatcher:
    """Queue requests, fuse them into batches, fan results back out.

    ``predict_fn`` maps a ``(n, d)`` float array to an ``(n, k)`` array;
    rows are independent (as in any batched model forward), which is what
    makes fan-out/fan-in sound.  One daemon worker thread owns the model
    forward, so the model itself needs no thread safety.
    """

    def __init__(self, predict_fn: Callable[[np.ndarray], np.ndarray],
                 config: Optional[BatchingConfig] = None,
                 cache_salt: str = ""):
        self.predict_fn = predict_fn
        self.config = config or BatchingConfig()
        self.cache_salt = cache_salt
        self._cache = _LRUCache(self.config.cache_size)
        self._queue: "queue.Queue" = queue.Queue(self.config.max_queue_size)
        self._stats = BatcherStats()
        self._stats_lock = threading.Lock()
        self._closed = False
        # Serializes enqueues against close(): a request put under this lock
        # is guaranteed to precede the shutdown sentinel in the queue, so the
        # worker always answers it before exiting (no future ever hangs).
        self._submit_lock = threading.Lock()
        self._worker = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-batcher")
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def submit(self, features: np.ndarray) -> "Future[np.ndarray]":
        """Enqueue one request; the future resolves to its prediction rows.

        ``features`` may be a single example ``(d,)`` or a block ``(n, d)``;
        the future carries matching ``(k,)`` or ``(n, k)`` predictions.
        """
        if self._closed:
            raise RuntimeError("MicroBatcher is closed")
        array = np.asarray(features)
        single = array.ndim == 1
        if single:
            array = array[None, :]
        if array.ndim != 2 or len(array) == 0:
            raise ValueError(f"expected (d,) or non-empty (n, d) input, "
                             f"got shape {np.asarray(features).shape}")
        request = _Request(array, single=single)
        with self._stats_lock:
            self._stats.requests += 1
            self._stats.examples += request.rows
        # Answer straight from the cache when possible — no queue, no batch.
        if self.config.cache_size > 0:
            request.digest = input_digest(array, self.cache_salt)
            cached = self._cache.get(request.digest)
            if cached is not None:
                with self._stats_lock:
                    self._stats.cache_hits += 1
                # A fresh copy per hit: a caller mutating its result in
                # place must never corrupt what later requests are served.
                result = cached.copy()
                request.future.set_result(result[0] if single else result)
                return request.future
            with self._stats_lock:
                self._stats.cache_misses += 1
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.put(request)
        return request.future

    def predict(self, features: np.ndarray,
                timeout: Optional[float] = None) -> np.ndarray:
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(features).result(timeout=timeout)

    def stats(self) -> Dict[str, float]:
        with self._stats_lock:
            return self._stats.as_dict()

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting work, serve everything already queued, then exit."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _drain_batch(self, first: "_Request") -> List["_Request"]:
        """Gather requests until the batch is full or the deadline passes."""
        batch = [first]
        rows = first.rows
        deadline = time.perf_counter() + self.config.max_latency_ms / 1000.0
        while rows < self.config.max_batch_size:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                # Re-enqueue so the outer loop sees it after this batch.
                self._queue.put(_SHUTDOWN)
                break
            batch.append(item)
            rows += item.rows
        return batch

    def _forward(self, fused: np.ndarray) -> np.ndarray:
        """One model call — at the fixed batch quantum when padding is on."""
        quantum = self.config.max_batch_size
        if not self.config.pad_to_max_batch or len(fused) == quantum:
            return self.predict_fn(fused)
        return run_at_quantum(self.predict_fn, fused, quantum)

    def _process(self, batch: List["_Request"]) -> None:
        rows = int(sum(r.rows for r in batch))
        fused = (batch[0].features if len(batch) == 1
                 else np.concatenate([r.features for r in batch]))
        try:
            predictions = self._forward(fused)
        except BaseException as error:  # fan the failure out, keep serving
            for request in batch:
                request.future.set_exception(error)
            return
        with self._stats_lock:
            self._stats.batches += 1
            self._stats.batched_examples += rows
            self._stats.largest_batch = max(self._stats.largest_batch, rows)
        offset = 0
        for request in batch:
            result = predictions[offset:offset + request.rows]
            offset += request.rows
            if self.config.cache_size > 0 and request.digest is not None:
                # Cache an owned copy: the requester's array must never
                # alias the cache (callers may mutate their result), and a
                # row-sized copy does not pin the whole fused batch alive.
                self._cache.put(request.digest, result.copy())
            request.future.set_result(result[0] if request.single else result)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                # Drain whatever arrived before close() and answer it.
                leftovers: List[_Request] = []
                while True:
                    try:
                        tail = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if tail is not _SHUTDOWN:
                        leftovers.append(tail)
                if leftovers:
                    self._process(leftovers)
                return
            self._process(self._drain_batch(item))
