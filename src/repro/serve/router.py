"""The fleet front end: route ``model@version`` traffic across replicas.

A :class:`Router` owns a table of replica HTTP endpoints (worker processes
spawned by :class:`~repro.serve.fleet.ServingFleet`, or any server speaking
the ``repro.serve`` HTTP protocol) and presents the *same* client surface
as an in-process :class:`~repro.serve.Server` — ``predict`` / ``health`` /
``models`` / ``stats`` / ``describe`` — so the public HTTP endpoint is
identical whether one process or a fleet answers, and
:func:`~repro.serve.http.make_http_server` serves either.

Routing semantics:

* **Partitioning.** Each replica declares the model *names* it serves (its
  shard manifest, refreshed from ``/healthz`` probes).  Replicas declaring
  the same name are **replicas** of it (load-balanced); disjoint names are
  **shards** (partitioning the ``model@version`` space across processes).
* **Balancing.** Among the healthy, admitted owners of a name the router
  picks the replica with the fewest outstanding requests, breaking ties
  round-robin — least-loaded first, and fair under uniform load.
* **Health.** A background monitor probes every replica's ``/healthz`` on
  an interval; ``fail_threshold`` consecutive misses mark it down (and a
  connection-level failure on the request path marks it down immediately —
  death is detected at the first broken request, not the next probe).
  Probes also refresh each replica's served-model manifest and queue
  depth, so balancing decisions track reality.  Down replicas are
  re-admitted by the first successful probe after they return.
* **Retries.** A transport-level failure (replica died mid-request) is
  retried on another replica with bounded exponential backoff.  Serving a
  prediction is pure — same rows, same weights, same bits — so retrying is
  always safe.  Deterministic *client* failures (400 bad request, 504
  deadline) are never retried: they would fail identically anywhere.  A
  404 is retried on the remaining owners (mid-swap, another replica may
  already hold the requested version) and only surfaces once every owner
  has answered 404.
* **Deadlines.** Every retry sleep is capped at the request's remaining
  ``deadline_ms`` and an exhausted deadline fails fast with
  ``DeadlineExceeded`` *before* sleeping — backoff never burns a deadline
  the client already paid for.  A 200 that arrives past the deadline is
  suppressed (counted as ``late_responses``) and surfaces as the honest
  504: no request ever completes successfully after its own deadline.

The failure/retry matrix (also in ``docs/serving.md``):

====================  ==========================  =========================
replica answered      meaning                     router action
====================  ==========================  =========================
connection error      process died / port gone    mark down, retry elsewhere
200                   served                      return
200 past deadline     answer arrived too late     raise 504 — never serve late
400 / 413             malformed request           raise — no retry anywhere
404                   model/version not here      retry untried owners
429                   admission control shed      retry elsewhere (bounded)
503                   replica shutting down       retry elsewhere
504                   deadline expired in queue   raise — request is stale
other 5xx             replica-local failure       retry elsewhere (bounded)
====================  ==========================  =========================
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from .batching import DeadlineExceeded, Overloaded, ShuttingDown
from .registry import ModelNotFound, parse_reference

__all__ = ["NoHealthyReplica", "ReplicaHandle", "Router", "RouterConfig"]


class NoHealthyReplica(RuntimeError):
    """Every routing attempt failed — no replica could answer the request."""


@dataclass
class RouterConfig:
    """Knobs of the routing front end."""

    #: seconds between health-probe sweeps of the replica table
    health_interval: float = 0.5
    #: consecutive probe failures before a replica is marked down
    fail_threshold: int = 2
    #: socket timeout of one health probe
    probe_timeout: float = 2.0
    #: socket timeout of one forwarded /predict call
    request_timeout: float = 60.0
    #: total routing attempts for one request (across replicas and backoffs)
    max_attempts: int = 10
    #: initial retry backoff; doubles per attempt up to the cap.  Bounded:
    #: a request never waits longer than the cap between attempts, and
    #: never retries more than ``max_attempts`` times.
    retry_backoff_ms: float = 20.0
    retry_backoff_cap_ms: float = 400.0
    #: persistent connections kept per replica
    pool_size: int = 8

    def __post_init__(self) -> None:
        if self.fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


class _ConnectionPool:
    """A small stack of persistent HTTP connections to one replica."""

    def __init__(self, host: str, port: int, capacity: int):
        self.host = host
        self.port = port
        self.capacity = capacity
        self._idle: List[http.client.HTTPConnection] = []
        self._lock = threading.Lock()

    def acquire(self, timeout: float) -> http.client.HTTPConnection:
        with self._lock:
            if self._idle:
                connection = self._idle.pop()
                connection.timeout = timeout
                return connection
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)

    def release(self, connection: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._idle) < self.capacity:
                self._idle.append(connection)
                return
        connection.close()

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()


class ReplicaHandle:
    """One replica endpoint plus the router's live view of it.

    Mutable state (``healthy``, ``draining``, ``outstanding``, the served
    model manifest) is guarded by the owning router's lock.
    """

    def __init__(self, replica_id: str, host: str, port: int,
                 pool_size: int = 8,
                 models: Optional[Iterable[str]] = None):
        self.id = replica_id
        self.host = host
        self.port = port
        self.pool = _ConnectionPool(host, port, pool_size)
        #: model *names* this replica serves (its shard); ``None`` means
        #: unknown-yet — the replica is a candidate for every name until a
        #: health probe reports its manifest
        self.names: Optional[Set[str]] = (
            {parse_reference(m)[0] for m in models} if models is not None
            else None)
        #: full ``name@version`` strings from the last health probe
        self.versions: Set[str] = set()
        self.healthy = True
        self.draining = False
        self.outstanding = 0
        self.queue_depth = 0
        self.consecutive_failures = 0
        # counters (monotonic; read by Router.stats())
        self.served = 0
        self.transport_failures = 0
        self.respawns = 0

    def serves(self, name: str) -> bool:
        return self.names is None or name in self.names

    def admitted(self) -> bool:
        return self.healthy and not self.draining

    def request(self, method: str, path: str, body: Optional[bytes] = None,
                timeout: float = 60.0) -> Tuple[int, dict]:
        """One HTTP exchange with this replica over a pooled connection.

        Raises ``OSError`` (or an ``http.client`` protocol error) on any
        transport-level failure — the signal the router retries on.
        """
        connection = self.pool.acquire(timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()   # must drain before the conn is reusable
            status = response.status
        except BaseException:
            connection.close()
            raise
        self.pool.release(connection)
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = {"error": raw.decode("utf-8", "replace")}
        return status, payload

    def describe(self) -> dict:
        return {"address": f"{self.host}:{self.port}",
                "healthy": self.healthy, "draining": self.draining,
                "outstanding": self.outstanding,
                "queue_depth": self.queue_depth,
                "models": sorted(self.versions),
                "served": self.served,
                "transport_failures": self.transport_failures,
                "respawns": self.respawns}


#: statuses that fail a request identically on every replica — never retried
_NO_RETRY = {400, 413, 504}


class Router:
    """Load-balance ``model@version`` requests across replica endpoints.

    Presents the same Python surface as :class:`~repro.serve.Server`
    (``predict``/``health``/``models``/``stats``/``describe``), so the
    stock HTTP handler serves a fleet unchanged.  See the module docstring
    for routing, health, and retry semantics.
    """

    def __init__(self, config: Optional[RouterConfig] = None,
                 on_replica_down: Optional[Callable[[str], None]] = None):
        self.config = config or RouterConfig()
        #: called (with the replica id) when a replica transitions to down —
        #: the fleet hooks its respawn path here
        self.on_replica_down = on_replica_down
        self._replicas: Dict[str, ReplicaHandle] = {}
        self._lock = threading.Lock()
        self._rr: Dict[str, int] = {}
        self._counters = {"requests": 0, "retries": 0, "failovers": 0,
                          "late_responses": 0}
        self._monitor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Replica table
    # ------------------------------------------------------------------ #
    def add_replica(self, replica_id: str, host: str, port: int,
                    models: Optional[Iterable[str]] = None) -> ReplicaHandle:
        """Register a replica endpoint (optionally with its shard manifest).

        Without ``models`` the replica is a candidate for every model name
        until its first health probe reports what it actually serves.
        Re-adding an existing id (a respawn that moved ports) replaces the
        handle but keeps its monotonic counters.
        """
        handle = ReplicaHandle(replica_id, host, port,
                               pool_size=self.config.pool_size, models=models)
        with self._lock:
            previous = self._replicas.get(replica_id)
            if previous is not None:
                handle.served = previous.served
                handle.transport_failures = previous.transport_failures
                handle.respawns = previous.respawns
                previous.pool.close()
            self._replicas[replica_id] = handle
        return handle

    def remove_replica(self, replica_id: str) -> None:
        with self._lock:
            handle = self._replicas.pop(replica_id, None)
        if handle is not None:
            handle.pool.close()

    def replica(self, replica_id: str) -> ReplicaHandle:
        with self._lock:
            return self._replicas[replica_id]

    def replica_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._replicas)

    def set_draining(self, replica_id: str, draining: bool) -> None:
        """Stop (or resume) routing *new* requests to one replica.

        In-flight requests finish where they are; ``outstanding_of`` tells
        a rolling swap when the drained replica has gone quiet.
        """
        with self._lock:
            self._replicas[replica_id].draining = bool(draining)

    def set_healthy(self, replica_id: str, healthy: bool) -> None:
        with self._lock:
            handle = self._replicas[replica_id]
            handle.healthy = bool(healthy)
            if healthy:
                handle.consecutive_failures = 0

    def note_respawn(self, replica_id: str) -> None:
        with self._lock:
            self._replicas[replica_id].respawns += 1

    def outstanding_of(self, replica_id: str) -> int:
        with self._lock:
            return self._replicas[replica_id].outstanding

    # ------------------------------------------------------------------ #
    # Balancing and the request path
    # ------------------------------------------------------------------ #
    def _pick(self, name: str,
              exclude: Set[str]) -> Optional[ReplicaHandle]:
        """Least-outstanding admitted owner of ``name``; round-robin ties."""
        with self._lock:
            owners = [handle for handle in self._replicas.values()
                      if handle.admitted() and handle.serves(name)
                      and handle.id not in exclude]
            if not owners:
                return None
            least = min(handle.outstanding for handle in owners)
            ties = [handle for handle in owners
                    if handle.outstanding == least]
            ties.sort(key=lambda handle: handle.id)
            self._rr[name] = self._rr.get(name, -1) + 1
            choice = ties[self._rr[name] % len(ties)]
            choice.outstanding += 1
            return choice

    def _release(self, handle: ReplicaHandle) -> None:
        with self._lock:
            handle.outstanding -= 1

    def _name_is_known(self, name: str) -> bool:
        with self._lock:
            return any(handle.serves(name)
                       for handle in self._replicas.values())

    def _note_transport_failure(self, handle: ReplicaHandle) -> None:
        """A broken connection means the process is (almost certainly)
        gone: mark it down *now* instead of waiting out ``fail_threshold``
        probes, and let the fleet's respawn path decide what happened."""
        fire = False
        with self._lock:
            handle.transport_failures += 1
            handle.consecutive_failures += 1
            if handle.healthy:
                handle.healthy = False
                fire = True
        if fire and self.on_replica_down is not None:
            self.on_replica_down(handle.id)

    def predict(self, inputs: np.ndarray, model: str = "default",
                return_probabilities: bool = False,
                timeout: Optional[float] = None, priority: int = 0,
                deadline_ms: Optional[float] = None) -> dict:
        """Route one prediction to the fleet; same contract as
        :meth:`repro.serve.Server.predict`.

        Retries transport failures on other replicas with bounded backoff;
        raises the same typed errors an in-process server would
        (``ModelNotFound``, ``DeadlineExceeded``, ``ValueError``,
        :class:`ShuttingDown`) so the HTTP handler's status mapping holds
        unchanged, plus :class:`NoHealthyReplica` when the fleet is gone.
        """
        if self._closed:
            raise ShuttingDown("Router is closed")
        name, _ = parse_reference(str(model))
        array = np.asarray(inputs, dtype=np.float64)
        payload = {"model": str(model), "inputs": array.tolist(),
                   "return_probabilities": bool(return_probabilities),
                   "priority": int(priority)}
        started = time.perf_counter()
        request_timeout = (timeout if timeout is not None
                           else self.config.request_timeout)
        with self._lock:
            self._counters["requests"] += 1

        def remaining_ms() -> Optional[float]:
            """Milliseconds left on the request's own deadline (None = no
            deadline).  All backoff/retry accounting is charged against it —
            routing time is part of the latency the client asked us to bound."""
            if deadline_ms is None:
                return None
            return (float(deadline_ms)
                    - (time.perf_counter() - started) * 1000.0)

        def backoff_sleep(seconds: float) -> None:
            """Sleep between attempts — but never past the deadline.

            A request with ``deadline_ms=50`` must not burn 20+40 ms of
            unconditional backoff and be retried already-expired: each sleep
            is capped at the remaining deadline, and an exhausted deadline
            fails fast with DeadlineExceeded *before* sleeping.
            """
            remaining = remaining_ms()
            if remaining is not None:
                if remaining <= 0:
                    elapsed = (time.perf_counter() - started) * 1000.0
                    raise DeadlineExceeded(
                        f"request deadline exceeded after {elapsed:.1f} ms "
                        f"of routing")
                seconds = min(seconds, remaining / 1000.0)
            if seconds > 0:
                time.sleep(seconds)

        backoff = self.config.retry_backoff_ms / 1000.0
        backoff_cap = self.config.retry_backoff_cap_ms / 1000.0
        exclude: Set[str] = set()
        not_found: Optional[ModelNotFound] = None
        last_error: Optional[BaseException] = None
        for attempt in range(self.config.max_attempts):
            remaining_deadline = remaining_ms()
            if remaining_deadline is not None:
                if remaining_deadline <= 0:
                    elapsed_ms = (time.perf_counter() - started) * 1000.0
                    raise DeadlineExceeded(
                        f"request deadline exceeded after {elapsed_ms:.1f} ms "
                        f"of routing")
                payload["deadline_ms"] = remaining_deadline
            if attempt > 0:
                with self._lock:
                    self._counters["retries"] += 1
            handle = self._pick(name, exclude)
            if handle is None:
                if exclude:
                    # Every current owner was tried.  All answered 404 ->
                    # the reference genuinely does not resolve anywhere;
                    # otherwise widen back out (a down replica may have
                    # respawned, a draining one been re-admitted).
                    if not_found is not None and last_error is None:
                        raise not_found
                    exclude.clear()
                elif self._replicas and not self._name_is_known(name):
                    raise ModelNotFound(
                        f"no replica serves model {name!r}; fleet serves: "
                        f"{sorted(set().union(*(h.names or set() for h in self._replicas.values())))}")
                backoff_sleep(backoff)
                backoff = min(backoff * 2, backoff_cap)
                continue
            try:
                status, body = handle.request(
                    "POST", "/predict",
                    body=json.dumps(payload).encode("utf-8"),
                    timeout=request_timeout)
            except (OSError, http.client.HTTPException) as error:
                self._release(handle)
                self._note_transport_failure(handle)
                with self._lock:
                    self._counters["failovers"] += 1
                exclude.add(handle.id)
                last_error = error
                backoff_sleep(backoff)
                backoff = min(backoff * 2, backoff_cap)
                continue
            self._release(handle)
            if status == 200:
                remaining = remaining_ms()
                if remaining is not None and remaining < 0:
                    # The replica answered, but past the client's deadline
                    # (slow transit, a forward that barely missed).  A
                    # request must never complete successfully after its
                    # own deadline, so the late response is suppressed and
                    # the honest 504 surfaces instead.
                    with self._lock:
                        self._counters["late_responses"] += 1
                    raise DeadlineExceeded(
                        f"replica answered {-remaining:.1f} ms past the "
                        f"{float(deadline_ms):.1f} ms deadline; late "
                        f"response suppressed")
                with self._lock:
                    handle.served += 1
                return body
            message = body.get("error", f"replica answered HTTP {status}")
            if status == 404:
                # Mid-swap, another owner may already hold this version.
                not_found = ModelNotFound(message)
                exclude.add(handle.id)
                continue
            if status in _NO_RETRY:
                if status == 504:
                    raise DeadlineExceeded(message)
                raise ValueError(message)
            # 429 (admission shed), 503 (replica shutting down), and other
            # 5xx: replica-local, the request itself is fine — fail over.
            exclude.add(handle.id)
            if status == 429:
                last_error = Overloaded(message)
            elif status == 503:
                last_error = ShuttingDown(message)
            else:
                last_error = RuntimeError(message)
            backoff_sleep(backoff)
            backoff = min(backoff * 2, backoff_cap)
        if isinstance(last_error, Overloaded):
            # Every attempt was shed by admission control: the whole fleet
            # is saturated.  Surface the retryable 429, not a routing error.
            raise last_error
        raise NoHealthyReplica(
            f"no replica could answer for {model!r} after "
            f"{self.config.max_attempts} attempts; last error: {last_error}")

    # ------------------------------------------------------------------ #
    # Health monitoring
    # ------------------------------------------------------------------ #
    def probe(self, replica_id: str) -> bool:
        """One health probe; updates the handle's manifest and liveness."""
        with self._lock:
            handle = self._replicas.get(replica_id)
        if handle is None:
            return False
        try:
            status, payload = handle.request(
                "GET", "/healthz", timeout=self.config.probe_timeout)
        except (OSError, http.client.HTTPException):
            status, payload = 0, {}
        fire = False
        with self._lock:
            if status == 200:
                handle.consecutive_failures = 0
                handle.healthy = True
                models = payload.get("models")
                if isinstance(models, list):
                    handle.versions = set(models)
                    handle.names = {parse_reference(m)[0] for m in models}
                handle.queue_depth = int(payload.get("queue_depth", 0) or 0)
                # a replica can also *self*-report draining (direct
                # /admin/drain) — honor it without clobbering router-side
                # drains, which set the flag on the handle itself
                if payload.get("draining"):
                    handle.draining = True
            else:
                handle.consecutive_failures += 1
                if (handle.healthy and handle.consecutive_failures
                        >= self.config.fail_threshold):
                    handle.healthy = False
                    fire = True
        if fire and self.on_replica_down is not None:
            self.on_replica_down(replica_id)
        return status == 200

    def probe_all(self) -> Dict[str, bool]:
        return {replica_id: self.probe(replica_id)
                for replica_id in self.replica_ids()}

    def start_health_monitor(self) -> None:
        """Start the background probe loop (idempotent)."""
        if self._monitor is not None and self._monitor.is_alive():
            return
        self._stop.clear()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         daemon=True,
                                         name="repro-serve-router-health")
        self._monitor.start()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.config.health_interval):
            self.probe_all()

    def wait_healthy(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` replicas are healthy (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self.probe_all()
            with self._lock:
                healthy = sum(1 for handle in self._replicas.values()
                              if handle.healthy)
            if healthy >= count:
                return True
            time.sleep(0.05)
        return False

    # ------------------------------------------------------------------ #
    # Aggregation (the fleet-wide /models, /stats, /healthz, /describe)
    # ------------------------------------------------------------------ #
    def _handles(self) -> List[ReplicaHandle]:
        with self._lock:
            return list(self._replicas.values())

    def health(self) -> dict:
        """Fleet-wide health: per-replica states plus the merged manifest."""
        handles = self._handles()
        healthy = sum(1 for handle in handles if handle.healthy)
        if self._closed:
            status = "closed"
        elif healthy == len(handles) and handles:
            status = "ok"
        elif healthy:
            status = "degraded"
        else:
            status = "down"
        models: Set[str] = set()
        for handle in handles:
            models |= handle.versions
        with self._lock:
            replicas = {handle.id: handle.describe() for handle in handles}
        return {"status": status,
                "draining": all(handle.draining for handle in handles)
                if handles else False,
                "queue_depth": sum(handle.queue_depth for handle in handles),
                "replicas": replicas,
                "models": sorted(models)}

    def models(self) -> Dict[str, dict]:
        """The merged registry listing across every reachable replica."""
        merged: Dict[str, dict] = {}
        for handle in self._handles():
            try:
                status, payload = handle.request(
                    "GET", "/models", timeout=self.config.probe_timeout)
            except (OSError, http.client.HTTPException):
                continue
            if status != 200 or not isinstance(payload, dict):
                continue
            for name, entry in payload.items():
                into = merged.setdefault(name, {"latest": entry.get("latest"),
                                                "versions": {}})
                into["versions"].update(entry.get("versions", {}))
                if entry.get("latest"):
                    into["latest"] = entry["latest"]
        return merged

    def stats(self) -> Dict[str, dict]:
        """Fleet-wide counters: per-``model@version`` sums across replicas
        plus a ``_router`` entry (routing counters and per-replica state).

        Counter keys sum; ``largest_batch`` takes the max; the merged
        ``mean_batch_size`` is weighted by each replica's batch count.
        """
        merged: Dict[str, dict] = {}
        weighted: Dict[str, float] = {}
        for handle in self._handles():
            try:
                status, payload = handle.request(
                    "GET", "/stats", timeout=self.config.probe_timeout)
            except (OSError, http.client.HTTPException):
                continue
            if status != 200 or not isinstance(payload, dict):
                continue
            for key, entry in payload.items():
                if not isinstance(entry, dict):
                    continue
                into = merged.setdefault(key, {})
                for field, value in entry.items():
                    if not isinstance(value, (int, float)) \
                            or isinstance(value, bool):
                        continue
                    if field == "largest_batch":
                        into[field] = max(into.get(field, 0), value)
                    elif field == "mean_batch_size":
                        weighted[key] = weighted.get(key, 0.0) \
                            + value * entry.get("batches", 0)
                    else:
                        into[field] = into.get(field, 0) + value
        for key, entry in merged.items():
            batches = entry.get("batches", 0)
            entry["mean_batch_size"] = (
                round(weighted.get(key, 0.0) / batches, 2) if batches else 0.0)
        with self._lock:
            counters = dict(self._counters)
        counters["replicas"] = {handle.id: handle.describe()
                                for handle in self._handles()}
        merged["_router"] = counters
        return merged

    def capacity(self) -> dict:
        """Fleet-wide ``GET /capacity``: per-replica payloads plus totals.

        Sums replica capacity (req/s), queue depth, and admission counters
        across every replica that answers — the number a capacity planner
        compares against fleet-level arrival rate.  Replicas without a
        capacity model report ``model: null`` and contribute nothing to
        the fleet capacity sum.
        """
        replicas: Dict[str, dict] = {}
        total_capacity = 0.0
        modeled = 0
        queue_depth = 0
        admitted = shed = 0
        for handle in self._handles():
            try:
                status, payload = handle.request(
                    "GET", "/capacity", timeout=self.config.probe_timeout)
            except (OSError, http.client.HTTPException):
                continue
            if status != 200 or not isinstance(payload, dict):
                continue
            replicas[handle.id] = payload
            queue_depth += int(payload.get("queue_depth", 0) or 0)
            if payload.get("capacity_req_per_sec") is not None:
                total_capacity += float(payload["capacity_req_per_sec"])
                modeled += 1
            admission = payload.get("admission")
            if isinstance(admission, dict):
                admitted += int(admission.get("admitted", 0) or 0)
                shed += int(admission.get("shed", 0) or 0)
        return {
            "queue_depth": queue_depth,
            "capacity_req_per_sec": round(total_capacity, 1) if modeled else None,
            "modeled_replicas": modeled,
            "admission": {"admitted": admitted, "shed": shed},
            "replicas": replicas,
        }

    def describe(self) -> dict:
        return {"models": self.models(),
                "router": {
                    "replicas": {handle.id: handle.describe()
                                 for handle in self._handles()},
                    "health_interval": self.config.health_interval,
                    "fail_threshold": self.config.fail_threshold,
                    "max_attempts": self.config.max_attempts,
                },
                "stats": self.stats()}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._closed = True
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        for handle in self._handles():
            handle.pool.close()

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
