"""``repro.serve`` — from trained pipeline to answered request.

The deployment layer of the reproduction: versioned artifact export of the
distilled end model *and* the full taglet ensemble
(:mod:`~repro.serve.artifact`, schema v2), a hot-swappable
:class:`ModelRegistry`, a dynamic micro-batching engine with priority /
deadline scheduling and multi-worker draining
(:mod:`~repro.serve.batching`), and a :class:`Server` front end with a
stdlib JSON-over-HTTP endpoint plus a ``python -m repro.serve`` CLI.

Typical lifecycle::

    result = Controller().run(task)                       # train
    export_end_model(result, "artifacts/fmd")             # export the student
    export_ensemble(result, "artifacts/fmd-ensemble")     # ...or the ensemble
    server = Server()
    server.load("fmd", "artifacts/fmd")                   # register v1
    server.load("fmd-ensemble", "artifacts/fmd-ensemble")
    server.predict(x, model="fmd@latest")                 # query
    server.predict(x, model="fmd-ensemble", priority=5, deadline_ms=50)
"""

from .artifact import (ArtifactError, SCHEMA_VERSION, Servable,
                       ServableEnsemble, ServableModel, export_end_model,
                       export_ensemble, load_servable, read_manifest)
from .batching import (BatcherStats, BatchingConfig, DeadlineExceeded,
                       MicroBatcher, Overloaded, ShuttingDown, input_digest)
from .capacity import (AdmissionController, CapacityModel, CapacityPrediction,
                       LATENCY_ERROR_BOUND, SLO, ServiceModel,
                       THROUGHPUT_ERROR_BOUND, calibrate_service_model)
from .fleet import (FleetConfig, ReplicaSpec, ServingFleet, replicated_specs,
                    sharded_specs)
from .http import make_http_server, start_http_server
from .registry import ModelNotFound, ModelRegistry, parse_reference
from .router import NoHealthyReplica, Router, RouterConfig
from .server import Server
from .traffic import (TrafficGenerator, TrafficReport, adversarial_trace,
                      bursty_trace, compare_prediction, diurnal_trace,
                      poisson_trace)

__all__ = [
    "SCHEMA_VERSION", "ArtifactError", "Servable", "ServableModel",
    "ServableEnsemble", "export_end_model", "export_ensemble",
    "load_servable", "read_manifest",
    "BatchingConfig", "BatcherStats", "DeadlineExceeded", "MicroBatcher",
    "Overloaded", "ShuttingDown", "input_digest",
    "ModelRegistry", "ModelNotFound", "parse_reference",
    "Server", "make_http_server", "start_http_server",
    "Router", "RouterConfig", "NoHealthyReplica",
    "ServingFleet", "FleetConfig", "ReplicaSpec", "replicated_specs",
    "sharded_specs",
    "AdmissionController", "CapacityModel", "CapacityPrediction",
    "ServiceModel", "SLO", "calibrate_service_model",
    "THROUGHPUT_ERROR_BOUND", "LATENCY_ERROR_BOUND",
    "TrafficGenerator", "TrafficReport", "adversarial_trace", "bursty_trace",
    "compare_prediction", "diurnal_trace", "poisson_trace",
]
