"""``repro.serve`` — from trained pipeline to answered request.

The deployment layer of the reproduction: versioned artifact export of the
distilled end model (:mod:`~repro.serve.artifact`), a hot-swappable
:class:`ModelRegistry`, a dynamic micro-batching engine
(:mod:`~repro.serve.batching`), and a :class:`Server` front end with a
stdlib JSON-over-HTTP endpoint plus a ``python -m repro.serve`` CLI.

Typical lifecycle::

    result = Controller().run(task)                       # train
    export_end_model(result, "artifacts/fmd")             # export
    server = Server()
    server.load("fmd", "artifacts/fmd")                   # register v1
    server.predict(x, model="fmd@latest")                 # query
"""

from .artifact import (ArtifactError, SCHEMA_VERSION, ServableModel,
                       export_end_model, load_servable, read_manifest)
from .batching import BatcherStats, BatchingConfig, MicroBatcher, input_digest
from .http import make_http_server, start_http_server
from .registry import ModelNotFound, ModelRegistry, parse_reference
from .server import Server

__all__ = [
    "SCHEMA_VERSION", "ArtifactError", "ServableModel", "export_end_model",
    "load_servable", "read_manifest",
    "BatchingConfig", "BatcherStats", "MicroBatcher", "input_digest",
    "ModelRegistry", "ModelNotFound", "parse_reference",
    "Server", "make_http_server", "start_http_server",
]
