"""A first-principles capacity model of the serving stack.

MLSYSIM's program (PAPERS.md): model ML infrastructure analytically from
its *real* configuration parameters, validate the model against measured
behavior, then invert it to make decisions.  This module does exactly that
for the micro-batched serving tier — the knobs are the ones
:class:`~repro.serve.BatchingConfig` already exposes (``max_batch_size``,
``max_latency_ms``, ``num_workers``) plus fleet size, and the measured
ground truth is the traffic harness (:mod:`repro.serve.traffic`) and
``BENCH_serve.json``.

Three layers:

* **Calibration** (:func:`calibrate_service_model`).  One probe against a
  loaded servable measures the per-forward service time at several batch
  sizes and fits the affine law ``s(B) = base_s + per_row_s * B`` (fixed
  per-call overhead plus per-row arithmetic — the same shape that makes
  micro-batching win in the first place), plus the per-request dispatch
  overhead of the submit path, measured through a real
  :class:`~repro.serve.MicroBatcher` burst.
* **Prediction** (:meth:`CapacityModel.predict`).  Closed-form queueing
  approximation mapping ``(BatchingConfig, arrival rate)`` to sustainable
  throughput, p50/p99 latency, utilization, expected batch fill, and shed
  rate.  The model's assumptions (and its documented error bounds,
  :data:`THROUGHPUT_ERROR_BOUND` / :data:`LATENCY_ERROR_BOUND`) are
  validated live by ``benchmarks/capacity_smoke.py`` and recorded as
  ``capacity_model_*`` rows in ``BENCH_serve.json``.
* **Inversion** (:meth:`CapacityModel.autotune`,
  :class:`AdmissionController`).  The autotuner searches the model for the
  cheapest config meeting a stated :class:`SLO`; the admission controller
  uses the calibrated service rate to shed load (HTTP 429, retryable)
  *before* the queue melts — a request that would only expire in the queue
  is refused while it is still cheap to retry elsewhere, instead of
  occupying memory until its deadline turns it into a 504.

Model assumptions (also in ``docs/serving.md``):

* Single-row requests (the dominant serving shape; multi-row blocks count
  as their row count against capacity).
* Poisson-ish arrivals at rate λ; batches form by waiting at most
  ``max_latency_ms`` for company, so the expected fill is
  ``b = min(B, 1 + λ·w)`` with gather window ``w = min(L, (B-1)/λ)``.
* With ``pad_to_max_batch`` (the default) every forward costs ``s(B)``
  regardless of fill — the price of bitwise determinism is part of the
  model, not noise around it.
* Workers overlap forwards only up to the host's core count; the
  per-request dispatch overhead (submit path, GIL-bound) never
  parallelizes.
* Queueing delay uses the Sakasegawa M/M/c approximation halved for
  near-deterministic service (M/D/c); the p99 tail treats queue wait as
  exponential.  These are engineering approximations — the documented
  error bounds are what the validation harness actually asserts.
* The model covers the in-process serving tier (queue + batcher +
  forward).  HTTP transport (JSON, sockets) is separate overhead on top;
  validate over :meth:`~repro.serve.Server.submit`-level traffic.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from .batching import BatchingConfig, MicroBatcher, Overloaded

__all__ = ["AdmissionController", "CapacityModel", "CapacityPrediction",
           "LATENCY_ERROR_BOUND", "Overloaded", "SLO", "ServiceModel",
           "THROUGHPUT_ERROR_BOUND", "calibrate_service_model"]

#: Documented relative-error bound on throughput/capacity predictions,
#: asserted by ``benchmarks/capacity_smoke.py`` and the
#: ``capacity_model_*`` rows of ``BENCH_serve.json``.
THROUGHPUT_ERROR_BOUND = 0.35
#: Documented relative-error bound on p50/p99 latency predictions (the
#: tail of a queueing system is intrinsically noisier than its mean).
LATENCY_ERROR_BOUND = 0.75


# --------------------------------------------------------------------------- #
# Calibration
# --------------------------------------------------------------------------- #
@dataclass
class ServiceModel:
    """The calibrated cost law of one servable's forward.

    ``forward_s(B) = base_s + per_row_s * B`` — a fixed per-call cost plus
    a per-row cost, fit by least squares over measured batch sizes.
    ``overhead_s`` is the per-request dispatch cost of the submit path
    (validation, digest, queue insertion, future fan-out), which is paid
    once per request and, being GIL-bound Python, never parallelizes
    across batcher workers.
    """

    base_s: float
    per_row_s: float
    overhead_s: float = 0.0
    #: the measured (batch_size -> median forward seconds) points the law
    #: was fit from, for inspection/serialization
    measurements: dict = field(default_factory=dict)

    def forward_s(self, batch_size: int) -> float:
        """Predicted seconds for one forward over ``batch_size`` rows."""
        return self.base_s + self.per_row_s * max(1, int(batch_size))

    def as_dict(self) -> dict:
        return {"base_s": self.base_s, "per_row_s": self.per_row_s,
                "overhead_s": self.overhead_s,
                "measurements": {str(k): v
                                 for k, v in self.measurements.items()}}

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceModel":
        return cls(base_s=float(payload["base_s"]),
                   per_row_s=float(payload["per_row_s"]),
                   overhead_s=float(payload.get("overhead_s", 0.0)),
                   measurements={int(k): float(v) for k, v in
                                 payload.get("measurements", {}).items()})


def _time_forward(predict_fn: Callable[[np.ndarray], np.ndarray],
                  rows: np.ndarray, repeats: int) -> float:
    """Median wall-clock seconds of ``predict_fn`` over ``rows``."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        predict_fn(rows)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def calibrate_service_model(
        predict_fn: Callable[[np.ndarray], np.ndarray],
        input_dim: int,
        dtype: np.dtype = np.float64,
        batch_sizes: Sequence[int] = (1, 4, 16, 64),
        repeats: int = 7,
        probe_requests: int = 512,
        measure_overhead: bool = True,
        seed: int = 0) -> ServiceModel:
    """The calibration probe: measure a loaded servable once, fit the law.

    Times ``predict_fn`` at each batch size (median of ``repeats``), fits
    the affine forward-cost law by least squares, then — unless
    ``measure_overhead=False`` — drives a short saturated burst of
    single-row requests through a real :class:`MicroBatcher` and solves for
    the per-request dispatch overhead the forward timings cannot see:
    ``overhead_s = 1/observed_rate - s(B)/B`` at the probe quantum.
    """
    rng = np.random.default_rng(seed)
    dtype = np.dtype(dtype)
    timings = {}
    for batch_size in sorted(set(int(b) for b in batch_sizes)):
        rows = rng.normal(size=(batch_size, input_dim)).astype(dtype)
        predict_fn(rows)  # warm-up: first call may compile/allocate
        timings[batch_size] = _time_forward(predict_fn, rows, repeats)
    sizes = np.array(sorted(timings), dtype=np.float64)
    seconds = np.array([timings[int(b)] for b in sizes])
    if len(sizes) == 1:
        base_s, per_row_s = 0.0, float(seconds[0] / sizes[0])
    else:
        design = np.stack([np.ones_like(sizes), sizes], axis=1)
        (base_s, per_row_s), *_ = np.linalg.lstsq(design, seconds, rcond=None)
        # Timing noise can drive tiny negative coefficients; clamp — a
        # negative cost would let the capacity model predict free work.
        base_s = max(0.0, float(base_s))
        per_row_s = max(1e-9, float(per_row_s))
    model = ServiceModel(base_s=base_s, per_row_s=per_row_s,
                         measurements=timings)

    if measure_overhead and probe_requests > 0:
        quantum = max(int(b) for b in batch_sizes)
        config = BatchingConfig(max_batch_size=quantum, max_latency_ms=1.0,
                                cache_size=0)
        inputs = rng.normal(size=(probe_requests, input_dim)).astype(dtype)
        with MicroBatcher(predict_fn, config) as batcher:
            futures = []
            start = time.perf_counter()
            for row in inputs:
                futures.append(batcher.submit(row))
            for future in futures:
                future.result(timeout=120)
            elapsed = time.perf_counter() - start
        per_request = elapsed / probe_requests
        model.overhead_s = max(0.0, per_request
                               - model.forward_s(quantum) / quantum)
    return model


# --------------------------------------------------------------------------- #
# The analytic model
# --------------------------------------------------------------------------- #
@dataclass
class SLO:
    """A service-level objective the autotuner inverts the model against."""

    #: required 99th-percentile latency (milliseconds), or None
    p99_ms: Optional[float] = None
    #: required sustained request rate (req/s), or None
    min_throughput: Optional[float] = None
    #: tolerated fraction of requests shed under the stated arrival rate
    max_shed_rate: float = 0.0

    def as_dict(self) -> dict:
        return {"p99_ms": self.p99_ms, "min_throughput": self.min_throughput,
                "max_shed_rate": self.max_shed_rate}


@dataclass
class CapacityPrediction:
    """What the model expects of one ``(config, arrival rate)`` operating point."""

    arrival_rate: float
    #: maximum sustainable request rate of the config (req/s)
    capacity: float
    #: expected completed-request rate at the arrival rate (min(λ, capacity))
    throughput: float
    utilization: float
    #: expected rows fused per batch at this arrival rate
    batch_fill: float
    p50_ms: float
    p99_ms: float
    #: fraction of arrivals the config cannot serve (shed/expired under
    #: overload; 0 below saturation)
    shed_rate: float

    def as_dict(self) -> dict:
        def _round(value: float) -> float:
            return round(float(value), 4) if math.isfinite(value) else value
        return {key: _round(getattr(self, key))
                for key in ("arrival_rate", "capacity", "throughput",
                            "utilization", "batch_fill", "p50_ms", "p99_ms",
                            "shed_rate")}


#: exponential-tail multiplier mapping mean queue wait to its p99
_P99_TAIL = -math.log(0.01)  # ln(100) ≈ 4.6


class CapacityModel:
    """Closed-form throughput/latency predictions for the batching tier.

    Built from a calibrated :class:`ServiceModel`; ``replicas`` counts
    fleet processes serving the same model (their workers pool), ``cpus``
    bounds how many forwards genuinely overlap (defaults to the host's
    affinity count — on a 1-CPU container extra workers model as no-ops,
    matching the measured ``workers2_vs_1`` ≈ 1× bench row).
    """

    def __init__(self, service: ServiceModel, replicas: int = 1,
                 cpus: Optional[int] = None):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.service = service
        self.replicas = int(replicas)
        if cpus is None:
            try:
                cpus = len(os.sched_getaffinity(0))
            except AttributeError:  # non-Linux
                cpus = os.cpu_count() or 1
        self.cpus = max(1, int(cpus))

    def _effective_workers(self, config: BatchingConfig) -> int:
        return max(1, min(config.num_workers * self.replicas, self.cpus))

    def _service_s(self, config: BatchingConfig, fill: float) -> float:
        """Seconds one forward costs at the given expected fill."""
        if config.pad_to_max_batch:
            return self.service.forward_s(config.max_batch_size)
        return self.service.forward_s(int(math.ceil(fill)))

    def capacity(self, config: BatchingConfig) -> float:
        """Maximum sustainable single-row request rate (req/s).

        At saturation batches run full, so each worker retires
        ``B / s(B)`` rows per second; the per-request dispatch overhead is
        serialized on the submit side and adds ``overhead_s`` per request
        regardless of worker count.
        """
        workers = self._effective_workers(config)
        batch = config.max_batch_size
        per_request = (self._service_s(config, batch) / (batch * workers)
                       + self.service.overhead_s)
        return 1.0 / per_request

    def predict(self, config: BatchingConfig,
                arrival_rate: float) -> CapacityPrediction:
        """Throughput, p50/p99, batch fill, and shed rate at ``arrival_rate``."""
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be > 0 req/s")
        rate = float(arrival_rate)
        batch = config.max_batch_size
        window_s = config.max_latency_ms / 1000.0
        workers = self._effective_workers(config)
        capacity = self.capacity(config)
        utilization = rate / capacity

        if utilization >= 1.0:
            # Saturated: the queue grows until back-pressure, deadlines, or
            # admission control shed the excess.  Latency is then set by
            # the queue bound, not by the arrival rate.
            fill = float(batch)
            service_s = self._service_s(config, fill)
            if config.max_queue_size > 0:
                # A full bounded queue drains in depth/capacity seconds.
                wait_s = config.max_queue_size / capacity
                p50 = p99 = ((self.service.overhead_s + wait_s + service_s)
                             * 1000.0)
            else:
                p50 = p99 = float("inf")
            return CapacityPrediction(
                arrival_rate=rate, capacity=capacity, throughput=capacity,
                utilization=utilization, batch_fill=fill,
                p50_ms=p50, p99_ms=p99,
                shed_rate=1.0 - capacity / rate)

        # Below saturation.  The batch opener waits for company at most
        # max_latency_ms, or until B-1 more arrivals show up — whichever
        # is sooner; a random request waits about half the gather window.
        gather_s = 0.0 if batch <= 1 else min(window_s, (batch - 1) / rate)
        # Batch fill has two sources: company gathered during the window,
        # and backlog accumulated while the worker ran the previous forward
        # (arrivals during one service+gather cycle open the next batch
        # together).  The cycle term is a fixed point because the service
        # time depends on the fill when padding is off; a few damped
        # iterations converge.
        fill = min(float(batch), 1.0 + rate * gather_s)
        for _ in range(8):
            cycle_s = self._service_s(config, fill) + gather_s
            target = min(float(batch),
                         max(1.0 + rate * gather_s,
                             rate * cycle_s / workers))
            fill = 0.5 * fill + 0.5 * target
        service_s = self._service_s(config, fill)
        # Queueing for a free worker, at the *capacity* utilization — fill
        # self-regulates (a deeper backlog makes fuller batches), so the
        # long-run busy fraction is rate/capacity, not the instantaneous
        # fill's ratio.  Sakasegawa's M/M/c mean wait, halved for
        # near-deterministic (M/D/c) service.
        rho = min(utilization, 0.999)
        queue_wait_s = 0.5 * service_s * (
            rho ** math.sqrt(2.0 * (workers + 1))) / (workers * (1.0 - rho))
        base_s = self.service.overhead_s + service_s
        p50 = (base_s + 0.5 * gather_s + queue_wait_s) * 1000.0
        # p99: a request that opens a batch eats the whole gather window, on
        # top of the exponential-tailed queue wait and (worst case) the
        # residual service of a forward already in flight.
        p99 = (base_s + gather_s + service_s
               + _P99_TAIL * queue_wait_s) * 1000.0
        return CapacityPrediction(
            arrival_rate=rate, capacity=capacity, throughput=rate,
            utilization=utilization, batch_fill=fill,
            p50_ms=p50, p99_ms=p99, shed_rate=0.0)

    # ------------------------------------------------------------------ #
    # Inversion: the SLO autotuner
    # ------------------------------------------------------------------ #
    def autotune(self, slo: SLO, arrival_rate: float,
                 batch_sizes: Iterable[int] = (1, 2, 4, 8, 16, 32, 64, 128),
                 latencies_ms: Iterable[float] = (0.0, 0.5, 1.0, 2.0, 5.0,
                                                  10.0, 20.0, 50.0),
                 max_workers: int = 4,
                 base_config: Optional[BatchingConfig] = None,
                 ) -> Tuple[BatchingConfig, CapacityPrediction]:
        """The cheapest :class:`BatchingConfig` meeting ``slo`` at ``arrival_rate``.

        Searches the knob grid and returns ``(config, prediction)`` for the
        least-cost config whose *predicted* operating point satisfies every
        stated objective — cost ordered by worker count first (hardware),
        then batch size (memory and per-request latency floor), then the
        batching window.  Raises ``ValueError`` (naming the best achievable
        operating point) when no point in the grid meets the SLO — the
        honest answer being "buy more capacity", not a config that will
        miss its promise.
        """
        base = base_config or BatchingConfig()
        required_rate = max(float(arrival_rate), slo.min_throughput or 0.0)
        best: Optional[Tuple[tuple, BatchingConfig, CapacityPrediction]] = None
        closest: Optional[Tuple[float, BatchingConfig, CapacityPrediction]] = None
        for workers in range(1, max_workers + 1):
            for batch in sorted(set(int(b) for b in batch_sizes)):
                for window in sorted(set(float(w) for w in latencies_ms)):
                    config = replace(base, max_batch_size=batch,
                                     max_latency_ms=window,
                                     num_workers=workers)
                    prediction = self.predict(config, required_rate)
                    meets = (prediction.shed_rate <= slo.max_shed_rate + 1e-9
                             and (slo.min_throughput is None
                                  or prediction.throughput
                                  >= slo.min_throughput)
                             and (slo.p99_ms is None
                                  or prediction.p99_ms <= slo.p99_ms))
                    if meets:
                        cost = (workers, batch, window)
                        if best is None or cost < best[0]:
                            best = (cost, config, prediction)
                    else:
                        miss = (prediction.p99_ms
                                if math.isfinite(prediction.p99_ms)
                                else float("inf"))
                        if closest is None or miss < closest[0]:
                            closest = (miss, config, prediction)
        if best is None:
            detail = ""
            if closest is not None:
                detail = (f"; best achievable p99 "
                          f"{closest[0]:.1f} ms with {closest[1]}")
            raise ValueError(
                f"no config in the search grid meets {slo.as_dict()} at "
                f"{arrival_rate:.0f} req/s (model capacity tops out at "
                f"{self.capacity(replace(base, max_batch_size=max(batch_sizes), num_workers=max_workers)):.0f} req/s)"
                + detail)
        return best[1], best[2]

    def describe(self) -> dict:
        return {"service": self.service.as_dict(),
                "replicas": self.replicas, "cpus": self.cpus,
                "error_bounds": {"throughput": THROUGHPUT_ERROR_BOUND,
                                 "latency": LATENCY_ERROR_BOUND}}


# --------------------------------------------------------------------------- #
# Model-driven admission control
# --------------------------------------------------------------------------- #
class AdmissionController:
    """Shed load *before* the queue melts, not after deadlines expire.

    Classic failure shape: under overload an unbounded queue grows without
    limit, every queued request eventually expires, and the server does
    nothing but manufacture 504s.  This controller uses the calibrated
    capacity of the current config to refuse requests (HTTP 429,
    retryable) while refusal is still cheap:

    * a queue depth whose predicted drain time exceeds ``max_delay_ms``
      means the request would wait out its latency budget — shed it;
    * a request whose own ``deadline_ms`` is smaller than the predicted
      wait *plus* the service floor cannot possibly be served in time —
      shed it now instead of letting it expire into a 504 later.

    Thread-safe; counters are exposed via :meth:`describe` (and the
    server's ``GET /capacity``).
    """

    def __init__(self, model: CapacityModel, config: BatchingConfig,
                 max_delay_ms: Optional[float] = None,
                 slo: Optional[SLO] = None):
        self.model = model
        self.config = config
        self.capacity_req_per_sec = model.capacity(config)
        #: seconds one already-queued request adds to the predicted wait
        self._per_queued_s = 1.0 / self.capacity_req_per_sec
        #: the latency floor a request pays even on an empty queue
        self.service_floor_ms = (
            model.service.overhead_s
            + model._service_s(config, config.max_batch_size)
            + config.max_latency_ms / 1000.0) * 1000.0
        if max_delay_ms is None and slo is not None and slo.p99_ms is not None:
            # Budget = the SLO's p99 minus the unavoidable service floor.
            max_delay_ms = max(1.0, slo.p99_ms - self.service_floor_ms)
        self.max_delay_ms = max_delay_ms
        self._lock = threading.Lock()
        self.admitted = 0
        self.shed = 0

    def predicted_wait_ms(self, queue_depth: int) -> float:
        """Predicted queueing delay of a request behind ``queue_depth`` others."""
        return max(0, int(queue_depth)) * self._per_queued_s * 1000.0

    def admit(self, queue_depth: int,
              deadline_ms: Optional[float] = None) -> None:
        """Admit the request or raise :class:`Overloaded` (HTTP 429).

        A deadline that is *already* spent (``deadline_ms <= 0``) is not
        shed here: a 429 invites a retry, and no replica anywhere can
        serve a stale request.  It falls through to the batcher's
        submit-time expiry and surfaces as the honest, non-retryable
        ``DeadlineExceeded`` (504).
        """
        wait_ms = self.predicted_wait_ms(queue_depth)
        over_budget = (self.max_delay_ms is not None
                       and wait_ms > self.max_delay_ms)
        hopeless = (deadline_ms is not None and float(deadline_ms) > 0
                    and wait_ms + self.service_floor_ms > float(deadline_ms))
        if over_budget or hopeless:
            with self._lock:
                self.shed += 1
            if hopeless and not over_budget:
                raise Overloaded(
                    f"shedding: predicted wait {wait_ms:.1f} ms + service "
                    f"floor {self.service_floor_ms:.1f} ms exceeds the "
                    f"request deadline of {float(deadline_ms):.1f} ms — "
                    f"retry a less-loaded replica")
            raise Overloaded(
                f"shedding: {int(queue_depth)} queued requests imply a "
                f"{wait_ms:.1f} ms wait, over the {self.max_delay_ms:.1f} ms "
                f"admission budget — retry later or elsewhere")
        with self._lock:
            self.admitted += 1

    def describe(self) -> dict:
        with self._lock:
            admitted, shed = self.admitted, self.shed
        return {"capacity_req_per_sec": round(self.capacity_req_per_sec, 1),
                "max_delay_ms": self.max_delay_ms,
                "service_floor_ms": round(self.service_floor_ms, 3),
                "admitted": admitted, "shed": shed}
