"""The versioned on-disk format for servable end models.

TAGLETS' product is the distilled end model — a single backbone-sized
classifier meant to be deployed (the paper's "servable model").  An exported
artifact is a directory::

    <path>/
        manifest.json   # schema version, classes, backbone spec, dtype,
                        # per-weight shapes/dtypes, content digest, metrics
        weights.npz     # the end model's state dict

``manifest.json`` is self-describing: a servable can be inspected, listed,
and validated without touching the weight archive, and the archive itself is
integrity-checked against the manifest's SHA-256 digest on load.  The schema
is versioned so future PRs can evolve the format while still reading (or
loudly rejecting) old artifacts.
"""

from __future__ import annotations

import json
import os
import threading
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..backbones.backbone import BackboneSpec, ClassificationModel, Encoder
from ..distill.end_model import EndModel
from ..nn.serialization import (load_state_dict, save_state_dict,
                                state_dict_digest, state_dict_manifest,
                                validate_state_dict)
from ..nn.tensor import default_dtype, get_default_dtype
from ..nn.training import predict_logits, softmax_rows
from .batching import run_at_quantum

#: The engine's default dtype is process-global, so a servable whose dtype
#: differs from the process default must flip it for the duration of each
#: forward.  This lock serializes every servable forward so two models of
#: different dtypes never race on the flag (one forward is one fused batch,
#: so the critical section is short).
_FORWARD_LOCK = threading.Lock()

__all__ = ["SCHEMA_VERSION", "MANIFEST_NAME", "WEIGHTS_NAME",
           "ArtifactError", "ServableModel", "export_end_model",
           "load_servable", "read_manifest"]

#: Bump when the manifest layout changes incompatibly.
SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"
WEIGHTS_NAME = "weights.npz"

#: Manifest keys every schema-1 artifact must carry.
_REQUIRED_KEYS = ("schema_version", "format", "class_names", "backbone",
                  "dtype", "weights", "weights_digest")


class ArtifactError(ValueError):
    """An exported artifact is missing, malformed, or fails validation."""


def _end_model_of(source) -> EndModel:
    """Accept an :class:`EndModel` or anything carrying one (``.end_model``)."""
    if isinstance(source, EndModel):
        return source
    end_model = getattr(source, "end_model", None)
    if isinstance(end_model, EndModel):
        return end_model
    raise TypeError(
        f"expected an EndModel or a result carrying one, got {type(source).__name__}")


def _class_names_of(source, class_names) -> List[str]:
    if class_names is not None:
        return [str(name) for name in class_names]
    names = getattr(source, "class_names", None)
    if names:
        return [str(name) for name in names]
    raise ValueError("class_names are required: pass them explicitly or export "
                     "a TagletsResult (which records them)")


def export_end_model(source, path: str,
                     class_names: Optional[Sequence[str]] = None,
                     metrics: Optional[Dict[str, float]] = None,
                     task_name: Optional[str] = None) -> str:
    """Export a trained end model as a versioned servable artifact.

    ``source`` is a :class:`~repro.core.controller.TagletsResult` (class
    names and task name are taken from it) or a bare :class:`EndModel` (pass
    ``class_names`` explicitly).  Returns the artifact directory path.
    """
    end_model = _end_model_of(source)
    names = _class_names_of(source, class_names)
    model = end_model.model
    if len(names) != model.num_classes:
        raise ValueError(f"got {len(names)} class names for a "
                         f"{model.num_classes}-class end model")
    spec: BackboneSpec = end_model.backbone_spec
    state = end_model.state_dict()
    # The dtype the model was trained under, falling back to float64 when
    # the state is mixed or exotic (the engine only runs float32/float64).
    dtype = str(np.dtype(end_model.dtype))
    if dtype not in ("float32", "float64") or \
            {str(np.asarray(v).dtype) for v in state.values()} != {dtype}:
        dtype = "float64"

    manifest = {
        "schema_version": SCHEMA_VERSION,
        "format": "taglets-end-model",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "task_name": task_name or getattr(source, "task_name", None),
        "class_names": names,
        "num_classes": model.num_classes,
        "backbone": {
            "name": spec.name,
            "input_dim": spec.input_dim,
            "hidden_dims": list(spec.hidden_dims),
            "feature_dim": spec.feature_dim,
            "pretraining": spec.pretraining,
        },
        # The servable is rebuilt in this dtype so served logits match
        # offline inference bit for bit.
        "dtype": dtype,
        "num_parameters": end_model.num_parameters(),
        "metrics": dict(metrics or {}),
        "weights": state_dict_manifest(state),
        "weights_digest": state_dict_digest(state),
    }

    os.makedirs(path, exist_ok=True)
    save_state_dict(state, os.path.join(path, WEIGHTS_NAME))
    manifest_path = os.path.join(path, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
    return path


def read_manifest(path: str) -> dict:
    """Read and schema-check an artifact's manifest (weights stay untouched)."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if not os.path.isdir(path) or not os.path.exists(manifest_path):
        raise ArtifactError(f"no servable artifact at {path!r} "
                            f"(expected a directory containing {MANIFEST_NAME})")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except json.JSONDecodeError as error:
            raise ArtifactError(f"corrupt manifest at {manifest_path}: {error}")
    missing = [key for key in _REQUIRED_KEYS if key not in manifest]
    if missing:
        raise ArtifactError(f"manifest at {manifest_path} is missing "
                            f"required keys: {missing}")
    version = manifest["schema_version"]
    if version != SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact at {path!r} has schema version {version}; this build "
            f"reads version {SCHEMA_VERSION} — re-export the model or upgrade")
    return manifest


class ServableModel:
    """An inference-only end model reconstructed from an artifact.

    The wrapped model is permanently in eval mode and all predictions run
    under the engine's ``no_grad`` inference mode — a servable never builds
    a backward tape.  ``fingerprint`` (the artifact's weight digest) keys
    prediction caches and identifies the exact weights a response came from.
    """

    def __init__(self, model: ClassificationModel, manifest: dict,
                 path: Optional[str] = None):
        model.eval()
        self._model = model
        self.manifest = manifest
        self.path = path
        self.class_names: List[str] = list(manifest["class_names"])
        self.dtype = np.dtype(manifest["dtype"])
        self.fingerprint: str = manifest["weights_digest"]

    @property
    def num_classes(self) -> int:
        return self._model.num_classes

    @property
    def input_dim(self) -> int:
        return self._model.encoder.spec.input_dim

    def predict_logits(self, features: np.ndarray,
                       batch_size: Optional[int] = None) -> np.ndarray:
        """Logits for ``features``.

        ``batch_size=None`` (the default) runs one full-array forward — the
        offline mode.  With a ``batch_size``, inference runs at that fixed
        *quantum*: every chunk, including the last, is padded to exactly
        ``batch_size`` rows.  BLAS gemm kernels choose different reduction
        orders for different row counts, so a row's logits are a pure
        function of (row, weights, batch rows); running at a fixed quantum
        is what makes quantized offline inference bit-identical to the
        micro-batched serving path configured with the same
        ``max_batch_size``.
        """
        features = np.asarray(features, dtype=self.dtype)
        if features.ndim == 2 and batch_size is not None and batch_size > 0:
            if len(features) == 0:
                return np.zeros((0, self.num_classes), dtype=self.dtype)
            # Same chunk-and-pad implementation the micro-batcher runs, so
            # quantized offline inference is bit-identical to serving.
            return run_at_quantum(
                lambda rows: self.predict_logits(rows, batch_size=None),
                features, batch_size)
        # BLAS routes 1-row matmuls through gemv, whose reduction order can
        # differ from the batched gemm path in the last bit.  Pad singleton
        # batches to two rows so a lone example gets the gemm path.
        if features.ndim == 2 and len(features) == 1:
            return self._forward(np.concatenate([features, features]))[:1]
        return self._forward(features)

    def _forward(self, features: np.ndarray) -> np.ndarray:
        with _FORWARD_LOCK:
            if np.dtype(get_default_dtype()) == self.dtype:
                return predict_logits(self._model, features, batch_size=None)
            with default_dtype(self.dtype):
                return predict_logits(self._model, features, batch_size=None)

    def predict_proba(self, features: np.ndarray,
                      batch_size: Optional[int] = None) -> np.ndarray:
        return softmax_rows(self.predict_logits(features,
                                                batch_size=batch_size))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def predict_names(self, features: np.ndarray) -> List[str]:
        return [self.class_names[i] for i in self.predict(features)]

    def describe(self) -> dict:
        """A JSON-friendly summary (what ``GET /models`` reports)."""
        return {
            "task_name": self.manifest.get("task_name"),
            "num_classes": self.num_classes,
            "class_names": self.class_names,
            "backbone": self.manifest["backbone"],
            "dtype": str(self.dtype),
            "num_parameters": self.manifest.get("num_parameters"),
            "metrics": self.manifest.get("metrics", {}),
            "created": self.manifest.get("created"),
            "fingerprint": self.fingerprint,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ServableModel({self.manifest.get('task_name')!r}, "
                f"{self.num_classes} classes, dtype={self.dtype})")


def load_servable(path: str, verify_digest: bool = True) -> ServableModel:
    """Reconstruct an inference-only model from an exported artifact.

    The weight archive is strictly validated against the rebuilt
    architecture (every key, shape, and dtype) and, unless disabled,
    integrity-checked against the manifest's digest.
    """
    manifest = read_manifest(path)
    weights_path = os.path.join(path, WEIGHTS_NAME)
    if not os.path.exists(weights_path):
        raise ArtifactError(f"artifact at {path!r} has no {WEIGHTS_NAME}")
    state = load_state_dict(weights_path)

    if verify_digest:
        digest = state_dict_digest(state)
        if digest != manifest["weights_digest"]:
            raise ArtifactError(
                f"weight archive at {weights_path} does not match its "
                f"manifest digest (expected {manifest['weights_digest'][:12]}…, "
                f"got {digest[:12]}…) — the artifact is corrupt or was edited")

    backbone = manifest["backbone"]
    spec = BackboneSpec(name=backbone["name"],
                        input_dim=int(backbone["input_dim"]),
                        hidden_dims=tuple(backbone["hidden_dims"]),
                        feature_dim=int(backbone["feature_dim"]),
                        pretraining=backbone.get("pretraining", "none"))
    # Rebuild under the recorded dtype so parameters (and therefore served
    # logits) match the training-time model exactly.
    with default_dtype(manifest["dtype"]):
        encoder = Encoder(spec, rng=np.random.default_rng(0))
        model = ClassificationModel(encoder, int(manifest["num_classes"]),
                                    rng=np.random.default_rng(0))
    try:
        validate_state_dict(model, state, source=weights_path)
    except ValueError as error:
        raise ArtifactError(str(error))
    model.load_state_dict(state)
    return ServableModel(model, manifest, path=path)
