"""The versioned on-disk format for servable models and taglet ensembles.

TAGLETS' product is the distilled end model — a single backbone-sized
classifier meant to be deployed (the paper's "servable model").  An exported
end-model artifact is a directory::

    <path>/
        manifest.json   # schema version, classes, backbone spec, dtype,
                        # per-weight shapes/dtypes, content digest, metrics
        weights.npz     # the end model's state dict

Schema **v2** adds a second format, the **taglet ensemble** — the paper's
quality-over-latency deployment (the ensemble outperforms the distilled end
model; Figure 6) serves the averaged vote of every taglet instead of the one
distilled student::

    <path>/
        manifest.json   # schema 2, format "taglets-ensemble", one entry per
                        # member (kind, backbone, dtype, weights, digest)
        member_0.npz    # each member taglet's state dict
        member_1.npz
        ...

``manifest.json`` is self-describing: a servable can be inspected, listed,
and validated without touching the weight archives, and every archive is
integrity-checked against its manifest SHA-256 digest on load.  The schema
is versioned; schema-1 artifacts (end models from earlier exports) still
load, unknown versions are loudly rejected.

Serving forwards are **compiled**: at load time the rebuilt Linear/ReLU
chain is flattened into a plan of raw NumPy kernels that replay the engine's
ops bit-for-bit (``x @ W``, ``+= b``, ``x * (x > 0)``) in the artifact's own
dtype.  The compiled path touches no process-global engine state, so
concurrent forwards need no lock — which is what lets the multi-worker
micro-batcher (``BatchingConfig.num_workers``) genuinely overlap forwards.
An unexpected architecture falls back to the tape-based module forward under
a global lock (the engine's default dtype is process-global).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backbones.backbone import BackboneSpec, ClassificationModel, Encoder
from ..distill.end_model import EndModel
from ..ensemble.voting import TagletEnsemble, renormalized_mean
from ..modules.base import ModelTaglet, Taglet
from ..modules.zsl_kg import ZslKgTaglet
from ..nn.modules import Identity, Linear, MLP, ReLU, Sequential
from ..nn.serialization import (load_state_dict, save_state_dict,
                                state_dict_digest, state_dict_manifest,
                                validate_state_dict)
from ..nn.tensor import default_dtype, get_default_dtype
from ..nn.training import predict_logits, softmax_rows
from .batching import run_at_quantum

#: The engine's default dtype is process-global, so the *fallback* module
#: forward (used only when a servable's architecture cannot be compiled)
#: must flip it for the duration of each forward under this lock, so two
#: models of different dtypes never race on the flag.  Compiled forwards
#: never take it.
_FORWARD_LOCK = threading.Lock()

__all__ = ["SCHEMA_VERSION", "MANIFEST_NAME", "WEIGHTS_NAME",
           "ArtifactError", "Servable", "ServableModel", "ServableEnsemble",
           "export_end_model", "export_ensemble", "load_servable",
           "read_manifest"]

#: Bump when the manifest layout changes incompatibly.  Version 2 added the
#: "taglets-ensemble" format; version-1 end-model artifacts read fine.
SCHEMA_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
MANIFEST_NAME = "manifest.json"
WEIGHTS_NAME = "weights.npz"

FORMAT_END_MODEL = "taglets-end-model"
FORMAT_ENSEMBLE = "taglets-ensemble"

#: Manifest keys every end-model artifact must carry.
_REQUIRED_KEYS = ("schema_version", "format", "class_names", "backbone",
                  "dtype", "num_classes", "weights", "weights_digest")
#: Manifest keys every ensemble artifact must carry.
_REQUIRED_ENSEMBLE_KEYS = ("schema_version", "format", "class_names",
                           "members")
#: Keys every ensemble *member* entry must carry.
_REQUIRED_MEMBER_KEYS = ("name", "kind", "backbone", "dtype", "num_classes",
                         "weights", "weights_digest", "weights_file")
#: Member kinds the loader knows how to serve.
_MEMBER_KINDS = ("model", "zsl_kg")


class ArtifactError(ValueError):
    """An exported artifact is missing, malformed, or fails validation."""


def _end_model_of(source) -> EndModel:
    """Accept an :class:`EndModel` or anything carrying one (``.end_model``)."""
    if isinstance(source, EndModel):
        return source
    end_model = getattr(source, "end_model", None)
    if isinstance(end_model, EndModel):
        return end_model
    raise TypeError(
        f"expected an EndModel or a result carrying one, got {type(source).__name__}")

def _class_names_of(source, class_names) -> List[str]:
    if class_names is not None:
        return [str(name) for name in class_names]
    names = getattr(source, "class_names", None)
    if names:
        return [str(name) for name in names]
    raise ValueError("class_names are required: pass them explicitly or export "
                     "a TagletsResult (which records them)")


def _model_dtype(model: ClassificationModel, declared) -> str:
    """The dtype a model's weights actually hold, falling back to float64
    when the state is mixed or exotic (the engine runs float32/float64)."""
    dtype = str(np.dtype(declared))
    state = model.state_dict()
    if dtype not in ("float32", "float64") or \
            {str(np.asarray(v).dtype) for v in state.values()} != {dtype}:
        return "float64"
    return dtype


def _backbone_entry(spec: BackboneSpec) -> dict:
    return {
        "name": spec.name,
        "input_dim": spec.input_dim,
        "hidden_dims": list(spec.hidden_dims),
        "feature_dim": spec.feature_dim,
        "pretraining": spec.pretraining,
    }


def export_end_model(source, path: str,
                     class_names: Optional[Sequence[str]] = None,
                     metrics: Optional[Dict[str, float]] = None,
                     task_name: Optional[str] = None) -> str:
    """Export a trained end model as a versioned servable artifact.

    ``source`` is a :class:`~repro.core.controller.TagletsResult` (class
    names and task name are taken from it) or a bare :class:`EndModel` (pass
    ``class_names`` explicitly).  Returns the artifact directory path.
    """
    end_model = _end_model_of(source)
    names = _class_names_of(source, class_names)
    model = end_model.model
    if len(names) != model.num_classes:
        raise ValueError(f"got {len(names)} class names for a "
                         f"{model.num_classes}-class end model")
    spec: BackboneSpec = end_model.backbone_spec
    state = end_model.state_dict()
    dtype = _model_dtype(model, end_model.dtype)

    manifest = {
        "schema_version": SCHEMA_VERSION,
        "format": FORMAT_END_MODEL,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "task_name": task_name or getattr(source, "task_name", None),
        "class_names": names,
        "num_classes": model.num_classes,
        "backbone": _backbone_entry(spec),
        # The servable is rebuilt in this dtype so served logits match
        # offline inference bit for bit.
        "dtype": dtype,
        "num_parameters": end_model.num_parameters(),
        "metrics": dict(metrics or {}),
        "weights": state_dict_manifest(state),
        "weights_digest": state_dict_digest(state),
    }

    os.makedirs(path, exist_ok=True)
    save_state_dict(state, os.path.join(path, WEIGHTS_NAME))
    _write_manifest(path, manifest)
    return path


def _ensemble_of(source) -> TagletEnsemble:
    """Accept a :class:`TagletEnsemble` or anything carrying one."""
    if isinstance(source, TagletEnsemble):
        return source
    ensemble = getattr(source, "ensemble", None)
    if isinstance(ensemble, TagletEnsemble):
        return ensemble
    raise TypeError(f"expected a TagletEnsemble or a result carrying one, "
                    f"got {type(source).__name__}")


def _member_entry(taglet: Taglet, index: int) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Describe one taglet as an exportable ensemble member.

    Supported taglets are the model-backed ones: :class:`ModelTaglet`
    (probabilities are the softmax of the model logits) and
    :class:`ZslKgTaglet` (logits are scaled by ``logit_scale`` first).
    """
    if isinstance(taglet, ZslKgTaglet):
        kind, model = "zsl_kg", taglet.model
        extra = {"logit_scale": float(taglet.logit_scale)}
    elif isinstance(taglet, ModelTaglet):
        kind, model = "model", taglet.model
        extra = {}
    else:
        raise TypeError(
            f"taglet {taglet.name!r} ({type(taglet).__name__}) is not "
            f"model-backed and cannot be exported; servable ensembles "
            f"support ModelTaglet and ZslKgTaglet members")
    state = model.state_dict()
    dtype = _model_dtype(model, model.head.weight.data.dtype)
    entry = {
        "name": taglet.name,
        "kind": kind,
        "backbone": _backbone_entry(model.encoder.spec),
        "dtype": dtype,
        "num_classes": model.num_classes,
        "num_parameters": model.num_parameters(),
        "weights": state_dict_manifest(state),
        "weights_digest": state_dict_digest(state),
        "weights_file": f"member_{index}.npz",
        **extra,
    }
    return entry, state


def export_ensemble(source, path: str,
                    class_names: Optional[Sequence[str]] = None,
                    metrics: Optional[Dict[str, float]] = None,
                    task_name: Optional[str] = None) -> str:
    """Export a whole taglet ensemble as one servable artifact.

    ``source`` is a :class:`~repro.core.controller.TagletsResult` (class
    names, task name, and the ensemble are taken from it) or a bare
    :class:`TagletEnsemble` (pass ``class_names`` explicitly).  The served
    prediction is the renormalized mean of the members' probability vectors
    (Eq. 6) — exactly offline :meth:`TagletEnsemble.predict_proba`.
    Returns the artifact directory path.
    """
    ensemble = _ensemble_of(source)
    names = _class_names_of(source, class_names)
    members: List[dict] = []
    states: List[Dict[str, np.ndarray]] = []
    input_dims = set()
    for index, taglet in enumerate(ensemble.taglets):
        entry, state = _member_entry(taglet, index)
        if entry["num_classes"] != len(names):
            raise ValueError(
                f"member {taglet.name!r} predicts {entry['num_classes']} "
                f"classes but {len(names)} class names were given")
        input_dims.add(entry["backbone"]["input_dim"])
        members.append(entry)
        states.append(state)
    if len(input_dims) != 1:
        raise ValueError(f"ensemble members disagree on input_dim: "
                         f"{sorted(input_dims)}")

    manifest = {
        "schema_version": SCHEMA_VERSION,
        "format": FORMAT_ENSEMBLE,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "task_name": task_name or getattr(source, "task_name", None),
        "class_names": names,
        "num_classes": len(names),
        "num_members": len(members),
        "metrics": dict(metrics or {}),
        "members": members,
    }

    os.makedirs(path, exist_ok=True)
    for entry, state in zip(members, states):
        save_state_dict(state, os.path.join(path, entry["weights_file"]))
    _write_manifest(path, manifest)
    return path


def _write_manifest(path: str, manifest: dict) -> None:
    with open(os.path.join(path, MANIFEST_NAME), "w",
              encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")


def read_manifest(path: str) -> dict:
    """Read and schema-check an artifact's manifest (weights stay untouched)."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if not os.path.isdir(path) or not os.path.exists(manifest_path):
        raise ArtifactError(f"no servable artifact at {path!r} "
                            f"(expected a directory containing {MANIFEST_NAME})")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        try:
            manifest = json.load(handle)
        except json.JSONDecodeError as error:
            raise ArtifactError(f"corrupt manifest at {manifest_path}: {error}")
    version = manifest.get("schema_version")
    if version not in _SUPPORTED_VERSIONS:
        raise ArtifactError(
            f"artifact at {path!r} has schema version {version}; this build "
            f"reads versions {list(_SUPPORTED_VERSIONS)} — re-export the "
            f"model or upgrade")
    fmt = manifest.get("format")
    if fmt == FORMAT_ENSEMBLE:
        if version < 2:
            raise ArtifactError(
                f"artifact at {path!r} declares an ensemble under schema "
                f"version {version}; ensembles require schema version 2")
        required: Sequence[str] = _REQUIRED_ENSEMBLE_KEYS
    else:
        # Schema-1 artifacts are always end models; unknown formats fail
        # the end-model key check loudly below.
        required = _REQUIRED_KEYS
    missing = [key for key in required if key not in manifest]
    if missing:
        raise ArtifactError(f"manifest at {manifest_path} is missing "
                            f"required keys: {missing}")
    if fmt not in (FORMAT_END_MODEL, FORMAT_ENSEMBLE):
        raise ArtifactError(f"artifact at {path!r} has unknown format {fmt!r}")
    if fmt == FORMAT_ENSEMBLE:
        for index, entry in enumerate(manifest["members"]):
            member_missing = [key for key in _REQUIRED_MEMBER_KEYS
                              if key not in entry]
            if member_missing:
                raise ArtifactError(
                    f"ensemble member {index} in {manifest_path} is missing "
                    f"required keys: {member_missing}")
            kind = entry["kind"]
            if kind not in _MEMBER_KINDS:
                raise ArtifactError(
                    f"ensemble member {index} in {manifest_path} has unknown "
                    f"kind {kind!r}; this build serves {list(_MEMBER_KINDS)}")
            # A zsl_kg member without its logit scale would silently serve
            # un-scaled votes — reject the manifest instead.
            if kind == "zsl_kg" and not isinstance(
                    entry.get("logit_scale"), (int, float)):
                raise ArtifactError(
                    f"ensemble member {index} in {manifest_path} is a "
                    f"zsl_kg taglet but carries no numeric 'logit_scale'")
    return manifest


# --------------------------------------------------------------------------- #
# Compiled forwards
# --------------------------------------------------------------------------- #
def _compile_forward(model: ClassificationModel) -> Optional[
        Callable[[np.ndarray], np.ndarray]]:
    """Flatten a Linear/ReLU model into a raw-NumPy kernel plan.

    The plan replays the engine's inference ops bit-for-bit — ``x @ W`` then
    ``+= b`` (:func:`repro.nn.functional.linear`) and ``x * (x > 0)``
    (``Tensor.relu``) — in the weights' own dtype, touching no process-global
    engine state: no tape, no default-dtype flip, no lock.  Concurrent calls
    are safe (the plan only reads the weight arrays), which is what the
    multi-worker micro-batcher relies on.  Returns ``None`` when the model
    contains a layer the compiler does not know, and the servable falls back
    to the locked module forward.
    """
    steps: List[Tuple[str, Optional[np.ndarray], Optional[np.ndarray]]] = []

    def add(module) -> bool:
        if isinstance(module, Linear):
            bias = module.bias.data if module.bias is not None else None
            steps.append(("linear", module.weight.data, bias))
        elif isinstance(module, ReLU):
            steps.append(("relu", None, None))
        elif isinstance(module, Identity):
            pass
        elif isinstance(module, Sequential):
            return all(add(layer) for layer in module.layers)
        elif isinstance(module, MLP):
            return add(module.net)
        else:
            return False
        return True

    encoder = model.encoder
    if type(encoder) is not Encoder or type(model) is not ClassificationModel:
        return None
    if not (add(encoder.trunk) and add(encoder.activation) and add(model.head)):
        return None

    def forward(features: np.ndarray) -> np.ndarray:
        out = features
        for kind, weight, bias in steps:
            if kind == "linear":
                out = out @ weight
                if bias is not None:
                    out += bias
            else:
                out = out * (out > 0)
        return out

    return forward


# --------------------------------------------------------------------------- #
# Servables
# --------------------------------------------------------------------------- #
class Servable:
    """Anything the registry can hand out and the server can batch over.

    The contract the serving tier is written against: probability inference
    over ``(n, input_dim)`` rows in a fixed ``dtype``, plus the identity
    (``fingerprint``) that keys prediction caches and stale-batcher
    detection, and a JSON-friendly :meth:`describe`.
    """

    manifest: dict
    path: Optional[str]
    class_names: List[str]
    dtype: np.dtype
    fingerprint: str

    @property
    def num_classes(self) -> int:
        raise NotImplementedError

    @property
    def input_dim(self) -> int:
        raise NotImplementedError

    def predict_proba(self, features: np.ndarray,
                      batch_size: Optional[int] = None) -> np.ndarray:
        raise NotImplementedError

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def predict_names(self, features: np.ndarray) -> List[str]:
        return [self.class_names[i] for i in self.predict(features)]

    def describe(self) -> dict:
        raise NotImplementedError


class ServableModel(Servable):
    """An inference-only end model reconstructed from an artifact.

    The wrapped model is permanently in eval mode and never builds a
    backward tape.  Forwards run through the compiled raw-NumPy plan (see
    :func:`_compile_forward`) — lock-free and safe to call concurrently —
    falling back to the tape-based module forward under the engine-wide
    dtype lock for architectures the compiler does not know.
    ``fingerprint`` (the artifact's weight digest) keys prediction caches
    and identifies the exact weights a response came from.
    """

    def __init__(self, model: ClassificationModel, manifest: dict,
                 path: Optional[str] = None, compiled: bool = True):
        model.eval()
        self._model = model
        self.manifest = manifest
        self.path = path
        self.class_names: List[str] = list(manifest["class_names"])
        self.dtype = np.dtype(manifest["dtype"])
        self.fingerprint: str = manifest["weights_digest"]
        # ``compiled=False`` forces the locked module forward (the serving
        # benchmark uses it to keep a history-comparable naive baseline).
        self._compiled = _compile_forward(model) if compiled else None

    @property
    def num_classes(self) -> int:
        return self._model.num_classes

    @property
    def input_dim(self) -> int:
        return self._model.encoder.spec.input_dim

    @property
    def compiled(self) -> bool:
        """Whether forwards run the lock-free compiled kernel plan."""
        return self._compiled is not None

    def predict_logits(self, features: np.ndarray,
                       batch_size: Optional[int] = None) -> np.ndarray:
        """Logits for ``features``.

        ``batch_size=None`` (the default) runs one full-array forward — the
        offline mode.  With a ``batch_size``, inference runs at that fixed
        *quantum*: every chunk, including the last, is padded to exactly
        ``batch_size`` rows.  BLAS gemm kernels choose different reduction
        orders for different row counts, so a row's logits are a pure
        function of (row, weights, batch rows); running at a fixed quantum
        is what makes quantized offline inference bit-identical to the
        micro-batched serving path configured with the same
        ``max_batch_size``.
        """
        features = np.asarray(features, dtype=self.dtype)
        if features.ndim == 2 and batch_size is not None and batch_size > 0:
            if len(features) == 0:
                return np.zeros((0, self.num_classes), dtype=self.dtype)
            # Same chunk-and-pad implementation the micro-batcher runs, so
            # quantized offline inference is bit-identical to serving.
            return run_at_quantum(
                lambda rows: self.predict_logits(rows, batch_size=None),
                features, batch_size)
        # BLAS routes 1-row matmuls through gemv, whose reduction order can
        # differ from the batched gemm path in the last bit.  Pad singleton
        # batches to two rows so a lone example gets the gemm path.
        if features.ndim == 2 and len(features) == 1:
            return self._forward(np.concatenate([features, features]))[:1]
        return self._forward(features)

    def _forward(self, features: np.ndarray) -> np.ndarray:
        if self._compiled is not None:
            return self._compiled(features)
        # Fallback: the tape-based forward reads the process-global default
        # dtype, so it must flip (and lock) it when the servable's differs.
        with _FORWARD_LOCK:
            if np.dtype(get_default_dtype()) == self.dtype:
                return predict_logits(self._model, features, batch_size=None)
            with default_dtype(self.dtype):
                return predict_logits(self._model, features, batch_size=None)

    def predict_proba(self, features: np.ndarray,
                      batch_size: Optional[int] = None) -> np.ndarray:
        return softmax_rows(self.predict_logits(features,
                                                batch_size=batch_size))

    def describe(self) -> dict:
        """A JSON-friendly summary (what ``GET /models`` reports)."""
        return {
            "format": FORMAT_END_MODEL,
            "task_name": self.manifest.get("task_name"),
            "num_classes": self.num_classes,
            "class_names": self.class_names,
            "backbone": self.manifest["backbone"],
            "dtype": str(self.dtype),
            "num_parameters": self.manifest.get("num_parameters"),
            "metrics": self.manifest.get("metrics", {}),
            "created": self.manifest.get("created"),
            "fingerprint": self.fingerprint,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ServableModel({self.manifest.get('task_name')!r}, "
                f"{self.num_classes} classes, dtype={self.dtype})")


class ServableEnsemble(Servable):
    """A whole taglet ensemble served as one model (quality over latency).

    One fused request runs every member's forward over the same rows,
    stacks the per-member probability matrices into the ``(|T|, n, C)``
    vote tensor, and averages with :func:`repro.ensemble.voting.
    renormalized_mean` — the exact computation of offline
    :meth:`TagletEnsemble.predict_proba` (paper Eq. 6), so served votes are
    bit-identical to offline voting at the serving quantum.  Inputs are
    normalized to float64 (the vote dtype); each member casts to its own
    weight dtype internally, exactly as offline members do.
    """

    #: votes are always accumulated in float64 (ensemble/voting.py)
    dtype = np.dtype(np.float64)

    def __init__(self, members: Sequence[ServableModel],
                 kinds: Sequence[str], logit_scales: Sequence[Optional[float]],
                 manifest: dict, path: Optional[str] = None):
        if not members:
            raise ArtifactError("a servable ensemble needs at least one member")
        self._members = list(members)
        self._kinds = list(kinds)
        self._logit_scales = list(logit_scales)
        self.manifest = manifest
        self.path = path
        self.class_names: List[str] = list(manifest["class_names"])
        # The fingerprint keys prediction caches and stale-batcher detection
        # on a hot swap, so it must cover everything a served vote is a
        # function of: member weights AND the serving recipe (kind, logit
        # scale) — a re-exported ensemble differing only in a retuned
        # logit_scale must never reuse the old cache.
        digest = hashlib.sha256()
        for member, kind, scale in zip(self._members, self._kinds,
                                       self._logit_scales):
            digest.update(f"{kind}:{scale!r}:".encode("utf-8"))
            digest.update(member.fingerprint.encode("utf-8"))
        self.fingerprint: str = digest.hexdigest()

    @property
    def num_classes(self) -> int:
        return self._members[0].num_classes

    @property
    def input_dim(self) -> int:
        return self._members[0].input_dim

    @property
    def num_members(self) -> int:
        return len(self._members)

    @property
    def member_names(self) -> List[str]:
        return [entry["name"] for entry in self.manifest["members"]]

    @property
    def compiled(self) -> bool:
        """Whether every member forward runs the lock-free compiled plan."""
        return all(member.compiled for member in self._members)

    def _member_proba(self, index: int, rows: np.ndarray) -> np.ndarray:
        """One member's probabilities over ``rows`` (one full-array forward),
        replaying the member taglet's own logits-to-probabilities recipe."""
        member = self._members[index]
        logits = member.predict_logits(rows, batch_size=None)
        scale = self._logit_scales[index]
        if scale is not None:
            logits = logits * scale
        return softmax_rows(logits)

    def _vote(self, rows: np.ndarray) -> np.ndarray:
        """The fused ensemble forward: every member over the same rows, then
        the renormalized vote average (Eq. 6) — offline
        ``TagletEnsemble.predict_proba(rows, batch_size=None)`` exactly."""
        votes = np.empty((len(self._members), len(rows), self.num_classes),
                         dtype=np.float64)
        for index in range(len(self._members)):
            votes[index] = self._member_proba(index, rows)
        return renormalized_mean(votes)

    def predict_proba(self, features: np.ndarray,
                      batch_size: Optional[int] = None) -> np.ndarray:
        """Ensemble vote probabilities for ``features``.

        ``batch_size=None`` runs one full-array pass per member (offline
        mode); with a ``batch_size`` the vote runs at that fixed quantum via
        the same chunk-and-pad path the micro-batcher uses, so quantized
        offline voting is bit-identical to the served ensemble.
        """
        features = np.asarray(features, dtype=self.dtype)
        if features.ndim == 1:
            return self._vote(features[None, :])[0]
        if len(features) == 0:
            return np.zeros((0, self.num_classes), dtype=np.float64)
        if batch_size is not None and batch_size > 0:
            return run_at_quantum(self._vote, features, batch_size)
        return self._vote(features)

    def member_probabilities(self, features: np.ndarray) -> Dict[str, np.ndarray]:
        """Per-member probability matrices, keyed by member taglet name."""
        features = np.asarray(features, dtype=self.dtype)
        return {entry["name"]: self._member_proba(index, features)
                for index, entry in enumerate(self.manifest["members"])}

    def describe(self) -> dict:
        """A JSON-friendly summary (what ``GET /models`` reports)."""
        return {
            "format": FORMAT_ENSEMBLE,
            "task_name": self.manifest.get("task_name"),
            "num_classes": self.num_classes,
            "class_names": self.class_names,
            "num_members": self.num_members,
            "members": [{"name": entry["name"], "kind": entry["kind"],
                         "dtype": entry["dtype"],
                         "backbone": entry["backbone"]["name"],
                         "num_parameters": entry.get("num_parameters")}
                        for entry in self.manifest["members"]],
            "dtype": str(self.dtype),
            "metrics": self.manifest.get("metrics", {}),
            "created": self.manifest.get("created"),
            "fingerprint": self.fingerprint,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ServableEnsemble({self.manifest.get('task_name')!r}, "
                f"{self.num_members} members, {self.num_classes} classes)")


# --------------------------------------------------------------------------- #
# Loading
# --------------------------------------------------------------------------- #
def _rebuild_model(entry: dict, weights_path: str,
                   verify_digest: bool) -> ClassificationModel:
    """Rebuild one model from a manifest entry + weight archive, strictly
    validating every key/shape/dtype and (optionally) the content digest."""
    if not os.path.exists(weights_path):
        raise ArtifactError(f"artifact weight archive missing: {weights_path}")
    state = load_state_dict(weights_path)
    if verify_digest:
        digest = state_dict_digest(state)
        if digest != entry["weights_digest"]:
            raise ArtifactError(
                f"weight archive at {weights_path} does not match its "
                f"manifest digest (expected {entry['weights_digest'][:12]}…, "
                f"got {digest[:12]}…) — the artifact is corrupt or was edited")
    backbone = entry["backbone"]
    spec = BackboneSpec(name=backbone["name"],
                        input_dim=int(backbone["input_dim"]),
                        hidden_dims=tuple(backbone["hidden_dims"]),
                        feature_dim=int(backbone["feature_dim"]),
                        pretraining=backbone.get("pretraining", "none"))
    # Rebuild under the recorded dtype so parameters (and therefore served
    # logits) match the training-time model exactly.
    with default_dtype(entry["dtype"]):
        encoder = Encoder(spec, rng=np.random.default_rng(0))
        model = ClassificationModel(encoder, int(entry["num_classes"]),
                                    rng=np.random.default_rng(0))
    try:
        validate_state_dict(model, state, source=weights_path)
    except ValueError as error:
        raise ArtifactError(str(error))
    model.load_state_dict(state)
    return model


def load_servable(path: str, verify_digest: bool = True,
                  compiled: bool = True) -> Servable:
    """Reconstruct an inference-only servable from an exported artifact.

    Dispatches on the manifest's ``format``: end-model artifacts load as
    :class:`ServableModel`, ensemble artifacts as :class:`ServableEnsemble`.
    Every weight archive is strictly validated against the rebuilt
    architecture (every key, shape, and dtype) and, unless disabled,
    integrity-checked against its manifest digest.  ``compiled=False``
    forces the locked tape-based forward instead of the compiled kernel
    plan (benchmark baseline; predictions are bit-identical either way).
    """
    manifest = read_manifest(path)
    if manifest.get("format") == FORMAT_ENSEMBLE:
        members: List[ServableModel] = []
        kinds: List[str] = []
        scales: List[Optional[float]] = []
        for entry in manifest["members"]:
            model = _rebuild_model(
                entry, os.path.join(path, entry["weights_file"]),
                verify_digest)
            member_manifest = dict(entry)
            member_manifest["class_names"] = manifest["class_names"]
            members.append(ServableModel(model, member_manifest, path=path,
                                         compiled=compiled))
            kinds.append(entry["kind"])
            scales.append(entry.get("logit_scale")
                          if entry["kind"] == "zsl_kg" else None)
        return ServableEnsemble(members, kinds, scales, manifest, path=path)
    model = _rebuild_model(manifest, os.path.join(path, WEIGHTS_NAME),
                           verify_digest)
    return ServableModel(model, manifest, path=path, compiled=compiled)
