"""Multi-process serving: a fleet of worker processes behind one router.

In-process scaling of the serving path is GIL-bound (two batcher worker
threads buy ~1.03x on one CPU — ``BENCH_serve.json``); the next order of
magnitude is process-level.  A :class:`ServingFleet` spawns N **worker
processes** via :mod:`multiprocessing`, each a full
:class:`~repro.serve.Server` — its own registry shard (or model replica),
micro-batchers, and HTTP endpoint — and fronts them with a
:class:`~repro.serve.router.Router` so the client API stays exactly one
port speaking ``/predict`` / ``/models`` / ``/stats`` / ``/healthz``.

**Socket activation.**  The parent binds each replica's listening socket
up front, keeps its copy, and hands a duplicate to every (re)spawned
worker, which adopts it (``make_http_server(..., sock=...)``).  The
address therefore survives worker death: connections parked in the listen
backlog while a replica is down are answered by its replacement, and the
router's table never has to chase moving ports.

**Supervision.**  All replacement goes through one respawn path: the
router's health monitor (plus a process-liveness sweep) reports a replica
down, the supervisor thread re-spawns it on the same socket with bounded
exponential backoff, and the first successful health probe re-admits it.

**Rolling hot-swap.**  :meth:`ServingFleet.rolling_swap` upgrades an
artifact across the fleet one replica at a time: drain (router stops
routing new work there), wait quiet, ``POST /admin/load`` the new
artifact, verify it via ``/healthz``, re-admit.  At every instant each
replica serves either the old or the new version in full — served
predictions stay bit-identical to offline inference at the serving
quantum throughout, and capacity never drops by more than one replica.

Determinism note: every worker runs the same fixed-quantum batching
(``pad_to_max_batch``), so a prediction's bits do not depend on *which*
replica served it — routing, retries, and failovers are invisible in the
output, which is what makes retry-on-replica-death safe.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .batching import BatchingConfig
from .router import Router, RouterConfig

__all__ = ["FleetConfig", "ReplicaSpec", "ServingFleet", "replicated_specs",
           "sharded_specs"]


@dataclass
class ReplicaSpec:
    """What one worker process serves: its shard of the model space.

    ``models`` maps served names to artifact directories (with an optional
    explicit version).  Replicas with identical manifests are replicas of
    each other (load-balanced); disjoint manifests shard the
    ``model@version`` space across processes.  Must stay picklable — it
    crosses the process boundary at spawn.
    """

    replica_id: str
    #: (name, artifact_path, version-or-None) per served model
    models: Tuple[Tuple[str, str, Optional[str]], ...] = ()

    def names(self) -> List[str]:
        return [name for name, _, _ in self.models]


def replicated_specs(models: Sequence[Tuple[str, str]],
                     replicas: int) -> List[ReplicaSpec]:
    """N replicas each serving every model — pure horizontal replication."""
    manifest = tuple((name, path, None) for name, path in models)
    return [ReplicaSpec(replica_id=f"replica-{i}", models=manifest)
            for i in range(replicas)]


def sharded_specs(models: Sequence[Tuple[str, str]],
                  shards: int) -> List[ReplicaSpec]:
    """Partition models round-robin across ``shards`` worker processes."""
    groups: List[List[Tuple[str, str, Optional[str]]]] = [
        [] for _ in range(shards)]
    for index, (name, path) in enumerate(models):
        groups[index % shards].append((name, path, None))
    return [ReplicaSpec(replica_id=f"shard-{i}", models=tuple(group))
            for i, group in enumerate(groups)]


@dataclass
class FleetConfig:
    """Knobs of the worker fleet."""

    #: per-worker batching knobs (each process runs its own batchers)
    batching: BatchingConfig = field(default_factory=BatchingConfig)
    router: RouterConfig = field(default_factory=RouterConfig)
    host: str = "127.0.0.1"
    #: multiprocessing start method.  ``spawn`` (default) gives workers a
    #: clean interpreter — no inherited locks or threads to deadlock on —
    #: at ~0.5 s startup each; ``fork`` starts near-instantly but inherits
    #: the parent's whole world.
    start_method: str = "spawn"
    #: seconds the parent waits for a spawned worker's ready signal
    spawn_timeout: float = 30.0
    #: bounded respawn backoff: ``min(initial * 2**n, cap)`` seconds, where
    #: n counts *recent* (within ``backoff_window``) respawns of a replica
    respawn_backoff_initial: float = 0.05
    respawn_backoff_cap: float = 2.0
    backoff_window: float = 30.0
    #: how often the supervisor sweeps process liveness
    supervise_interval: float = 0.2


def _worker_main(spec: ReplicaSpec, batching: BatchingConfig,
                 sock: socket.socket, ready) -> None:
    """Entry point of one worker process (top level: spawn-picklable).

    Builds a full in-process server over the spec's artifacts, adopts the
    inherited listening socket, signals readiness, and serves until
    killed.  SIGTERM shuts down without draining — queued requests fail
    fast with ``ShuttingDown`` (HTTP 503) and the router fails them over
    to a sibling replica, so a terminated worker never hangs a client.
    """
    # Imported here so the module stays importable without triggering the
    # whole serve stack at fleet-definition time in the parent.
    from .http import make_http_server
    from .server import Server

    server = Server(batching=batching)
    for name, path, version in spec.models:
        server.load(name, path, version=version)
    httpd = make_http_server(server, sock=sock, admin=True)

    def _terminate(signum, frame):  # noqa: ARG001 (signal API)
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _terminate)
    if ready is not None:
        ready.send({"pid": os.getpid(), "replica_id": spec.replica_id,
                    "models": server.registry.manifest()})
        ready.close()
    try:
        httpd.serve_forever()
    finally:
        server.close(drain=False)


class _Replica:
    """Parent-side runtime record of one worker process."""

    def __init__(self, spec: ReplicaSpec, sock: socket.socket):
        self.spec = spec
        self.sock = sock
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.respawn_times: List[float] = []

    @property
    def port(self) -> int:
        return self.sock.getsockname()[1]

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ServingFleet:
    """Spawn, route to, heal, and hot-swap a fleet of serving processes.

    Usable as a context manager.  ``fleet.router`` is the single front
    end — hand it to :func:`~repro.serve.http.make_http_server` to expose
    the whole fleet on one port with the unchanged client API.
    """

    def __init__(self, specs: Sequence[ReplicaSpec],
                 config: Optional[FleetConfig] = None):
        if not specs:
            raise ValueError("a fleet needs at least one replica spec")
        ids = [spec.replica_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate replica ids in {ids}")
        self.config = config or FleetConfig()
        self._ctx = multiprocessing.get_context(self.config.start_method)
        self.router = Router(config=self.config.router,
                             on_replica_down=self._on_replica_down)
        self._replicas: Dict[str, _Replica] = {}
        self._lock = threading.Lock()
        self._respawn_wanted: set = set()
        self._respawn_signal = threading.Event()
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._closed = False
        for spec in specs:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.config.host, 0))
            sock.listen(128)
            self._replicas[spec.replica_id] = _Replica(spec, sock)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, wait_healthy: bool = True) -> "ServingFleet":
        """Spawn every worker, register them with the router, start the
        health monitor and the supervisor."""
        for replica in self._replicas.values():
            self._spawn(replica)
            self.router.add_replica(
                replica.spec.replica_id, self.config.host, replica.port,
                models=replica.spec.names() or None)
        if wait_healthy:
            if not self.router.wait_healthy(len(self._replicas),
                                            timeout=self.config.spawn_timeout):
                raise RuntimeError("fleet did not become healthy in time")
        self.router.start_health_monitor()
        self._supervisor = threading.Thread(target=self._supervise,
                                            daemon=True,
                                            name="repro-serve-fleet-supervisor")
        self._supervisor.start()
        return self

    def _spawn(self, replica: _Replica) -> None:
        """(Re)start one worker on its parent-held socket."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(replica.spec, self.config.batching, replica.sock,
                  child_conn),
            daemon=True,
            name=f"repro-serve-{replica.spec.replica_id}")
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.config.spawn_timeout):
            process.terminate()
            raise RuntimeError(
                f"worker {replica.spec.replica_id!r} did not come up within "
                f"{self.config.spawn_timeout}s")
        parent_conn.recv()
        parent_conn.close()
        replica.process = process

    # ------------------------------------------------------------------ #
    # Supervision: the single replacement-respawn path
    # ------------------------------------------------------------------ #
    def _on_replica_down(self, replica_id: str) -> None:
        """Router callback — request a respawn check for one replica."""
        with self._lock:
            self._respawn_wanted.add(replica_id)
        self._respawn_signal.set()

    def _supervise(self) -> None:
        while not self._stop.is_set():
            self._respawn_signal.wait(self.config.supervise_interval)
            self._respawn_signal.clear()
            if self._stop.is_set():
                return
            with self._lock:
                wanted = set(self._respawn_wanted)
                self._respawn_wanted.clear()
            # Liveness sweep: a worker can die without an in-flight request
            # noticing (idle replica, SIGKILL) — catch it here.
            for replica_id, replica in list(self._replicas.items()):
                if not replica.alive() or replica_id in wanted:
                    self._maybe_respawn(replica_id)

    def _maybe_respawn(self, replica_id: str) -> None:
        """Respawn one replica if its process is actually gone.

        Every replacement in the fleet goes through here — spawned on the
        *same* parent-held socket, with exponential backoff bounded by
        ``respawn_backoff_cap`` over the recent-respawn window, so a
        crash-looping artifact cannot melt the host.
        """
        if self._closed:
            return
        replica = self._replicas.get(replica_id)
        if replica is None or replica.alive():
            return  # a transient connection failure, not a death
        now = time.monotonic()
        window = self.config.backoff_window
        replica.respawn_times = [t for t in replica.respawn_times
                                 if now - t < window]
        recent = len(replica.respawn_times)
        delay = min(self.config.respawn_backoff_initial * (2 ** recent),
                    self.config.respawn_backoff_cap)
        if self._stop.wait(delay):
            return
        if replica.process is not None:
            replica.process.join(timeout=1.0)
        try:
            self._spawn(replica)
        except RuntimeError:
            # Try again on the next supervision sweep, with more backoff.
            replica.respawn_times.append(time.monotonic())
            self._on_replica_down(replica_id)
            return
        replica.respawn_times.append(time.monotonic())
        self.router.note_respawn(replica_id)
        self.router.probe(replica_id)   # re-admit as soon as it answers

    def kill_replica(self, replica_id: str) -> None:
        """Hard-kill one worker process (chaos testing; SIGKILL, no drain).

        The supervisor notices and respawns it on the same socket; the
        router retries any in-flight requests onto surviving replicas.
        """
        process = self._replicas[replica_id].process
        if process is not None:
            process.kill()

    # ------------------------------------------------------------------ #
    # Rolling hot-swap
    # ------------------------------------------------------------------ #
    def rolling_swap(self, name: str, path: str,
                     version: Optional[str] = None,
                     quiesce_timeout: float = 30.0) -> Dict[str, str]:
        """Upgrade ``name`` to the artifact at ``path`` across the fleet.

        One replica at a time: drain -> wait quiet -> ``/admin/load`` ->
        verify via ``/healthz`` -> re-admit.  Served predictions stay
        bit-identical to offline inference throughout — every response
        comes from a replica holding either the old or the new artifact in
        full, never a mix — and capacity never drops by more than one
        replica.  Returns ``{replica_id: new_version}``.
        """
        results: Dict[str, str] = {}
        for replica_id in self.router.replica_ids():
            replica = self._replicas.get(replica_id)
            if replica is None:
                continue
            handle = self.router.replica(replica_id)
            if not handle.serves(name):
                continue    # another shard's model
            self.router.set_draining(replica_id, True)
            try:
                deadline = time.monotonic() + quiesce_timeout
                while self.router.outstanding_of(replica_id) > 0:
                    if time.monotonic() > deadline:
                        raise RuntimeError(
                            f"replica {replica_id!r} did not quiesce within "
                            f"{quiesce_timeout}s")
                    time.sleep(0.005)
                status, payload = handle.request(
                    "POST", "/admin/load",
                    body=json.dumps(
                        {"name": name, "path": path,
                         "version": version}).encode("utf-8"),
                    timeout=self.config.router.request_timeout)
                if status != 200:
                    raise RuntimeError(
                        f"hot swap on {replica_id!r} failed: "
                        f"{payload.get('error', status)}")
                new_version = str(payload["version"])
                # Verify before re-admitting: the swapped artifact must
                # actually be registered (and be latest) on this replica.
                if not self.router.probe(replica_id) or \
                        f"{name}@{new_version}" not in handle.versions:
                    raise RuntimeError(
                        f"replica {replica_id!r} does not report "
                        f"{name}@{new_version} after the swap")
                results[replica_id] = new_version
            finally:
                self.router.set_draining(replica_id, False)
        return results

    # ------------------------------------------------------------------ #
    # Introspection and teardown
    # ------------------------------------------------------------------ #
    def replica_ids(self) -> List[str]:
        return sorted(self._replicas)

    def addresses(self) -> Dict[str, Tuple[str, int]]:
        return {replica_id: (self.config.host, replica.port)
                for replica_id, replica in self._replicas.items()}

    def processes_alive(self) -> Dict[str, bool]:
        return {replica_id: replica.alive()
                for replica_id, replica in self._replicas.items()}

    def health(self) -> dict:
        return self.router.health()

    def stats(self) -> Dict[str, dict]:
        return self.router.stats()

    def close(self, terminate_timeout: float = 10.0) -> None:
        """Stop supervision, terminate every worker, release the sockets."""
        self._closed = True
        self._stop.set()
        self._respawn_signal.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        self.router.close()
        for replica in self._replicas.values():
            if replica.process is not None and replica.process.is_alive():
                replica.process.terminate()
        deadline = time.monotonic() + terminate_timeout
        for replica in self._replicas.values():
            if replica.process is not None:
                replica.process.join(
                    timeout=max(0.0, deadline - time.monotonic()))
                if replica.process.is_alive():
                    replica.process.kill()
                    replica.process.join(timeout=1.0)
        for replica in self._replicas.values():
            replica.sock.close()

    def __enter__(self) -> "ServingFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
