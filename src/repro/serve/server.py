"""The serving front end: registry-backed, micro-batched prediction.

:class:`Server` is the Python API the HTTP endpoint and the CLI sit on top
of.  Each registered ``(name, version)`` gets its own :class:`MicroBatcher`
(created lazily, keyed by the servable's weight fingerprint so caches are
never shared across different weights); ``submit`` resolves the reference,
routes the request to that batcher, and returns a future.  Ensemble
servables route exactly like end models — ``ensemble@version`` is just
another reference.  Because requests hold the resolved servable's batcher,
repointing ``name@latest`` mid-flight swaps where *new* requests go while
old ones finish on the version they resolved — a zero-downtime hot swap.

The batcher is constructed with the servable's ``input_dim`` and ``dtype``,
so a malformed request (wrong feature width, uncastable dtype) fails alone
at ``submit`` with a ``ValueError`` instead of poisoning the batch it would
have been fused into.  Requests may carry a ``priority`` (higher drains
first) and a ``deadline_ms`` (expired requests fail fast with
:class:`~repro.serve.DeadlineExceeded` instead of occupying a forward).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .artifact import Servable, load_servable
from .batching import BatcherStats, BatchingConfig, MicroBatcher, ShuttingDown
from .registry import ModelRegistry

if TYPE_CHECKING:   # pragma: no cover - typing only, avoids a hard import
    from .capacity import AdmissionController, CapacityModel

__all__ = ["Server"]


class Server:
    """Serve registered servables with dynamic micro-batching.

    With an :class:`~repro.serve.capacity.AdmissionController` attached
    (``admission=`` or :meth:`set_admission`), every request passes the
    model-driven admission gate before it queues: a request the calibrated
    capacity model predicts cannot be answered inside its budget fails
    synchronously with :class:`~repro.serve.Overloaded` (HTTP 429,
    retryable) instead of rotting in the queue until it turns into a 504.

    Usable as a context manager; :meth:`close` drains every batcher.
    """

    def __init__(self, registry: Optional[ModelRegistry] = None,
                 batching: Optional[BatchingConfig] = None,
                 admission: Optional["AdmissionController"] = None,
                 capacity_model: Optional["CapacityModel"] = None):
        self.registry = registry or ModelRegistry()
        self.batching = batching or BatchingConfig()
        self.admission = admission
        self.capacity_model = capacity_model or (
            admission.model if admission is not None else None)
        #: (name, version) -> (servable, its batcher); the servable is kept
        #: so a re-registered version is detected by weight fingerprint
        self._batchers: Dict[Tuple[str, str],
                             Tuple[Servable, MicroBatcher]] = {}
        #: counters of batchers retired by a hot-swap re-registration,
        #: accumulated so ``stats()`` never silently loses served traffic
        self._retired: Dict[Tuple[str, str], BatcherStats] = {}
        #: retired batchers still draining queued requests; their counters
        #: are read live by ``stats()`` and folded into ``_retired`` once
        #: the worker threads exit, so no served request is ever uncounted
        self._draining: Dict[Tuple[str, str], List[MicroBatcher]] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: advisory replica-level flag (see :meth:`set_draining`) — distinct
        #: from ``_draining``, the retired batchers still answering work
        self._drain_flag = False

    # ------------------------------------------------------------------ #
    # Model management (thin passthroughs over the registry)
    # ------------------------------------------------------------------ #
    def register(self, name: str, servable: Servable,
                 version: Optional[str] = None, make_latest: bool = True) -> str:
        return self.registry.register(name, servable, version=version,
                                      make_latest=make_latest)

    def load(self, name: str, path: str, version: Optional[str] = None,
             make_latest: bool = True) -> str:
        return self.registry.register(name, load_servable(path),
                                      version=version, make_latest=make_latest)

    def _batcher_for(self, name: str, version: str,
                     servable: Servable) -> MicroBatcher:
        key = (name, version)
        stale = None
        with self._lock:
            if self._closed:
                raise ShuttingDown("Server is closed")
            entry = self._batchers.get(key)
            # A version string can be re-registered with different weights
            # (unregister + register, e.g. re-publishing a fixed model); the
            # weight fingerprint detects that and retires the stale batcher
            # so requests never hit the old model or its cache.
            if entry is not None and entry[0] is not servable \
                    and entry[0].fingerprint != servable.fingerprint:
                stale = entry[1]
                # Track the retiree while it drains: stats() keeps reading
                # its counters live, so a hot swap never shows a transient
                # dip (or permanently loses a slow final batch).
                self._draining.setdefault(key, []).append(stale)
                entry = None
            if entry is None:
                entry = (servable,
                         MicroBatcher(servable.predict_proba,
                                      config=self.batching,
                                      cache_salt=servable.fingerprint,
                                      input_dim=servable.input_dim,
                                      dtype=servable.dtype))
                self._batchers[key] = entry
        if stale is not None:
            stale.close()   # outside the lock; queued requests still answer
            with self._lock:
                self._reap_drained_locked()
        return entry[1]

    def _reap_drained_locked(self) -> None:
        """Fold finished retirees' final counters into the retired bucket
        (callers hold ``self._lock``).  A batcher still draining stays
        tracked and keeps being read live."""
        for key, batchers in list(self._draining.items()):
            still_draining = []
            for batcher in batchers:
                if batcher.is_draining():
                    still_draining.append(batcher)
                else:
                    self._retired.setdefault(key, BatcherStats()).add(
                        batcher.snapshot())
            if still_draining:
                self._draining[key] = still_draining
            else:
                del self._draining[key]

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def submit(self, inputs: np.ndarray, model: str = "default",
               priority: int = 0,
               deadline_ms: Optional[float] = None) -> "Future[np.ndarray]":
        """Route one request to ``model``'s batcher; resolves to probabilities.

        ``inputs`` is one example ``(d,)`` or a block ``(n, d)``; the future
        carries the matching ``(k,)`` / ``(n, k)`` class-probability rows.
        Higher ``priority`` requests drain first; with ``deadline_ms`` the
        request fails fast with ``DeadlineExceeded`` once expired.
        """
        name, version, servable = self.registry.resolve(model)
        batcher = self._batcher_for(name, version, servable)
        if self.admission is not None:
            self.admission.admit(batcher.queue_depth(),
                                 deadline_ms=deadline_ms)
        return batcher.submit(inputs, priority=priority,
                              deadline_ms=deadline_ms)

    def predict(self, inputs: np.ndarray, model: str = "default",
                return_probabilities: bool = False,
                timeout: Optional[float] = None, priority: int = 0,
                deadline_ms: Optional[float] = None) -> dict:
        """Blocking prediction returning a JSON-friendly response dict."""
        name, version, servable = self.registry.resolve(model)
        batcher = self._batcher_for(name, version, servable)
        if self.admission is not None:
            self.admission.admit(batcher.queue_depth(),
                                 deadline_ms=deadline_ms)
        array = np.asarray(inputs)
        single = array.ndim == 1
        probabilities = batcher.submit(array, priority=priority,
                                       deadline_ms=deadline_ms).result(
                                           timeout=timeout)
        rows = probabilities[None, :] if single else probabilities
        indices = rows.argmax(axis=1)
        response = {
            "model": name,
            "version": version,
            "predictions": [int(i) for i in indices],
            "labels": [servable.class_names[i] for i in indices],
        }
        if return_probabilities:
            response["probabilities"] = [[float(p) for p in row]
                                         for row in rows]
        return response

    # ------------------------------------------------------------------ #
    # Introspection and lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, dict]:
        """Per-model batcher counters, including retired batchers' traffic.

        A ``(name, version)`` that was hot-swap re-registered keeps the
        counters its retired batcher accumulated (read live while it is
        still draining); the live batcher's counters are added on top.
        """
        with self._lock:
            self._reap_drained_locked()
            live = {key: entry[1] for key, entry in self._batchers.items()}
            draining = {key: list(batchers)
                        for key, batchers in self._draining.items()}
            retired = {key: stats.copy()
                       for key, stats in self._retired.items()}
        merged: Dict[str, dict] = {}
        for key in set(live) | set(draining) | set(retired):
            stats = retired.get(key, BatcherStats())
            for batcher in draining.get(key, []):
                stats.add(batcher.snapshot())
            batcher = live.get(key)
            if batcher is not None:
                stats.add(batcher.snapshot())
                merged[f"{key[0]}@{key[1]}"] = batcher.stats(merged=stats)
            else:
                merged[f"{key[0]}@{key[1]}"] = stats.as_dict()
        return merged

    def models(self) -> Dict[str, dict]:
        """The registry listing (what ``GET /models`` returns)."""
        return self.registry.describe()

    def health(self) -> dict:
        """The ``GET /healthz`` payload: real routing/balancing signal.

        Beyond liveness, reports the loaded ``name@version`` list (shard
        manifest), total queued requests, and batcher-worker counts — what
        a fleet router's health checks need to route, balance, and decide
        when a draining replica has actually gone quiet.
        """
        with self._lock:
            batchers = [entry[1] for entry in self._batchers.values()]
            batchers.extend(batcher for group in self._draining.values()
                            for batcher in group)
            closed, draining = self._closed, self._drain_flag
        queue_depth = sum(batcher.queue_depth() for batcher in batchers)
        workers_alive = sum(batcher.workers_alive() for batcher in batchers)
        workers_expected = sum(batcher.config.num_workers
                               for batcher in batchers)
        status = "closed" if closed else ("draining" if draining else "ok")
        return {
            "status": status,
            "draining": draining,
            "queue_depth": queue_depth,
            "workers": {"alive": workers_alive, "expected": workers_expected},
            "models": self.registry.manifest(),
        }

    @property
    def draining(self) -> bool:
        return self._drain_flag

    def set_draining(self, draining: bool) -> None:
        """Flag this server as draining (reported via :meth:`health`).

        Purely advisory — requests are still accepted and answered; a fleet
        router reads the flag to stop routing *new* traffic here while a
        rolling hot-swap waits for in-flight work to finish.
        """
        with self._lock:
            self._drain_flag = bool(draining)

    def set_admission(self, admission: Optional["AdmissionController"]) -> None:
        """Attach (or detach, with ``None``) the admission gate at runtime.

        Typically called after a calibration probe: build the
        :class:`~repro.serve.capacity.CapacityModel` from the loaded
        servable, then gate the live traffic with it.
        """
        self.admission = admission
        if admission is not None:
            self.capacity_model = admission.model

    def capacity(self) -> dict:
        """The ``GET /capacity`` payload: model, admission gate, live load.

        Reports the calibrated capacity model (service law, error bounds),
        the admission controller's budget and counters, the current queue
        depth, and — when both a model and traffic exist — the predicted
        operating point at the batching config's capacity knee.  Empty
        sections are ``None`` when no model/controller is attached, so the
        endpoint is always routable and self-describing.
        """
        with self._lock:
            batchers = [entry[1] for entry in self._batchers.values()]
        queue_depth = sum(batcher.queue_depth() for batcher in batchers)
        payload: dict = {
            "queue_depth": queue_depth,
            "batching": {
                "max_batch_size": self.batching.max_batch_size,
                "max_latency_ms": self.batching.max_latency_ms,
                "num_workers": self.batching.num_workers,
                "max_queue_size": self.batching.max_queue_size,
            },
            "model": None,
            "admission": None,
        }
        if self.capacity_model is not None:
            payload["model"] = self.capacity_model.describe()
            payload["capacity_req_per_sec"] = round(
                self.capacity_model.capacity(self.batching), 1)
        if self.admission is not None:
            payload["admission"] = self.admission.describe()
            payload["admission"]["predicted_wait_ms"] = round(
                self.admission.predicted_wait_ms(queue_depth), 3)
        return payload

    def describe(self) -> dict:
        return {"models": self.registry.describe(),
                "batching": {
                    "max_batch_size": self.batching.max_batch_size,
                    "max_latency_ms": self.batching.max_latency_ms,
                    "cache_size": self.batching.cache_size,
                    "num_workers": self.batching.num_workers,
                },
                "stats": self.stats()}

    def close(self, drain: bool = True) -> None:
        """Stop every batcher.

        With ``drain`` (the default) queued requests are still answered
        first; with ``drain=False`` they fail fast with
        :class:`~repro.serve.ShuttingDown` — either way no client is left
        hanging on a future that will never resolve.
        """
        with self._lock:
            self._closed = True
            entries = list(self._batchers.values())
            draining = [batcher for batchers in self._draining.values()
                        for batcher in batchers]
            self._batchers.clear()
        for _, batcher in entries:
            batcher.close(drain=drain)
        for batcher in draining:
            batcher.close(drain=drain)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
