"""The serving front end: registry-backed, micro-batched prediction.

:class:`Server` is the Python API the HTTP endpoint and the CLI sit on top
of.  Each registered ``(name, version)`` gets its own :class:`MicroBatcher`
(created lazily, keyed by the servable's weight fingerprint so caches are
never shared across different weights); ``submit`` resolves the reference,
routes the request to that batcher, and returns a future.  Because requests
hold the resolved servable's batcher, repointing ``name@latest`` mid-flight
swaps where *new* requests go while old ones finish on the version they
resolved — a zero-downtime hot swap.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, Optional, Tuple

import numpy as np

from .artifact import ServableModel, load_servable
from .batching import BatchingConfig, MicroBatcher
from .registry import ModelRegistry

__all__ = ["Server"]


class Server:
    """Serve registered end models with dynamic micro-batching.

    Usable as a context manager; :meth:`close` drains every batcher.
    """

    def __init__(self, registry: Optional[ModelRegistry] = None,
                 batching: Optional[BatchingConfig] = None):
        self.registry = registry or ModelRegistry()
        self.batching = batching or BatchingConfig()
        #: (name, version) -> (servable, its batcher); the servable is kept
        #: so a re-registered version is detected by weight fingerprint
        self._batchers: Dict[Tuple[str, str],
                             Tuple[ServableModel, MicroBatcher]] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Model management (thin passthroughs over the registry)
    # ------------------------------------------------------------------ #
    def register(self, name: str, servable: ServableModel,
                 version: Optional[str] = None, make_latest: bool = True) -> str:
        return self.registry.register(name, servable, version=version,
                                      make_latest=make_latest)

    def load(self, name: str, path: str, version: Optional[str] = None,
             make_latest: bool = True) -> str:
        return self.registry.register(name, load_servable(path),
                                      version=version, make_latest=make_latest)

    def _batcher_for(self, name: str, version: str,
                     servable: ServableModel) -> MicroBatcher:
        key = (name, version)
        stale = None
        with self._lock:
            if self._closed:
                raise RuntimeError("Server is closed")
            entry = self._batchers.get(key)
            # A version string can be re-registered with different weights
            # (unregister + register, e.g. re-publishing a fixed model); the
            # weight fingerprint detects that and retires the stale batcher
            # so requests never hit the old model or its cache.
            if entry is not None and entry[0] is not servable \
                    and entry[0].fingerprint != servable.fingerprint:
                stale = entry[1]
                entry = None
            if entry is None:
                entry = (servable,
                         MicroBatcher(servable.predict_proba,
                                      config=self.batching,
                                      cache_salt=servable.fingerprint))
                self._batchers[key] = entry
        if stale is not None:
            stale.close()   # outside the lock; queued requests still answer
        return entry[1]

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def submit(self, inputs: np.ndarray,
               model: str = "default") -> "Future[np.ndarray]":
        """Route one request to ``model``'s batcher; resolves to probabilities.

        ``inputs`` is one example ``(d,)`` or a block ``(n, d)``; the future
        carries the matching ``(k,)`` / ``(n, k)`` class-probability rows.
        """
        name, version, servable = self.registry.resolve(model)
        return self._batcher_for(name, version, servable).submit(inputs)

    def predict(self, inputs: np.ndarray, model: str = "default",
                return_probabilities: bool = False,
                timeout: Optional[float] = None) -> dict:
        """Blocking prediction returning a JSON-friendly response dict."""
        name, version, servable = self.registry.resolve(model)
        batcher = self._batcher_for(name, version, servable)
        array = np.asarray(inputs)
        single = array.ndim == 1
        probabilities = batcher.submit(array).result(timeout=timeout)
        rows = probabilities[None, :] if single else probabilities
        indices = rows.argmax(axis=1)
        response = {
            "model": name,
            "version": version,
            "predictions": [int(i) for i in indices],
            "labels": [servable.class_names[i] for i in indices],
        }
        if return_probabilities:
            response["probabilities"] = [[float(p) for p in row]
                                         for row in rows]
        return response

    # ------------------------------------------------------------------ #
    # Introspection and lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, dict]:
        with self._lock:
            return {f"{name}@{version}": entry[1].stats()
                    for (name, version), entry in self._batchers.items()}

    def describe(self) -> dict:
        return {"models": self.registry.describe(),
                "batching": {
                    "max_batch_size": self.batching.max_batch_size,
                    "max_latency_ms": self.batching.max_latency_ms,
                    "cache_size": self.batching.cache_size,
                },
                "stats": self.stats()}

    def close(self) -> None:
        """Drain and stop every batcher (queued requests are still answered)."""
        with self._lock:
            self._closed = True
            entries = list(self._batchers.values())
            self._batchers.clear()
        for _, batcher in entries:
            batcher.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
