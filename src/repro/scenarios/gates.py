"""Non-advisory robustness gates: per-scenario accuracy and margin floors.

A :class:`Gate` asserts one of two things about a scenario's recorded rows:

* ``accuracy`` — the method's final-stage accuracy must not fall below a
  floor.  Like the float32 parity gate, the floor is calibrated against the
  pinned scenario workspace with a wide safety margin, so a breach means a
  real regression, not noise;
* ``margin`` — the method must beat a baseline by at least ``floor``
  (``accuracy(method) − accuracy(baseline) ≥ floor``), used where the paper
  predicts TAGLETS' auxiliary data gives it a structural advantage over
  supervised fine-tuning (the scarce-label regimes).

:class:`GateRegistry.check` evaluates every registered gate whose scenario
appears in the given rows (so smoke subsets only face their own gates);
``assert_all`` raises :class:`GateFailure` naming every breach — the CI
``scenario-smoke`` job and the ``-m scenarios`` full sweep both call it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .runner import ScenarioResult

__all__ = ["Gate", "GateReport", "GateFailure", "GateRegistry",
           "DEFAULT_GATES", "default_registry"]


@dataclass(frozen=True)
class Gate:
    """One floor over one scenario's rows."""

    scenario: str
    metric: str = "accuracy"          # "accuracy" | "margin"
    floor: float = 0.0
    method: str = "taglets"
    #: only for ``margin`` gates: the method being beaten
    baseline: str = "finetune"

    def __post_init__(self):
        if self.metric not in ("accuracy", "margin"):
            raise ValueError(
                f"unknown gate metric {self.metric!r}; expected 'accuracy' "
                f"or 'margin'")

    def describe(self) -> str:
        if self.metric == "accuracy":
            return (f"{self.scenario}: {self.method} accuracy >= "
                    f"{self.floor:.2f}")
        return (f"{self.scenario}: {self.method} - {self.baseline} margin >= "
                f"{self.floor:.2f}")


@dataclass
class GateReport:
    """The outcome of evaluating one gate against a set of rows."""

    gate: Gate
    observed: Optional[float]
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        observed = "n/a" if self.observed is None else f"{self.observed:.3f}"
        return f"[{status}] {self.gate.describe()} (observed {observed})"


class GateFailure(AssertionError):
    """Raised by :meth:`GateRegistry.assert_all` when any floor is breached."""


def _mean_accuracy(rows: Sequence[ScenarioResult]) -> float:
    return float(np.mean([row.accuracy for row in rows]))


class GateRegistry:
    """The set of floors guarding the scenario grid."""

    def __init__(self, gates: Iterable[Gate] = ()):
        self._gates: List[Gate] = []
        for gate in gates:
            self.register(gate)

    def register(self, gate: Gate) -> None:
        self._gates.append(gate)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self):
        return iter(self._gates)

    def gates_for(self, scenario: str) -> List[Gate]:
        return [g for g in self._gates if g.scenario == scenario]

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def check(self, results: Iterable[ScenarioResult],
              require_all: bool = False) -> List[GateReport]:
        """Evaluate gates against rows; mean over seeds when several exist.

        By default only gates whose scenario has at least one row are
        evaluated (a smoke subset is not failed for scenarios it never ran);
        ``require_all=True`` additionally fails gates with no rows at all —
        the full-grid sweep uses it so a silently-skipped scenario cannot
        pass.
        """
        by_key: Dict[Tuple[str, str], List[ScenarioResult]] = {}
        scenarios_present = set()
        for row in results:
            scenarios_present.add(row.scenario)
            by_key.setdefault((row.scenario, row.method), []).append(row)

        reports: List[GateReport] = []
        for gate in self._gates:
            if gate.scenario not in scenarios_present:
                if require_all:
                    reports.append(GateReport(
                        gate=gate, observed=None, passed=False,
                        detail="no rows recorded for this scenario"))
                continue
            method_rows = by_key.get((gate.scenario, gate.method))
            if not method_rows:
                reports.append(GateReport(
                    gate=gate, observed=None, passed=False,
                    detail=f"no rows for method {gate.method!r}"))
                continue
            if gate.metric == "accuracy":
                observed = _mean_accuracy(method_rows)
                passed = observed >= gate.floor
                detail = (f"accuracy {observed:.3f} vs floor {gate.floor:.3f} "
                          f"({len(method_rows)} row(s))")
            else:
                baseline_rows = by_key.get((gate.scenario, gate.baseline))
                if not baseline_rows:
                    reports.append(GateReport(
                        gate=gate, observed=None, passed=False,
                        detail=f"no rows for baseline {gate.baseline!r}"))
                    continue
                observed = (_mean_accuracy(method_rows)
                            - _mean_accuracy(baseline_rows))
                passed = observed >= gate.floor
                detail = (f"margin {observed:.3f} vs floor {gate.floor:.3f} "
                          f"({gate.method} {_mean_accuracy(method_rows):.3f}, "
                          f"{gate.baseline} {_mean_accuracy(baseline_rows):.3f})")
            reports.append(GateReport(gate=gate, observed=observed,
                                      passed=passed, detail=detail))
        return reports

    def assert_all(self, results: Iterable[ScenarioResult],
                   require_all: bool = False) -> List[GateReport]:
        """Raise :class:`GateFailure` naming every breached floor."""
        reports = self.check(results, require_all=require_all)
        failures = [r for r in reports if not r.passed]
        if failures:
            lines = [f"{len(failures)} scenario gate(s) breached:"]
            lines += [f"  {report} — {report.detail}" for report in failures]
            raise GateFailure("\n".join(lines))
        return reports


#: Floors calibrated on the pinned scenario workspace (see SCENARIOS.json
#: for the recorded values they guard).  Floors sit well below the recorded
#: accuracies so only a real regression — not BLAS jitter — can breach them.
DEFAULT_GATES: Tuple[Gate, ...] = (
    # clean reference (recorded 0.76 at seed 0)
    Gate("fmd_5shot_clean", "accuracy", 0.55),
    # scarcity — including the paper-predicted taglets-over-supervised
    # margins (fmd_1shot recorded 0.64/0.68/0.64 over seeds 0-2 with margins
    # +0.28/+0.28/+0.20; grocery_1shot 0.52/0.54/0.45 with margins
    # +0.34/+0.38/+0.25)
    Gate("fmd_1shot", "accuracy", 0.45),
    Gate("fmd_1shot", "margin", 0.10, baseline="finetune"),
    Gate("fmd_20shot", "accuracy", 0.60),
    Gate("grocery_1shot", "accuracy", 0.30),
    Gate("grocery_1shot", "margin", 0.12, baseline="finetune"),
    # imbalance (recorded 0.66-0.74 / 0.64)
    Gate("fmd_5shot_imbalanced", "accuracy", 0.45),
    Gate("cifar_5shot_imbalanced", "accuracy", 0.45),
    # corruption (recorded 0.36-0.48 / 0.46-0.58 / 0.53-0.70)
    Gate("fmd_5shot_noise_s3", "accuracy", 0.22),
    Gate("fmd_5shot_occlusion_s2", "accuracy", 0.30),
    Gate("cifar_5shot_mixing_s2", "accuracy", 0.38),
    # shift (recorded 0.30-0.34 / 0.77)
    Gate("fmd_shift_smartphone", "accuracy", 0.18),
    Gate("cifar_shift_product", "accuracy", 0.55),
    # incremental (recorded 0.87)
    Gate("cifar_incremental_2phase", "accuracy", 0.60),
    # streaming (recorded 0.76 / 0.58)
    Gate("fmd_5shot_streamed", "accuracy", 0.55),
    Gate("fmd_5shot_quarter_pool", "accuracy", 0.40),
)


def default_registry() -> GateRegistry:
    """The registry holding every calibrated default floor."""
    return GateRegistry(DEFAULT_GATES)
