"""The SCENARIOS.json scoreboard: recorded grid results + gate outcomes.

Mirrors ``BENCH_engine.json`` / ``BENCH_serve.json``: a committed, versioned
record of what the grid measured on the pinned scenario workspace, which
floors guard each scenario, and whether they held.  ``scenario-smoke`` and
the full ``-m scenarios`` sweep both regenerate their slice and compare
against the committed floors.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .gates import GateReport, GateRegistry
from .grid import SCENARIO_GRID
from .runner import ScenarioResult

__all__ = ["SCOREBOARD_SCHEMA", "build_scoreboard", "write_scoreboard",
           "load_scoreboard", "format_scoreboard"]

SCOREBOARD_SCHEMA = 1


def build_scoreboard(results: Iterable[ScenarioResult],
                     reports: Iterable[GateReport] = (),
                     workspace: str = "scenario_workspace(seed=0)"
                     ) -> Dict[str, object]:
    """Assemble the scoreboard dict from grid rows and gate reports."""
    scenarios: Dict[str, Dict[str, object]] = {}
    for row in results:
        entry = scenarios.setdefault(row.scenario, {
            "family": row.family,
            "dataset": row.dataset,
            "axes": dict(row.axes),
            "methods": {},
            "gates": [],
        })
        method_entry = entry["methods"].setdefault(row.method, {
            "accuracy": [], "wall_time_s": [], "fallbacks": 0, "extras": {},
        })
        method_entry["accuracy"].append(round(row.accuracy, 4))
        method_entry["wall_time_s"].append(round(row.wall_time_s, 3))
        method_entry["fallbacks"] += row.fallbacks
        method_entry["extras"].update(
            {k: round(float(v), 4) for k, v in row.extras.items()})

    for report in reports:
        entry = scenarios.get(report.gate.scenario)
        if entry is None:
            continue
        entry["gates"].append({
            "metric": report.gate.metric,
            "method": report.gate.method,
            "baseline": (report.gate.baseline
                         if report.gate.metric == "margin" else None),
            "floor": report.gate.floor,
            "observed": (None if report.observed is None
                         else round(report.observed, 4)),
            "passed": report.passed,
        })

    return {
        "schema": SCOREBOARD_SCHEMA,
        "workspace": workspace,
        "families": sorted({entry["family"] for entry in scenarios.values()}),
        "scenarios": {name: scenarios[name] for name in sorted(scenarios)},
    }


def write_scoreboard(path: str, results: Iterable[ScenarioResult],
                     reports: Iterable[GateReport] = (),
                     workspace: str = "scenario_workspace(seed=0)"
                     ) -> Dict[str, object]:
    """Write the scoreboard to ``path`` and return it."""
    scoreboard = build_scoreboard(results, reports, workspace=workspace)
    with open(path, "w") as handle:
        json.dump(scoreboard, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return scoreboard


def load_scoreboard(path: str) -> Dict[str, object]:
    with open(path) as handle:
        scoreboard = json.load(handle)
    if scoreboard.get("schema") != SCOREBOARD_SCHEMA:
        raise ValueError(
            f"unsupported scoreboard schema {scoreboard.get('schema')!r}; "
            f"expected {SCOREBOARD_SCHEMA}")
    return scoreboard


def format_scoreboard(results: Iterable[ScenarioResult],
                      reports: Iterable[GateReport] = ()) -> str:
    """A human-readable grid summary (printed by the smoke job)."""
    rows = sorted(results, key=lambda r: (r.family, r.scenario, r.method,
                                          r.seed))
    lines = [f"{'scenario':<26} {'family':<12} {'method':<10} "
             f"{'accuracy':>9} {'time':>7} {'fb':>3}"]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(f"{row.scenario:<26} {row.family:<12} {row.method:<10} "
                     f"{row.accuracy:>9.3f} {row.wall_time_s:>6.1f}s "
                     f"{row.fallbacks:>3d}")
    reports = list(reports)
    if reports:
        lines.append("")
        lines.extend(str(report) for report in reports)
    return "\n".join(lines)
