"""``repro.scenarios`` — the gated robustness grid over many synthetic worlds.

The paper's claim is that automatic SSL from auxiliary data survives hard
regimes; this package turns that claim into executable gates.  A declarative
:class:`ScenarioSpec` composes regime axes (label scarcity, class imbalance,
input corruption, distribution shift, class-incremental arrivals, streaming
unlabeled pools) into reproducible task splits over the synthetic world; a
:class:`ScenarioRunner` sweeps TAGLETS and baselines over the grid recording
accuracy, wall time, and replay fallback counts; and a :class:`GateRegistry`
asserts per-scenario accuracy floors — plus taglets-beats-supervised margin
floors where the paper predicts one — non-advisorily, like the float32
parity gate but for robustness.

New backbones and methods land in this grid as new rows, not new test
suites.  See ``docs/scenarios.md``.
"""

from .gates import (DEFAULT_GATES, Gate, GateFailure, GateRegistry,
                    GateReport, default_registry)
from .grid import (SCENARIO_GRID, SMOKE_SCENARIOS, get_scenario,
                   scenario_workspace, scenario_workspace_spec,
                   scenarios_by_family)
from .runner import (BASELINE_METHODS, ScenarioResult, ScenarioRunner,
                     experiment_records)
from .scoreboard import (SCOREBOARD_SCHEMA, build_scoreboard,
                         format_scoreboard, load_scoreboard, write_scoreboard)
from .spec import (FAMILIES, CorruptionAxis, ScenarioSpec, ScenarioTask,
                   apply_corruption, apply_imbalance, apply_shift,
                   class_incremental_splits, streaming_splits)

__all__ = [
    "ScenarioSpec", "ScenarioTask", "CorruptionAxis", "FAMILIES",
    "apply_imbalance", "apply_corruption", "apply_shift",
    "class_incremental_splits", "streaming_splits",
    "SCENARIO_GRID", "SMOKE_SCENARIOS", "get_scenario",
    "scenario_workspace", "scenario_workspace_spec", "scenarios_by_family",
    "ScenarioRunner", "ScenarioResult", "BASELINE_METHODS",
    "experiment_records",
    "Gate", "GateReport", "GateFailure", "GateRegistry", "DEFAULT_GATES",
    "default_registry",
    "SCOREBOARD_SCHEMA", "build_scoreboard", "write_scoreboard",
    "load_scoreboard", "format_scoreboard",
]
