"""Declarative scenario specifications: regime axes composed into task splits.

A :class:`ScenarioSpec` names one cell family of the robustness grid: a base
dataset and shot count plus any combination of regime axes —

* **scarcity** — the shot count itself (1/5/20-shot);
* **imbalance** — a geometric head→tail labeled (and unlabeled) profile;
* **corruption** — a severity-graded input corruption
  (:mod:`repro.synth.domains`) applied to chosen split parts;
* **shift** — a test-time domain shift: test images are re-rendered through
  an extra :class:`~repro.synth.domains.DomainShift` the training data never
  saw;
* **incremental** — classes arrive in phases
  (:class:`~repro.synth.streams.ArrivalSchedule`); the unlabeled pool keeps
  *all* classes (future classes pollute pseudo-labeling, deliberately);
* **streaming** — the unlabeled pool arrives in cumulative chunks, or is cut
  to a fraction of its full size.

``build(workspace)`` turns the spec into a :class:`ScenarioTask`: a list of
training-stage :class:`~repro.datasets.base.TaskSplit` objects (one for plain
scenarios, one per arrival for incremental/streaming ones) whose last stage
is the gated evaluation split.  Everything derives deterministically from the
spec's seeds, so two processes building the same scenario train on
bit-identical arrays.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..datasets.base import TaskSplit
from ..synth.domains import CORRUPTION_NAMES, MAX_SEVERITY, build_corruption
from ..synth.streams import ArrivalSchedule, chunk_indices, subsample_indices
from ..workspace import Workspace

__all__ = ["FAMILIES", "CorruptionAxis", "ScenarioSpec", "ScenarioTask",
           "apply_imbalance", "apply_corruption", "apply_shift",
           "class_incremental_splits", "streaming_splits"]

#: The regime families the grid must cover (asserted by tests).
FAMILIES = ("clean", "scarcity", "imbalance", "corruption", "shift",
            "incremental", "streaming")

#: Split parts a corruption may target.
_CORRUPTION_TARGETS = ("labeled", "unlabeled", "test")


@dataclass(frozen=True)
class CorruptionAxis:
    """Which corruption hits which split parts, and how hard."""

    kind: str
    severity: int
    targets: Tuple[str, ...] = ("test",)

    def __post_init__(self):
        if self.kind not in CORRUPTION_NAMES:
            raise ValueError(
                f"unknown corruption {self.kind!r}; expected one of "
                f"{CORRUPTION_NAMES}")
        if not 0 <= self.severity <= MAX_SEVERITY:
            raise ValueError(f"severity must be in 0..{MAX_SEVERITY}")
        unknown = set(self.targets) - set(_CORRUPTION_TARGETS)
        if not self.targets or unknown:
            raise ValueError(
                f"targets must be a non-empty subset of {_CORRUPTION_TARGETS}")


def _scenario_seed(name: str, split_seed: int) -> int:
    """A stable per-scenario seed (crc32, not ``hash`` — survives processes)."""
    return (zlib.crc32(name.encode()) + 7919 * split_seed) % (2 ** 31)


# --------------------------------------------------------------------------- #
# Axis transforms over TaskSplit
# --------------------------------------------------------------------------- #
def apply_imbalance(split: TaskSplit, ratio: float, seed: int = 0) -> TaskSplit:
    """Thin the labeled set into a geometric head→tail class profile.

    Class ranks are a seeded permutation of the label space; class at rank
    fraction ``q`` keeps ``max(1, round(shots * ratio**q))`` labels, so the
    head class keeps all its shots and the tail class keeps
    ``max(1, round(shots * ratio))``.  Dropped labeled examples are *moved to
    the unlabeled pool* (in the real protocol the images exist — they just
    lost their labels), and the test set stays balanced.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError("imbalance ratio must be in (0, 1]")
    rng = np.random.default_rng(seed)
    num_classes = split.num_classes
    ranks = np.empty(num_classes, dtype=np.int64)
    ranks[rng.permutation(num_classes)] = np.arange(num_classes)
    denominator = max(1, num_classes - 1)

    keep_idx: List[int] = []
    drop_idx: List[int] = []
    for cls in range(num_classes):
        cls_indices = np.flatnonzero(split.labeled_labels == cls)
        quantile = ranks[cls] / denominator
        keep = max(1, int(round(len(cls_indices) * ratio ** quantile)))
        permuted = rng.permutation(cls_indices)
        keep_idx.extend(permuted[:keep].tolist())
        drop_idx.extend(permuted[keep:].tolist())

    keep_arr = np.sort(np.asarray(keep_idx, dtype=np.int64))
    drop_arr = np.sort(np.asarray(drop_idx, dtype=np.int64))
    unlabeled = np.concatenate([split.unlabeled_features,
                                split.labeled_features[drop_arr]], axis=0)
    return dataclass_replace(
        split,
        labeled_features=split.labeled_features[keep_arr],
        labeled_labels=split.labeled_labels[keep_arr],
        unlabeled_features=unlabeled)


def apply_corruption(split: TaskSplit, axis: CorruptionAxis,
                     seed: int = 0) -> TaskSplit:
    """Corrupt the chosen split parts with one severity-graded corruption."""
    dim = split.test_features.shape[1]
    corruption = build_corruption(axis.kind, dim, axis.severity, seed=seed)
    updates: Dict[str, np.ndarray] = {}
    if "labeled" in axis.targets:
        updates["labeled_features"] = corruption(split.labeled_features)
    if "unlabeled" in axis.targets and len(split.unlabeled_features):
        updates["unlabeled_features"] = corruption(split.unlabeled_features)
    if "test" in axis.targets:
        updates["test_features"] = corruption(split.test_features)
    return dataclass_replace(split, **updates)


def apply_shift(split: TaskSplit, domain: str, workspace: Workspace) -> TaskSplit:
    """Render the *test* images through an extra, never-trained-on domain.

    Uses the workspace world's cached domain instance so the same scenario
    sees the same shift parameters in every process.
    """
    shifted = workspace.world.domain(domain)(split.test_features)
    return dataclass_replace(split, test_features=shifted)


# --------------------------------------------------------------------------- #
# Multi-stage arrivals
# --------------------------------------------------------------------------- #
def _restrict_to_classes(split: TaskSplit, class_indices: np.ndarray) -> TaskSplit:
    """A split over a subset of classes, labels remapped to ``0..k-1``.

    The unlabeled pool is intentionally NOT restricted: images of classes
    that have not arrived yet still flow through it, which is exactly the
    pseudo-label pollution a class-incremental deployment faces.
    """
    class_indices = np.asarray(class_indices, dtype=np.int64)
    remap = np.full(split.num_classes, -1, dtype=np.int64)
    remap[class_indices] = np.arange(len(class_indices))

    labeled_mask = np.isin(split.labeled_labels, class_indices)
    test_mask = np.isin(split.test_labels, class_indices)
    return dataclass_replace(
        split,
        classes=[split.classes[i] for i in class_indices],
        labeled_features=split.labeled_features[labeled_mask],
        labeled_labels=remap[split.labeled_labels[labeled_mask]],
        test_features=split.test_features[test_mask],
        test_labels=remap[split.test_labels[test_mask]])


def class_incremental_splits(split: TaskSplit, num_phases: int,
                             seed: int = 0) -> List[TaskSplit]:
    """Cumulative class-incremental stages; the last stage is the full task."""
    schedule = ArrivalSchedule(num_phases=num_phases, seed=seed)
    return [_restrict_to_classes(split, seen)
            for seen in schedule.cumulative(split.num_classes)]


def streaming_splits(split: TaskSplit, num_chunks: int,
                     seed: int = 0) -> List[TaskSplit]:
    """Cumulative streaming stages: the unlabeled pool grows chunk by chunk."""
    chunks = chunk_indices(len(split.unlabeled_features), num_chunks, seed=seed)
    stages: List[TaskSplit] = []
    seen = np.zeros(0, dtype=np.int64)
    for chunk in chunks:
        seen = np.sort(np.concatenate([seen, chunk]))
        stages.append(dataclass_replace(
            split, unlabeled_features=split.unlabeled_features[seen]))
    return stages


# --------------------------------------------------------------------------- #
# The spec itself
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioSpec:
    """One named cell of the robustness grid."""

    name: str
    family: str
    dataset: str = "fmd"
    shots: int = 5
    split_seed: int = 0
    backbone: str = "resnet50"
    #: tail/head labeled ratio in (0, 1]; ``None`` keeps the split balanced
    imbalance: Optional[float] = None
    corruption: Optional[CorruptionAxis] = None
    #: test-time domain shift (a :func:`repro.synth.build_domain` name)
    shift: Optional[str] = None
    #: class-incremental arrival phases (>= 2)
    phases: Optional[int] = None
    #: streaming unlabeled-pool chunks (>= 2)
    stream_chunks: Optional[int] = None
    #: cut the unlabeled pool to this fraction before anything else
    unlabeled_fraction: Optional[float] = None
    #: SCADS auxiliary-selection knobs (the paper defaults)
    num_related_concepts: int = 5
    images_per_concept: int = 30
    description: str = ""

    def __post_init__(self):
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown family {self.family!r}; expected one of {FAMILIES}")
        if self.phases is not None and self.stream_chunks is not None:
            raise ValueError(
                "a scenario is either incremental or streaming, not both")
        if self.phases is not None and self.phases < 2:
            raise ValueError("incremental scenarios need at least 2 phases")
        if self.stream_chunks is not None and self.stream_chunks < 2:
            raise ValueError("streaming scenarios need at least 2 chunks")
        if self.unlabeled_fraction is not None \
                and not 0.0 < self.unlabeled_fraction <= 1.0:
            raise ValueError("unlabeled_fraction must be in (0, 1]")

    def axes(self) -> Dict[str, object]:
        """The regime axes as flat metadata (recorded on every result row)."""
        axes: Dict[str, object] = {"shots": self.shots}
        if self.imbalance is not None:
            axes["imbalance"] = self.imbalance
        if self.corruption is not None:
            axes["corruption"] = self.corruption.kind
            axes["severity"] = self.corruption.severity
            axes["corruption_targets"] = list(self.corruption.targets)
        if self.shift is not None:
            axes["shift"] = self.shift
        if self.phases is not None:
            axes["phases"] = self.phases
        if self.stream_chunks is not None:
            axes["stream_chunks"] = self.stream_chunks
        if self.unlabeled_fraction is not None:
            axes["unlabeled_fraction"] = self.unlabeled_fraction
        return axes

    def build(self, workspace: Workspace) -> "ScenarioTask":
        """Compose the axes into concrete training stages (deterministic)."""
        seed = _scenario_seed(self.name, self.split_seed)
        split = workspace.make_task_split(self.dataset, shots=self.shots,
                                          split_seed=self.split_seed)
        if self.unlabeled_fraction is not None:
            keep = subsample_indices(len(split.unlabeled_features),
                                     self.unlabeled_fraction, seed=seed)
            split = dataclass_replace(
                split, unlabeled_features=split.unlabeled_features[keep])
        if self.imbalance is not None:
            split = apply_imbalance(split, self.imbalance, seed=seed)
        if self.corruption is not None:
            split = apply_corruption(split, self.corruption, seed=seed)
        if self.shift is not None:
            split = apply_shift(split, self.shift, workspace)

        if self.phases is not None:
            stages = class_incremental_splits(split, self.phases, seed=seed)
        elif self.stream_chunks is not None:
            stages = streaming_splits(split, self.stream_chunks, seed=seed)
        else:
            stages = [split]
        return ScenarioTask(spec=self, stages=stages)


@dataclass
class ScenarioTask:
    """A built scenario: ordered training stages, last one is evaluated/gated."""

    spec: ScenarioSpec
    stages: List[TaskSplit] = field(default_factory=list)

    @property
    def final(self) -> TaskSplit:
        return self.stages[-1]

    @property
    def multi_stage(self) -> bool:
        return len(self.stages) > 1
