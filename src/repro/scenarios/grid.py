"""The default scenario grid: many synthetic worlds, hard regimes.

Every entry is a :class:`~repro.scenarios.spec.ScenarioSpec` over the shared
*scenario workspace* — the same reduced-but-faithful workspace recipe the
test suite uses (small filler haystack, full SCADS/world machinery), so grid
accuracies are bit-reproducible between tier-1, the ``scenario-smoke`` CI
job, and a local run.

The grid covers the regime families the paper's claims must survive
(ROADMAP "Scenario matrix"): label scarcity, class imbalance, input
corruption, distribution shift, class-incremental arrivals, and streaming /
shrunken unlabeled pools.  ``SMOKE_SCENARIOS`` names the fast representative
subset (one cell per family) swept non-advisorily in CI;
``pytest -m scenarios`` sweeps the whole grid.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..kg import GraphSpec
from ..synth import WorldSpec
from ..workspace import Workspace, WorkspaceSpec
from .spec import CorruptionAxis, ScenarioSpec

__all__ = ["SCENARIO_GRID", "SMOKE_SCENARIOS", "scenario_workspace_spec",
           "scenario_workspace", "get_scenario", "scenarios_by_family"]


def scenario_workspace_spec(seed: int = 0) -> WorkspaceSpec:
    """The workspace recipe every grid accuracy (and floor) is pinned to."""
    return WorkspaceSpec(graph=GraphSpec(num_filler_concepts=300, seed=seed),
                         world=WorldSpec(seed=seed),
                         scads_images_per_concept=30, seed=seed)


def scenario_workspace(seed: int = 0) -> Workspace:
    """Build the scenario workspace (≈1 s; reuse it across cells)."""
    return Workspace(scenario_workspace_spec(seed=seed))


_SPECS: Tuple[ScenarioSpec, ...] = (
    # -- clean reference ---------------------------------------------------- #
    ScenarioSpec(
        name="fmd_5shot_clean", family="clean", dataset="fmd", shots=5,
        description="Reference cell: FMD, 5-shot, untouched split."),
    # -- label scarcity ----------------------------------------------------- #
    ScenarioSpec(
        name="fmd_1shot", family="scarcity", dataset="fmd", shots=1,
        description="One label per class; auxiliary data must carry the task "
                    "(paper Tables 1/3, 1-shot columns)."),
    ScenarioSpec(
        name="fmd_20shot", family="scarcity", dataset="fmd", shots=20,
        description="Label-rich end of the scarcity curve."),
    ScenarioSpec(
        name="grocery_1shot", family="scarcity", dataset="grocery_store",
        shots=1,
        description="42 fine-grained classes (2 out-of-vocabulary) at one "
                    "shot — the regime where the paper predicts the largest "
                    "taglets margin (Table 2)."),
    # -- class imbalance ---------------------------------------------------- #
    ScenarioSpec(
        name="fmd_5shot_imbalanced", family="imbalance", dataset="fmd",
        shots=5, imbalance=0.2,
        description="Geometric head→tail profile: tail class keeps 1 of its "
                    "5 shots; dropped labels rejoin the unlabeled pool."),
    ScenarioSpec(
        name="cifar_5shot_imbalanced", family="imbalance",
        dataset="cifar_demo", shots=5, imbalance=0.2,
        description="Same imbalance profile on the artifact-demo task."),
    # -- input corruption --------------------------------------------------- #
    ScenarioSpec(
        name="fmd_5shot_noise_s3", family="corruption", dataset="fmd",
        shots=5, corruption=CorruptionAxis("gaussian_noise", severity=3),
        description="Severity-3 Gaussian noise on the test set."),
    ScenarioSpec(
        name="fmd_5shot_occlusion_s2", family="corruption", dataset="fmd",
        shots=5, corruption=CorruptionAxis("occlusion", severity=2),
        description="A quarter of each test image's feature grid blanked."),
    ScenarioSpec(
        name="cifar_5shot_mixing_s2", family="corruption",
        dataset="cifar_demo", shots=5,
        corruption=CorruptionAxis("mixing", severity=2,
                                  targets=("unlabeled", "test")),
        description="Style mixing on the unlabeled pool AND the test set — "
                    "corrupted pseudo-label inputs, not just corrupted "
                    "evaluation."),
    # -- distribution shift ------------------------------------------------- #
    ScenarioSpec(
        name="fmd_shift_smartphone", family="shift", dataset="fmd", shots=5,
        shift="smartphone",
        description="Train on natural photos, test through the smartphone "
                    "domain (blur + exposure jitter)."),
    ScenarioSpec(
        name="cifar_shift_product", family="shift", dataset="cifar_demo",
        shots=5, shift="product",
        description="Test images re-rendered catalogue-style (mild affine "
                    "shift)."),
    # -- class-incremental arrivals ----------------------------------------- #
    ScenarioSpec(
        name="cifar_incremental_2phase", family="incremental",
        dataset="cifar_demo", shots=5, phases=2,
        description="Half the classes arrive first, the rest later; the "
                    "unlabeled pool always contains future classes."),
    # -- streaming unlabeled pools ------------------------------------------ #
    ScenarioSpec(
        name="fmd_5shot_streamed", family="streaming", dataset="fmd", shots=5,
        stream_chunks=2,
        description="The unlabeled pool arrives in two cumulative chunks; "
                    "the gated accuracy is after the final chunk."),
    ScenarioSpec(
        name="fmd_5shot_quarter_pool", family="streaming", dataset="fmd",
        shots=5, unlabeled_fraction=0.25,
        description="Only a quarter of the unlabeled pool ever arrives."),
)

#: name -> spec for the whole grid.
SCENARIO_GRID: Dict[str, ScenarioSpec] = {spec.name: spec for spec in _SPECS}

#: The fast representative subset (one cell per regime family) that the
#: non-advisory ``scenario-smoke`` CI job sweeps on every push.
SMOKE_SCENARIOS: Tuple[str, ...] = (
    "fmd_1shot",                 # scarcity + the gated taglets-vs-supervised margin
    "fmd_5shot_imbalanced",      # imbalance
    "fmd_5shot_noise_s3",        # corruption
    "fmd_shift_smartphone",      # shift
    "cifar_incremental_2phase",  # incremental
    "fmd_5shot_streamed",        # streaming
)


def get_scenario(name: str) -> ScenarioSpec:
    if name not in SCENARIO_GRID:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIO_GRID)}")
    return SCENARIO_GRID[name]


def scenarios_by_family(names: Iterable[str] = ()) -> Dict[str, List[ScenarioSpec]]:
    """Group (a subset of) the grid by regime family."""
    selected = [SCENARIO_GRID[n] for n in names] if names else list(_SPECS)
    grouped: Dict[str, List[ScenarioSpec]] = {}
    for spec in selected:
        grouped.setdefault(spec.family, []).append(spec)
    return grouped
