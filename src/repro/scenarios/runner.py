"""Executing scenario cells: TAGLETS and baselines over built scenarios.

:class:`ScenarioRunner` runs one method over one built scenario and records a
:class:`ScenarioResult` row: final-stage accuracy, wall time, and — for the
TAGLETS method — the replay executor's eager-fallback count, which the
zero-fallback regression suite pins to 0 for every scenario-grid loop.

Multi-stage scenarios (incremental arrivals, streaming pools) retrain from
scratch per stage, exactly like the paper's controller would be re-run as new
data lands; per-stage accuracies are recorded in ``extras`` and the *final*
stage is what the gates see.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core import Controller, ControllerConfig, Task
from ..datasets.base import TaskSplit
from ..evaluation.runner import ExperimentResult, baseline_method
from ..nn.replay import ReplayStats
from ..workspace import Workspace
from .spec import ScenarioSpec, ScenarioTask

__all__ = ["ScenarioResult", "ScenarioRunner", "BASELINE_METHODS",
           "experiment_records"]

#: Baseline method names the runner accepts (resolved through
#: :func:`repro.evaluation.runner.baseline_method`).
BASELINE_METHODS = ("finetune", "finetune_distilled", "fixmatch",
                    "meta_pseudo_labels", "simclrv2")


@dataclass
class ScenarioResult:
    """One (scenario, method, seed) measurement of the robustness grid."""

    scenario: str
    family: str
    method: str
    dataset: str
    shots: int
    backbone: str
    seed: int
    accuracy: float
    wall_time_s: float
    #: eager fallbacks reported by the replay executor (TAGLETS rows only;
    #: must be 0 — every scenario loop is a static graph)
    fallbacks: int = 0
    axes: Dict[str, object] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)

    def as_experiment_result(self) -> ExperimentResult:
        """The row as a scenario-tagged :class:`ExperimentResult` record."""
        return ExperimentResult(
            method=self.method, dataset=self.dataset, shots=self.shots,
            split_seed=0, backbone=self.backbone, seed=self.seed,
            accuracy=self.accuracy, extras=dict(self.extras),
            scenario=self.scenario, scenario_family=self.family,
            axes=dict(self.axes))

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario, "family": self.family,
            "method": self.method, "dataset": self.dataset,
            "shots": self.shots, "backbone": self.backbone, "seed": self.seed,
            "accuracy": self.accuracy, "wall_time_s": self.wall_time_s,
            "fallbacks": self.fallbacks, "axes": dict(self.axes),
            "extras": dict(self.extras),
        }


class ScenarioRunner:
    """Sweeps methods over scenario cells against one shared workspace."""

    def __init__(self, workspace: Workspace, dtype: Optional[str] = "float32"):
        self.workspace = workspace
        self.dtype = dtype

    # ------------------------------------------------------------------ #
    # Single cells
    # ------------------------------------------------------------------ #
    def run_cell(self, spec: ScenarioSpec, method: str = "taglets",
                 seed: int = 0,
                 replay_stats: Optional[ReplayStats] = None) -> ScenarioResult:
        """Run one (scenario, method, seed) cell and return its row.

        ``replay_stats`` lets callers (the zero-fallback regression suite)
        attach their own shared counter; by default the runner attaches a
        private one and records its fallback count on the row.
        """
        scenario_task = spec.build(self.workspace)
        started = time.perf_counter()
        if method == "taglets":
            accuracy, fallbacks, extras = self._run_taglets(
                spec, scenario_task, seed, replay_stats)
        elif method in BASELINE_METHODS:
            accuracy, extras = self._run_baseline(method, spec, scenario_task,
                                                  seed)
            fallbacks = 0
        else:
            raise KeyError(
                f"unknown method {method!r}; expected 'taglets' or one of "
                f"{BASELINE_METHODS}")
        wall_time = time.perf_counter() - started
        return ScenarioResult(
            scenario=spec.name, family=spec.family, method=method,
            dataset=spec.dataset, shots=spec.shots, backbone=spec.backbone,
            seed=seed, accuracy=accuracy, wall_time_s=wall_time,
            fallbacks=fallbacks, axes=spec.axes(), extras=extras)

    def _run_taglets(self, spec: ScenarioSpec, scenario_task: ScenarioTask,
                     seed: int, replay_stats: Optional[ReplayStats]):
        backbone = self.workspace.backbone(spec.backbone)
        stats = replay_stats if replay_stats is not None else ReplayStats()
        extras: Dict[str, float] = {}
        accuracy = 0.0
        for stage, split in enumerate(scenario_task.stages):
            task = Task.from_split(
                split, scads=self.workspace.scads, backbone=backbone,
                wanted_num_related_class=spec.num_related_concepts,
                images_per_related_class=spec.images_per_concept)
            config = ControllerConfig(dtype=self.dtype, seed=seed,
                                      replay_stats=stats)
            result = Controller(config=config).run(task)
            accuracy = result.end_model_accuracy(split.test_features,
                                                 split.test_labels)
            if scenario_task.multi_stage:
                extras[f"stage{stage}_accuracy"] = accuracy
            if stage == len(scenario_task.stages) - 1:
                extras["ensemble"] = result.ensemble_accuracy(
                    split.test_features, split.test_labels)
                extras["end_model"] = accuracy
        return accuracy, stats.fallback_count, extras

    def _run_baseline(self, method: str, spec: ScenarioSpec,
                      scenario_task: ScenarioTask, seed: int):
        """Baselines see the final stage's data (all arrivals landed)."""
        record = baseline_method(method).run(
            self.workspace, scenario_task.final, spec.backbone, seed)
        return record.accuracy, dict(record.extras)

    # ------------------------------------------------------------------ #
    # Grids
    # ------------------------------------------------------------------ #
    def run_grid(self, specs: Sequence[ScenarioSpec],
                 methods: Sequence[str] = ("taglets", "finetune"),
                 seeds: Sequence[int] = (0,),
                 progress: Optional[Callable[[ScenarioResult], None]] = None
                 ) -> List[ScenarioResult]:
        """Run every (scenario, method, seed) cell and return all rows."""
        rows: List[ScenarioResult] = []
        for spec in specs:
            for method in methods:
                for seed in seeds:
                    row = self.run_cell(spec, method=method, seed=seed)
                    rows.append(row)
                    if progress is not None:
                        progress(row)
        return rows


def experiment_records(results: Iterable[ScenarioResult]) -> List[ExperimentResult]:
    """Scenario rows as scenario-tagged experiment records (for figures/tables)."""
    return [row.as_experiment_result() for row in results]
