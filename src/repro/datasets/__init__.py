"""``repro.datasets`` — synthetic counterparts of the paper's evaluation tasks."""

from .base import ClassSpec, TargetDataset, TaskSplit, make_split
from .builders import (DATASET_BUILDERS, TEST_PER_CLASS, build_cifar_demo,
                       build_dataset, build_fmd, build_grocery_store,
                       build_officehome_clipart, build_officehome_product)

__all__ = [
    "ClassSpec", "TargetDataset", "TaskSplit", "make_split",
    "DATASET_BUILDERS", "TEST_PER_CLASS", "build_dataset",
    "build_fmd", "build_officehome_product", "build_officehome_clipart",
    "build_grocery_store", "build_cifar_demo",
]
