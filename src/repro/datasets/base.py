"""Target-task dataset abstractions and the split/shot protocol.

A :class:`TargetDataset` is the full pool of examples for one of the paper's
evaluation tasks.  :func:`make_split` applies the protocol of Appendix A.2:

1. hold out a fixed number of test images per class using the split seed
   (unless the dataset ships a predetermined test set, like Grocery Store),
2. label a fixed number of train images per class (the "shots"),
3. treat the remaining train images as the unlabeled pool.

The same split seed drives both steps, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ClassSpec", "TargetDataset", "TaskSplit", "make_split"]


@dataclass(frozen=True)
class ClassSpec:
    """A target class and how it maps into the knowledge graph.

    ``concept`` is the SCADS concept the class aligns to; ``None`` marks an
    out-of-vocabulary class (e.g. ``oatghurt``), in which case ``anchors``
    lists the existing concepts a new node should be linked to.
    """

    name: str
    concept: Optional[str] = None
    anchors: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.concept is None and not self.anchors:
            raise ValueError(
                f"class {self.name!r} is out-of-vocabulary but has no anchor concepts")


@dataclass
class TargetDataset:
    """A full evaluation task: class specs, train pool, and (optional) test set."""

    name: str
    classes: List[ClassSpec]
    domain: str
    features: np.ndarray
    labels: np.ndarray
    test_features: Optional[np.ndarray] = None
    test_labels: Optional[np.ndarray] = None

    def __post_init__(self):
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.features) != len(self.labels):
            raise ValueError("features and labels disagree on length")
        if self.labels.size and self.labels.max() >= len(self.classes):
            raise ValueError("labels reference classes beyond the class list")
        has_test = self.test_features is not None
        if has_test != (self.test_labels is not None):
            raise ValueError("test_features and test_labels must be provided together")
        if has_test:
            self.test_features = np.asarray(self.test_features, dtype=np.float64)
            self.test_labels = np.asarray(self.test_labels, dtype=np.int64)

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def class_names(self) -> List[str]:
        return [c.name for c in self.classes]

    @property
    def has_predetermined_test(self) -> bool:
        return self.test_features is not None

    def images_per_class(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.num_classes)


@dataclass
class TaskSplit:
    """One labeled/unlabeled/test split of a target dataset."""

    dataset_name: str
    classes: List[ClassSpec]
    shots: int
    split_seed: int
    labeled_features: np.ndarray
    labeled_labels: np.ndarray
    unlabeled_features: np.ndarray
    test_features: np.ndarray
    test_labels: np.ndarray

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def class_names(self) -> List[str]:
        return [c.name for c in self.classes]

    def summary(self) -> Dict[str, int]:
        return {
            "num_classes": self.num_classes,
            "labeled": len(self.labeled_features),
            "unlabeled": len(self.unlabeled_features),
            "test": len(self.test_features),
            "shots": self.shots,
        }


def _per_class_indices(labels: np.ndarray, num_classes: int) -> List[np.ndarray]:
    return [np.flatnonzero(labels == c) for c in range(num_classes)]


def make_split(dataset: TargetDataset, shots: int, split_seed: int,
               test_per_class: int = 10) -> TaskSplit:
    """Create a labeled/unlabeled/test split following Appendix A.2.

    Parameters
    ----------
    dataset:
        The full task.
    shots:
        Number of labeled examples per class (1, 5, or 20 in the paper).
    split_seed:
        Seed controlling both the train/test partition and which train images
        get labels (``split 0/1/2`` in the paper's tables).
    test_per_class:
        Held-out test images per class, ignored when the dataset ships a
        predetermined test set.
    """
    if shots <= 0:
        raise ValueError("shots must be positive")
    rng = np.random.default_rng(split_seed)
    num_classes = dataset.num_classes

    if dataset.has_predetermined_test:
        train_features, train_labels = dataset.features, dataset.labels
        test_features, test_labels = dataset.test_features, dataset.test_labels
    else:
        train_idx: List[int] = []
        test_idx: List[int] = []
        for cls_indices in _per_class_indices(dataset.labels, num_classes):
            if len(cls_indices) <= test_per_class:
                raise ValueError(
                    f"class with {len(cls_indices)} examples cannot hold out "
                    f"{test_per_class} test images")
            permuted = rng.permutation(cls_indices)
            test_idx.extend(permuted[:test_per_class].tolist())
            train_idx.extend(permuted[test_per_class:].tolist())
        train_idx_arr = np.asarray(train_idx)
        test_idx_arr = np.asarray(test_idx)
        train_features, train_labels = (dataset.features[train_idx_arr],
                                        dataset.labels[train_idx_arr])
        test_features, test_labels = (dataset.features[test_idx_arr],
                                      dataset.labels[test_idx_arr])

    labeled_idx: List[int] = []
    unlabeled_idx: List[int] = []
    for cls_indices in _per_class_indices(train_labels, num_classes):
        if len(cls_indices) < shots:
            raise ValueError(
                f"a class has only {len(cls_indices)} train images, cannot label "
                f"{shots} shots")
        permuted = rng.permutation(cls_indices)
        labeled_idx.extend(permuted[:shots].tolist())
        unlabeled_idx.extend(permuted[shots:].tolist())

    labeled_idx_arr = np.asarray(labeled_idx)
    unlabeled_idx_arr = np.asarray(unlabeled_idx)
    return TaskSplit(
        dataset_name=dataset.name,
        classes=list(dataset.classes),
        shots=shots,
        split_seed=split_seed,
        labeled_features=train_features[labeled_idx_arr],
        labeled_labels=train_labels[labeled_idx_arr],
        unlabeled_features=train_features[unlabeled_idx_arr],
        test_features=test_features,
        test_labels=test_labels,
    )
