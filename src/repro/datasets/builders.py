"""Builders for the synthetic counterparts of the paper's evaluation tasks.

Each builder samples a :class:`~repro.datasets.base.TargetDataset` from a
:class:`~repro.synth.world.VisualWorld`:

* **FMD** — 10 material classes, 100 natural-domain photos per class, 5 test
  images per class held out at split time.
* **OfficeHome-Product / OfficeHome-Clipart** — the same 65 object classes in
  the product and clipart domains, ~40 images per class, 10 test per class.
* **Grocery Store** — 42 grocery classes photographed with a smartphone, with
  a *predetermined* test set (as in the real dataset) and two classes
  (``oatghurt``, ``soygurt``) that are missing from the knowledge graph.
* **CIFAR-demo** — a small 10-class task with a 100-class auxiliary pool,
  mirroring the artifact-appendix demo (CIFAR-10 target, CIFAR-100 auxiliary).

The image counts are scaled-down versions of the real datasets so the full
benchmark grid runs on a laptop, but the relative sizes (Product/Clipart
larger than FMD; Grocery smallest per class) are preserved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kg import vocabulary as vocab
from ..synth.world import VisualWorld
from .base import ClassSpec, TargetDataset

__all__ = [
    "build_fmd",
    "build_officehome_product",
    "build_officehome_clipart",
    "build_grocery_store",
    "build_cifar_demo",
    "DATASET_BUILDERS",
    "build_dataset",
]


def _sample_classes(world: VisualWorld, classes: Sequence[ClassSpec],
                    per_class: int, domain: str,
                    rng: np.random.Generator,
                    noise: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
    features: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    for label, spec in enumerate(classes):
        concept = spec.concept
        if concept is None:
            # Out-of-vocabulary class: its appearance is a blend of anchors.
            if spec.name not in world:
                world.add_concept_prototype(spec.name, spec.anchors,
                                            seed=hash(spec.name) % (2 ** 31))
            concept = spec.name
        images = world.sample_images(concept, per_class, domain=domain, rng=rng,
                                     noise=noise)
        features.append(images)
        labels.append(np.full(per_class, label, dtype=np.int64))
    return np.concatenate(features, axis=0), np.concatenate(labels, axis=0)


def build_fmd(world: VisualWorld, per_class: int = 100,
              seed: int = 0, appearance_noise: float = 0.5) -> TargetDataset:
    """Flickr Material Database analog: 10 material classes, natural photos.

    The real FMD intentionally includes large intra-class appearance diversity
    so that low-level cues cannot separate the materials; ``appearance_noise``
    (higher than the world's default) models that diversity.
    """
    rng = np.random.default_rng(seed)
    classes = [ClassSpec(name=c, concept=c) for c in vocab.FMD_CLASSES]
    features, labels = _sample_classes(world, classes, per_class, "natural", rng,
                                       noise=appearance_noise)
    return TargetDataset(name="fmd", classes=classes, domain="natural",
                         features=features, labels=labels)


def _officehome_classes() -> List[ClassSpec]:
    return [ClassSpec(name=c, concept=c) for c in vocab.OFFICE_HOME_CLASSES]


def build_officehome_product(world: VisualWorld, per_class: int = 40,
                             seed: int = 0) -> TargetDataset:
    """OfficeHome-Product analog: 65 object classes, catalogue-style images."""
    rng = np.random.default_rng(seed)
    classes = _officehome_classes()
    features, labels = _sample_classes(world, classes, per_class, "product", rng)
    return TargetDataset(name="officehome_product", classes=classes,
                         domain="product", features=features, labels=labels)


def build_officehome_clipart(world: VisualWorld, per_class: int = 40,
                             seed: int = 0) -> TargetDataset:
    """OfficeHome-Clipart analog: the same 65 classes as clipart illustrations."""
    rng = np.random.default_rng(seed)
    classes = _officehome_classes()
    features, labels = _sample_classes(world, classes, per_class, "clipart", rng)
    return TargetDataset(name="officehome_clipart", classes=classes,
                         domain="clipart", features=features, labels=labels)


def _grocery_classes() -> List[ClassSpec]:
    classes = [ClassSpec(name=c, concept=c) for c in vocab.GROCERY_CLASSES]
    for oov in vocab.GROCERY_OOV_CLASSES:
        classes.append(ClassSpec(name=oov, concept=None,
                                 anchors=tuple(vocab.GROCERY_OOV_ANCHORS[oov])))
    return classes


def build_grocery_store(world: VisualWorld, per_class: int = 25,
                        test_per_class: int = 8, seed: int = 0) -> TargetDataset:
    """Grocery Store analog: 42 classes, smartphone photos, fixed test set.

    The real dataset ships a predetermined test split, so the test images are
    generated once (from the builder seed) and reused by every experiment
    split, exactly as the paper's protocol requires.
    """
    rng = np.random.default_rng(seed)
    classes = _grocery_classes()
    features, labels = _sample_classes(world, classes, per_class, "smartphone", rng)
    test_rng = np.random.default_rng(seed + 10_000)
    test_features, test_labels = _sample_classes(world, classes, test_per_class,
                                                 "smartphone", test_rng)
    return TargetDataset(name="grocery_store", classes=classes, domain="smartphone",
                         features=features, labels=labels,
                         test_features=test_features, test_labels=test_labels)


def build_cifar_demo(world: VisualWorld, per_class: int = 60,
                     num_classes: int = 10, seed: int = 0) -> TargetDataset:
    """The artifact-appendix demo task: a generic 10-class natural-image task.

    Classes are drawn from curated object concepts outside the four main
    evaluation tasks' focus, standing in for CIFAR-10; the auxiliary pool in
    SCADS plays the role of CIFAR-100.
    """
    rng = np.random.default_rng(seed)
    pool = [c for c in vocab.OFFICE_HOME_CLASSES][:num_classes]
    classes = [ClassSpec(name=f"demo_{c}", concept=c) for c in pool]
    features, labels = _sample_classes(world, classes, per_class, "natural", rng)
    return TargetDataset(name="cifar_demo", classes=classes, domain="natural",
                         features=features, labels=labels)


#: Registry used by the experiment runner and the benchmarks.
DATASET_BUILDERS = {
    "fmd": build_fmd,
    "officehome_product": build_officehome_product,
    "officehome_clipart": build_officehome_clipart,
    "grocery_store": build_grocery_store,
    "cifar_demo": build_cifar_demo,
}

#: Test images held out per class, following Appendix A.2 (FMD: 5,
#: OfficeHome: 10; Grocery Store uses its predetermined test set).
TEST_PER_CLASS = {
    "fmd": 5,
    "officehome_product": 10,
    "officehome_clipart": 10,
    "grocery_store": 0,
    "cifar_demo": 10,
}


def build_dataset(name: str, world: VisualWorld, seed: int = 0,
                  **overrides) -> TargetDataset:
    """Build a dataset by registry name."""
    if name not in DATASET_BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASET_BUILDERS)}")
    return DATASET_BUILDERS[name](world, seed=seed, **overrides)
