"""The ZSL-KG module (paper Section 3.2.4).

Zero-shot learning from the knowledge graph: a graph neural network maps a
concept node (and its neighbourhood) to a class weight vector in the
backbone's feature space, so predictions for the target classes require no
labeled target examples at all.

Following the paper's recipe (Appendix A.3), the graph neural network is
pretrained by regressing, for concepts with available auxiliary images, onto
the classifier weights of a pretrained classifier — here the feature-space
prototypes of each concept under the frozen backbone, which are the weights
of the corresponding prototype classifier (Eq. 9).  At task time the trained
network produces a weight vector for every target class, those vectors are
plugged in as the classification head, and the frozen backbone does the rest.

Because the module never sees labeled target data, its accuracy is invariant
to the number of shots — visible as the flat ZSL-KG line in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..backbones.backbone import ClassificationModel, PretrainedBackbone
from ..kg.graph import KnowledgeGraph
from ..nn.modules import Linear, Module, ReLU
from ..nn.tensor import get_default_dtype, inference_mode
from ..nn.optim import Adam
from ..nn.replay import GraphReplay
from ..nn.tensor import Tensor
from ..nn.training import predict_logits
from ..scads.builder import ScadsBundle
from ..scads.query import target_class_vector
from .base import ModuleInput, Taglet, TrainingModule

__all__ = ["ZslKgConfig", "GraphClassEncoder", "ZslKgModule", "ZslKgTaglet"]


@dataclass
class ZslKgConfig:
    """Hyperparameters of the graph class encoder and its pretraining."""

    hidden_dim: int = 128
    pretrain_epochs: int = 800
    pretrain_lr: float = 1e-2
    weight_decay: float = 0.0
    #: number of concepts used for pretraining (sampled from those with images)
    max_training_concepts: int = 2500
    #: images per concept used to build prototype regression targets
    images_per_prototype: int = 10
    #: softmax temperature of the resulting zero-shot classifier
    logit_scale: float = 4.0
    #: held-out fraction of training concepts used for checkpoint selection
    validation_fraction: float = 0.1


class GraphClassEncoder(Module):
    """A two-layer graph neural network producing class weight vectors.

    Each node is described by its own SCADS embedding concatenated with the
    mean embedding of its graph neighbourhood (single-hop aggregation); two
    dense layers map that description to a vector in backbone feature space.
    """

    def __init__(self, embedding_dim: int, hidden_dim: int, output_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.fc1 = Linear(2 * embedding_dim, hidden_dim, rng=rng)
        self.activation = ReLU()
        self.fc2 = Linear(hidden_dim, output_dim, rng=rng)
        self.embedding_dim = embedding_dim
        self.output_dim = output_dim

    def forward(self, node_descriptions: Tensor) -> Tensor:
        return self.fc2(self.activation(self.fc1(node_descriptions)))


def _eval_forward(module: Module, inputs: np.ndarray) -> np.ndarray:
    """Forward pass for eval-only consumers, tape-free when enabled."""
    with inference_mode():
        return module(Tensor(inputs)).data


class ZslKgTaglet(Taglet):
    """Zero-shot classifier: frozen backbone features scored against class vectors."""

    def __init__(self, name: str, model: ClassificationModel, logit_scale: float):
        super().__init__(name)
        self.model = model
        self.logit_scale = logit_scale

    def predict_proba(self, features: np.ndarray,
                      batch_size: Optional[int] = 256) -> np.ndarray:
        logits = predict_logits(self.model, features,
                                batch_size=batch_size) * self.logit_scale
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)


class ZslKgModule(TrainingModule):
    """Zero-shot taglet driven by the knowledge graph in SCADS."""

    name = "zsl_kg"

    #: cache of pretrained class encoders keyed by (backbone identity, graph identity)
    _pretrained_cache: Dict[Tuple[int, int], Dict[str, np.ndarray]] = {}

    def __init__(self, config: Optional[ZslKgConfig] = None):
        self.config = config or ZslKgConfig()

    # ------------------------------------------------------------------ #
    # Node descriptions
    # ------------------------------------------------------------------ #
    def _node_description(self, bundle: ScadsBundle, concept_or_vector) -> np.ndarray:
        """Own embedding concatenated with the neighbourhood mean embedding."""
        embedding = bundle.embedding
        if isinstance(concept_or_vector, str):
            own = embedding.get_vector(concept_or_vector)
            try:
                neighbors = [embedding.get_vector(n, allow_approximation=False)
                             for n, _, _ in bundle.scads.graph.neighbors(concept_or_vector)]
            except KeyError:
                neighbors = []
        else:
            own = np.asarray(concept_or_vector, dtype=np.float64)
            neighbors = []
        neighborhood = np.mean(neighbors, axis=0) if neighbors else own
        return np.concatenate([own, neighborhood])

    # ------------------------------------------------------------------ #
    # Pretraining on auxiliary concepts (Eq. 9)
    # ------------------------------------------------------------------ #
    def _pretrain(self, bundle: ScadsBundle, backbone: PretrainedBackbone,
                  seed: int) -> Dict[str, np.ndarray]:
        # The engine dtype is part of the key: float32-mode pretrain weights
        # must not silently leak into a later float64 run (or vice versa).
        cache_key = (id(backbone), id(bundle.scads.graph),
                     np.dtype(get_default_dtype()).name)
        if cache_key in self._pretrained_cache:
            return self._pretrained_cache[cache_key]

        config = self.config
        rng = np.random.default_rng(seed)
        encoder = backbone.instantiate(rng=rng)
        encoder.eval()

        concepts = bundle.scads.concepts_with_images()
        if len(concepts) > config.max_training_concepts:
            concepts = sorted(rng.choice(concepts, size=config.max_training_concepts,
                                         replace=False).tolist())
        descriptions = np.stack([self._node_description(bundle, c) for c in concepts])
        prototypes = []
        for concept in concepts:
            images = bundle.scads.get_images(concept,
                                             limit=config.images_per_prototype,
                                             rng=rng)
            features = _eval_forward(encoder, images)
            prototype = features.mean(axis=0)
            norm = np.linalg.norm(prototype)
            prototypes.append(prototype / norm if norm > 0 else prototype)
        targets = np.stack(prototypes)

        n_validation = max(1, int(len(concepts) * config.validation_fraction))
        permutation = rng.permutation(len(concepts))
        val_idx, train_idx = permutation[:n_validation], permutation[n_validation:]

        class_encoder = GraphClassEncoder(bundle.embedding.dim, config.hidden_dim,
                                          backbone.feature_dim, rng=rng)
        optimizer = Adam(class_encoder.parameters(), lr=config.pretrain_lr,
                         weight_decay=config.weight_decay)
        best_state = class_encoder.state_dict()
        best_val = float("inf")
        # The pretrain loop is the engine's most static workload: the same
        # full-batch step (plus a validation forward) repeated
        # ``pretrain_epochs`` times.  The graph replay executor captures the
        # training step and the validation pass once each and replays raw
        # NumPy kernels for the remaining epochs — bit-identical to the
        # eager loop, with the training-loss scalar elided since nothing
        # consumes it.  Inputs are cast to the engine dtype up front so
        # every replayed step hits the zero-copy fast path.
        dtype = get_default_dtype()
        train_x = descriptions[train_idx].astype(dtype)
        train_y = targets[train_idx].astype(dtype)
        val_x = descriptions[val_idx].astype(dtype)
        val_y = targets[val_idx].astype(dtype)
        stepper = GraphReplay(class_encoder, optimizer, loss="l2")
        for _ in range(config.pretrain_epochs):
            class_encoder.train()
            stepper.step(train_x, train_y, compute_loss=False)
            class_encoder.eval()
            val_loss = stepper.eval_loss(val_x, val_y)
            if val_loss < best_val:
                best_val = val_loss
                best_state = class_encoder.state_dict()

        self._pretrained_cache[cache_key] = best_state
        return best_state

    # ------------------------------------------------------------------ #
    # Taglet construction
    # ------------------------------------------------------------------ #
    def train(self, data: ModuleInput) -> Taglet:
        if data.scads is None:
            raise ValueError("the ZSL-KG module requires a SCADS bundle")
        config = self.config
        rng = np.random.default_rng(data.seed)
        bundle = data.scads
        state = self._pretrain(bundle, data.backbone, seed=data.seed)

        class_encoder = GraphClassEncoder(bundle.embedding.dim, config.hidden_dim,
                                          data.backbone.feature_dim, rng=rng)
        class_encoder.load_state_dict(state)
        class_encoder.eval()

        descriptions = []
        for spec in data.classes:
            concept = spec.concept or spec.name
            try:
                description = self._node_description(bundle, concept)
            except KeyError:
                vector = target_class_vector(spec, bundle.scads, bundle.embedding)
                if vector is None:
                    vector = np.zeros(bundle.embedding.dim)
                description = self._node_description(bundle, vector)
            descriptions.append(description)
        class_vectors = _eval_forward(class_encoder, np.stack(descriptions))

        model = ClassificationModel.from_backbone(data.backbone,
                                                  num_classes=data.num_classes,
                                                  rng=rng)
        model.set_head_weights(class_vectors.T,
                               bias=np.zeros(data.num_classes))
        model.eval()
        return ZslKgTaglet(self.name, model, logit_scale=config.logit_scale)
