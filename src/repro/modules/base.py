"""Base abstractions for training modules and taglets (paper Section 3.2).

A *module* is a learning method adapted to exploit SCADS; its output — a
trained classifier over the target label space — is a *taglet*.  Modules are
trained independently and their taglets are later ensembled into pseudo
labels for the distillation stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..backbones.backbone import ClassificationModel, PretrainedBackbone
from ..datasets.base import ClassSpec
from ..nn.training import predict_proba
from ..scads.builder import ScadsBundle
from ..scads.query import AuxiliarySelection

__all__ = ["ModuleInput", "Taglet", "ModelTaglet", "TrainingModule"]


@dataclass
class ModuleInput:
    """Everything a training module may consume.

    This corresponds to the spectrum of data of Section 3: the limited
    labeled target set ``X``, the unlabeled target pool ``U``, the selected
    auxiliary data ``R`` (plus which concepts it came from), the SCADS bundle
    for graph queries, and the pretrained backbone the module starts from.
    """

    classes: List[ClassSpec]
    labeled_features: np.ndarray
    labeled_labels: np.ndarray
    unlabeled_features: np.ndarray
    auxiliary: AuxiliarySelection
    backbone: PretrainedBackbone
    scads: Optional[ScadsBundle] = None
    seed: int = 0

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def class_names(self) -> List[str]:
        return [c.name for c in self.classes]

    def validate(self) -> None:
        if len(self.labeled_features) != len(self.labeled_labels):
            raise ValueError("labeled features/labels length mismatch")
        if len(self.labeled_features) == 0:
            raise ValueError("modules require at least one labeled example")
        if self.labeled_labels.max() >= self.num_classes:
            raise ValueError("labeled labels exceed the number of classes")


class Taglet:
    """A trained classifier over the target label space."""

    def __init__(self, name: str):
        self.name = name

    def predict_proba(self, features: np.ndarray,
                      batch_size: Optional[int] = 256) -> np.ndarray:
        """Return an ``(n, C)`` matrix of class probabilities.

        ``batch_size=None`` runs the whole array as one batch (the ensemble
        uses this for pseudo-label inference).
        """
        raise NotImplementedError

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        if len(features) == 0:
            return 0.0
        return float((self.predict(features) == np.asarray(labels)).mean())


class ModelTaglet(Taglet):
    """A taglet backed by a :class:`ClassificationModel`."""

    def __init__(self, name: str, model: ClassificationModel):
        super().__init__(name)
        self.model = model

    def predict_proba(self, features: np.ndarray,
                      batch_size: Optional[int] = 256) -> np.ndarray:
        return predict_proba(self.model, features, batch_size=batch_size)


class TrainingModule:
    """A learning method tailored to exploit SCADS; produces a taglet."""

    name = "module"

    def train(self, data: ModuleInput) -> Taglet:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"
