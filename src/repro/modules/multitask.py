"""The Multi-task module (paper Section 3.2.2).

The module jointly learns the target task on ``X`` and an auxiliary
classification task on the selected auxiliary data ``R``, sharing the
encoder and optimizing ``L_joint = L_target + lambda * L_aux`` (Eq. 3–5).
The auxiliary task regularizes the shared representation, which matters most
when the target labels are scarce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backbones.backbone import ClassificationModel
from ..nn import functional as F
from ..nn.data import ArrayDataset, DataLoader
from ..nn.modules import Linear
from ..nn.optim import SGD
from ..nn.schedulers import MultiStepLR
from ..nn.tensor import Tensor
from ..nn.training import TrainConfig, iterate_forever, train_classifier
from ..nn.transforms import weak_augment
from .base import ModelTaglet, ModuleInput, Taglet, TrainingModule

__all__ = ["MultiTaskConfig", "MultiTaskModule"]


@dataclass
class MultiTaskConfig:
    """Hyperparameters of joint training (Appendix A.3, scaled down)."""

    epochs: int = 8
    batch_size: int = 64
    lr: float = 0.02
    momentum: float = 0.9
    #: weight of the auxiliary loss (lambda in Eq. 3)
    aux_loss_weight: float = 1.0
    use_augmentation: bool = True
    #: LR decay milestones expressed as fractions of total epochs
    milestone_fractions: tuple = (0.5, 0.75)


class MultiTaskModule(TrainingModule):
    """Jointly learn the target task and a SCADS-derived auxiliary task."""

    name = "multitask"

    def __init__(self, config: Optional[MultiTaskConfig] = None):
        self.config = config or MultiTaskConfig()

    def train(self, data: ModuleInput) -> Taglet:
        data.validate()
        config = self.config
        rng = np.random.default_rng(data.seed)
        auxiliary = data.auxiliary

        model = ClassificationModel.from_backbone(data.backbone,
                                                  num_classes=data.num_classes,
                                                  rng=rng)
        if auxiliary is None or auxiliary.is_empty():
            # Without auxiliary data the module degenerates to fine-tuning.
            fallback = TrainConfig(epochs=config.epochs * 3, batch_size=config.batch_size,
                                   lr=config.lr, momentum=config.momentum,
                                   augment=weak_augment() if config.use_augmentation else None,
                                   seed=data.seed)
            train_classifier(model, data.labeled_features, data.labeled_labels, fallback)
            return ModelTaglet(self.name, model)

        aux_head = Linear(model.encoder.feature_dim, auxiliary.num_aux_classes, rng=rng)
        augment = weak_augment() if config.use_augmentation else None

        target_loader = DataLoader(
            ArrayDataset(data.labeled_features, data.labeled_labels),
            batch_size=min(config.batch_size, len(data.labeled_features)),
            shuffle=True, rng=np.random.default_rng(data.seed))
        aux_loader = DataLoader(
            ArrayDataset(auxiliary.features, auxiliary.labels),
            batch_size=config.batch_size, shuffle=True,
            rng=np.random.default_rng(data.seed + 1))
        aux_stream = iterate_forever(aux_loader)

        parameters = model.parameters() + aux_head.parameters()
        optimizer = SGD(parameters, lr=config.lr, momentum=config.momentum)
        steps_per_epoch = max(len(aux_loader), len(target_loader), 1)
        total_steps = config.epochs * steps_per_epoch
        milestones = [int(total_steps * f) for f in config.milestone_fractions]
        scheduler = MultiStepLR(optimizer, milestones=milestones, gamma=0.1)

        model.train()
        aux_head.train()
        for _ in range(config.epochs):
            target_stream = iterate_forever(target_loader)
            for _ in range(steps_per_epoch):
                target_x, target_y = next(target_stream)
                aux_x, aux_y = next(aux_stream)
                if augment is not None:
                    target_x = augment(target_x, rng)
                    aux_x = augment(aux_x, rng)
                scheduler.step()

                target_logits = model(Tensor(target_x))
                target_loss = F.cross_entropy(target_logits, target_y)
                aux_features = model.encoder(Tensor(aux_x))
                aux_logits = aux_head(aux_features)
                aux_loss = F.cross_entropy(aux_logits, aux_y)
                joint_loss = target_loss + config.aux_loss_weight * aux_loss

                optimizer.zero_grad()
                joint_loss.backward()
                optimizer.step()
        model.eval()
        return ModelTaglet(self.name, model)
