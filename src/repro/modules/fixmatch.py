"""The FixMatch module (paper Section 3.2.3).

FixMatch combines pseudo labeling and consistency regularization: a weakly
augmented view of each unlabeled example produces a pseudo label (when the
model is confident above a threshold ``tau``), and the model is trained to
predict that label on a strongly augmented view.  Under very limited labels
this suffers from confirmation bias, so — as in the paper — the module first
fine-tunes the backbone on the SCADS-selected auxiliary data ``R`` before
running FixMatch on the target task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backbones.backbone import ClassificationModel
from ..nn import functional as F
from ..nn.data import ArrayDataset, DataLoader, UnlabeledDataset
from ..nn.optim import SGD
from ..nn.schedulers import FixMatchCosineLR
from ..nn.tensor import Tensor, inference_mode
from ..nn.training import TrainConfig, iterate_forever, train_classifier
from ..nn.transforms import strong_augment, weak_augment
from .base import ModelTaglet, ModuleInput, Taglet, TrainingModule

__all__ = ["FixMatchConfig", "FixMatchModule"]


@dataclass
class FixMatchConfig:
    """Hyperparameters of auxiliary pretraining + FixMatch training."""

    #: auxiliary fine-tuning phase (5 epochs in the paper)
    aux_epochs: int = 12
    aux_lr: float = 0.02
    aux_batch_size: int = 128
    #: supervised warm-up of the (fresh) target head before consistency training,
    #: which limits early confirmation bias when labels are very scarce
    head_warmup_epochs: int = 20
    head_warmup_lr: float = 0.01
    #: FixMatch phase
    epochs: int = 10
    batch_size: int = 64
    unlabeled_batch_size: int = 128
    lr: float = 0.01
    momentum: float = 0.9
    nesterov: bool = True
    #: confidence threshold tau for accepting a pseudo label
    confidence_threshold: float = 0.8
    #: weight of the unlabeled consistency loss
    unlabeled_loss_weight: float = 1.0
    use_aux_pretraining: bool = True


class FixMatchModule(TrainingModule):
    """Semi-supervised consistency training, warm-started from auxiliary data."""

    name = "fixmatch"

    def __init__(self, config: Optional[FixMatchConfig] = None):
        self.config = config or FixMatchConfig()

    def train(self, data: ModuleInput) -> Taglet:
        data.validate()
        config = self.config
        rng = np.random.default_rng(data.seed)
        auxiliary = data.auxiliary

        # ------------------------------------------------------------------ #
        # Phase 1: fine-tune the backbone on the selected auxiliary data.
        # ------------------------------------------------------------------ #
        if (config.use_aux_pretraining and auxiliary is not None
                and not auxiliary.is_empty()):
            model = ClassificationModel.from_backbone(
                data.backbone, num_classes=auxiliary.num_aux_classes, rng=rng)
            aux_config = TrainConfig(epochs=config.aux_epochs,
                                     batch_size=config.aux_batch_size,
                                     lr=config.aux_lr, momentum=config.momentum,
                                     augment=weak_augment(), seed=data.seed)
            train_classifier(model, auxiliary.features, auxiliary.labels, aux_config)
            model.replace_head(data.num_classes, rng=rng)
        else:
            model = ClassificationModel.from_backbone(
                data.backbone, num_classes=data.num_classes, rng=rng)

        # ------------------------------------------------------------------ #
        # Phase 2: supervised warm-up of the target head on the labeled shots.
        # ------------------------------------------------------------------ #
        if config.head_warmup_epochs > 0:
            warmup = TrainConfig(epochs=config.head_warmup_epochs,
                                 batch_size=config.batch_size,
                                 lr=config.head_warmup_lr, momentum=config.momentum,
                                 augment=weak_augment(), seed=data.seed)
            train_classifier(model, data.labeled_features, data.labeled_labels, warmup)

        # ------------------------------------------------------------------ #
        # Phase 3: FixMatch on labeled + unlabeled target data.
        # ------------------------------------------------------------------ #
        weak = weak_augment()
        strong = strong_augment()
        labeled_loader = DataLoader(
            ArrayDataset(data.labeled_features, data.labeled_labels),
            batch_size=min(config.batch_size, len(data.labeled_features)),
            shuffle=True, rng=np.random.default_rng(data.seed))
        has_unlabeled = len(data.unlabeled_features) > 0
        if has_unlabeled:
            unlabeled_loader = DataLoader(
                UnlabeledDataset(data.unlabeled_features),
                batch_size=min(config.unlabeled_batch_size,
                               len(data.unlabeled_features)),
                shuffle=True, rng=np.random.default_rng(data.seed + 1))
            unlabeled_stream = iterate_forever(unlabeled_loader)
            steps_per_epoch = max(len(unlabeled_loader), len(labeled_loader), 1)
        else:
            unlabeled_stream = None
            steps_per_epoch = max(len(labeled_loader), 1)

        optimizer = SGD(model.parameters(), lr=config.lr,
                        momentum=config.momentum, nesterov=config.nesterov)
        scheduler = FixMatchCosineLR(optimizer,
                                     total_steps=config.epochs * steps_per_epoch)

        model.train()
        for _ in range(config.epochs):
            labeled_stream = iterate_forever(labeled_loader)
            for _ in range(steps_per_epoch):
                labeled_x, labeled_y = next(labeled_stream)
                scheduler.step()

                logits = model(Tensor(weak(labeled_x, rng)))
                loss = F.cross_entropy(logits, labeled_y)

                if unlabeled_stream is not None:
                    unlabeled_x = next(unlabeled_stream)
                    # Pseudo labels come from the weakly augmented view with no
                    # gradient flow, as in the original algorithm.
                    model.eval()
                    with inference_mode():
                        weak_logits = model(Tensor(weak(unlabeled_x, rng))).data
                    model.train()
                    weak_probs = _softmax(weak_logits)
                    confidence = weak_probs.max(axis=1)
                    pseudo_labels = weak_probs.argmax(axis=1)
                    mask = confidence >= config.confidence_threshold
                    if mask.any():
                        strong_logits = model(Tensor(strong(unlabeled_x[mask], rng)))
                        unlabeled_loss = F.cross_entropy(strong_logits,
                                                         pseudo_labels[mask])
                        loss = loss + config.unlabeled_loss_weight * unlabeled_loss

                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        model.eval()
        return ModelTaglet(self.name, model)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
