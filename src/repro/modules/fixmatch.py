"""The FixMatch module (paper Section 3.2.3).

FixMatch combines pseudo labeling and consistency regularization: a weakly
augmented view of each unlabeled example produces a pseudo label (when the
model is confident above a threshold ``tau``), and the model is trained to
predict that label on a strongly augmented view.  Under very limited labels
this suffers from confirmation bias, so — as in the paper — the module first
fine-tunes the backbone on the SCADS-selected auxiliary data ``R`` before
running FixMatch on the target task.

The consistency step expresses the confidence threshold as per-sample
weights over the *full* strong batch (weight zero = pseudo label rejected,
which zeroes that row's loss and gradient exactly) instead of a row
selection, so the step's tensor shapes are static and the whole two-view
update — shared model applied to both views, two losses, weighted sum —
compiles through the graph replay executor (:mod:`repro.nn.replay`) and
replays as raw NumPy kernels, bit-identical to running the same step
eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backbones.backbone import ClassificationModel
from ..nn import functional as F
from ..nn.data import ArrayDataset, DataLoader, UnlabeledDataset
from ..nn.optim import SGD
from ..nn.replay import GraphReplay
from ..nn.schedulers import FixMatchCosineLR
from ..nn.tensor import get_default_dtype
from ..nn.training import TrainConfig, iterate_forever, train_classifier
from ..nn.transforms import strong_augment, weak_augment
from .base import ModelTaglet, ModuleInput, Taglet, TrainingModule

__all__ = ["FixMatchConfig", "FixMatchModule", "consistency_step"]


@dataclass
class FixMatchConfig:
    """Hyperparameters of auxiliary pretraining + FixMatch training."""

    #: auxiliary fine-tuning phase (5 epochs in the paper)
    aux_epochs: int = 12
    aux_lr: float = 0.02
    aux_batch_size: int = 128
    #: supervised warm-up of the (fresh) target head before consistency training,
    #: which limits early confirmation bias when labels are very scarce
    head_warmup_epochs: int = 20
    head_warmup_lr: float = 0.01
    #: FixMatch phase
    epochs: int = 10
    batch_size: int = 64
    unlabeled_batch_size: int = 128
    lr: float = 0.01
    momentum: float = 0.9
    nesterov: bool = True
    #: confidence threshold tau for accepting a pseudo label
    confidence_threshold: float = 0.8
    #: weight of the unlabeled consistency loss
    unlabeled_loss_weight: float = 1.0
    use_aux_pretraining: bool = True
    #: graph capture/replay executor for every training phase (auxiliary
    #: fine-tuning, head warm-up, and the two-view consistency step):
    #: ``None`` follows the engine-wide flag, ``True``/``False`` force it —
    #: mirroring ``TrainConfig.replay``
    replay: Optional[bool] = None


def consistency_step(stepper, model, weak_labeled, labeled_y, weak_unlabeled,
                     strong_unlabeled, cons_weight, threshold, dtype):
    """One full FixMatch consistency step through the replay executor.

    Pseudo-labels the weakly augmented unlabeled view with a compiled
    inference forward, converts the confidence threshold into per-sample
    weights, and runs the two-view update (:func:`_two_view_step`) as one
    compiled DAG step.  The single driver shared by the training loop in
    :class:`FixMatchModule` and by the replay benchmarks/smoke checks, so
    what they measure is exactly what the pipeline executes.
    """
    model.eval()
    weak_logits = stepper.forward(weak_unlabeled)
    model.train()
    weak_probs = _softmax(weak_logits)
    mask_w = (weak_probs.max(axis=1) >= threshold).astype(dtype)
    return stepper.step_fn(_two_view_step, {
        "weak_x": weak_labeled,
        "labels": labeled_y,
        "strong_x": strong_unlabeled,
        "pseudo": weak_probs.argmax(axis=1),
        "mask_w": mask_w,
        "cons_w": cons_weight,
    })


def _two_view_step(model, batch):
    """One FixMatch consistency step as a replayable step function.

    Supervised cross entropy on the weakly augmented labeled view plus the
    weighted consistency loss on the strongly augmented unlabeled view,
    where the confidence mask enters as per-sample weights (zero weight =
    pseudo label rejected).  Shapes are static across steps, so the graph
    replay executor compiles this once per batch signature and replays raw
    kernels for the rest of training (``tests/nn/test_replay_dag.py``
    asserts the replays are bit-identical to running this function
    eagerly).
    """
    sup_loss = F.cross_entropy(model(batch["weak_x"]), batch["labels"])
    strong_logits = model(batch["strong_x"])
    cons_loss = F.cross_entropy(strong_logits, batch["pseudo"],
                                sample_weights=batch["mask_w"].data)
    return sup_loss + batch["cons_w"] * cons_loss


class FixMatchModule(TrainingModule):
    """Semi-supervised consistency training, warm-started from auxiliary data."""

    name = "fixmatch"

    def __init__(self, config: Optional[FixMatchConfig] = None):
        self.config = config or FixMatchConfig()

    def train(self, data: ModuleInput) -> Taglet:
        data.validate()
        config = self.config
        rng = np.random.default_rng(data.seed)
        auxiliary = data.auxiliary

        # ------------------------------------------------------------------ #
        # Phase 1: fine-tune the backbone on the selected auxiliary data.
        # ------------------------------------------------------------------ #
        if (config.use_aux_pretraining and auxiliary is not None
                and not auxiliary.is_empty()):
            model = ClassificationModel.from_backbone(
                data.backbone, num_classes=auxiliary.num_aux_classes, rng=rng)
            aux_config = TrainConfig(epochs=config.aux_epochs,
                                     batch_size=config.aux_batch_size,
                                     lr=config.aux_lr, momentum=config.momentum,
                                     augment=weak_augment(), seed=data.seed,
                                     replay=config.replay)
            train_classifier(model, auxiliary.features, auxiliary.labels, aux_config)
            model.replace_head(data.num_classes, rng=rng)
        else:
            model = ClassificationModel.from_backbone(
                data.backbone, num_classes=data.num_classes, rng=rng)

        # ------------------------------------------------------------------ #
        # Phase 2: supervised warm-up of the target head on the labeled shots.
        # ------------------------------------------------------------------ #
        if config.head_warmup_epochs > 0:
            warmup = TrainConfig(epochs=config.head_warmup_epochs,
                                 batch_size=config.batch_size,
                                 lr=config.head_warmup_lr, momentum=config.momentum,
                                 augment=weak_augment(), seed=data.seed,
                                 replay=config.replay)
            train_classifier(model, data.labeled_features, data.labeled_labels, warmup)

        # ------------------------------------------------------------------ #
        # Phase 3: FixMatch on labeled + unlabeled target data.
        # ------------------------------------------------------------------ #
        weak = weak_augment()
        strong = strong_augment()
        labeled_loader = DataLoader(
            ArrayDataset(data.labeled_features, data.labeled_labels),
            batch_size=min(config.batch_size, len(data.labeled_features)),
            shuffle=True, rng=np.random.default_rng(data.seed))
        has_unlabeled = len(data.unlabeled_features) > 0
        if has_unlabeled:
            unlabeled_loader = DataLoader(
                UnlabeledDataset(data.unlabeled_features),
                batch_size=min(config.unlabeled_batch_size,
                               len(data.unlabeled_features)),
                shuffle=True, rng=np.random.default_rng(data.seed + 1))
            unlabeled_stream = iterate_forever(unlabeled_loader)
            steps_per_epoch = max(len(unlabeled_loader), len(labeled_loader), 1)
        else:
            unlabeled_stream = None
            steps_per_epoch = max(len(labeled_loader), 1)

        optimizer = SGD(model.parameters(), lr=config.lr,
                        momentum=config.momentum, nesterov=config.nesterov)
        scheduler = FixMatchCosineLR(optimizer,
                                     total_steps=config.epochs * steps_per_epoch)

        # The two-view consistency step runs through the graph replay
        # executor: the pseudo-label view replays a compiled inference
        # forward, and the supervised + consistency update replays
        # ``_two_view_step`` as one compiled DAG (two forwards through the
        # shared model, two losses, weighted sum).  The confidence mask is a
        # per-sample *weight* on the full strong batch rather than a row
        # selection, so batch shapes — and therefore the compiled plan —
        # stay static across steps; rejected pseudo labels get weight zero,
        # which zeroes their gradient exactly.
        dtype = get_default_dtype()
        cons_weight = np.asarray(config.unlabeled_loss_weight, dtype=dtype)
        stepper = GraphReplay(model, optimizer, enabled=config.replay)

        model.train()
        for _ in range(config.epochs):
            labeled_stream = iterate_forever(labeled_loader)
            for _ in range(steps_per_epoch):
                labeled_x, labeled_y = next(labeled_stream)
                scheduler.step()
                weak_labeled = weak(labeled_x, rng)

                if unlabeled_stream is None:
                    stepper.step(weak_labeled, labeled_y)
                    continue

                unlabeled_x = next(unlabeled_stream)
                # Pseudo labels come from the weakly augmented view with no
                # gradient flow, as in the original algorithm.
                consistency_step(stepper, model, weak_labeled, labeled_y,
                                 weak(unlabeled_x, rng),
                                 strong(unlabeled_x, rng), cons_weight,
                                 config.confidence_threshold, dtype)
        model.eval()
        return ModelTaglet(self.name, model)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
