"""The Transfer module (paper Section 3.2.1).

Sequential fine-tuning: the pretrained backbone is first fine-tuned on the
selected auxiliary data ``R`` (the *intermediate phase*, Eq. 1) and then on
the limited labeled target data ``X`` (Eq. 2).  The intermediate phase moves
the encoder's representation toward the target task's visual neighbourhood,
which is what makes the module effective in the 1-shot and 5-shot regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..backbones.backbone import ClassificationModel
from ..nn.training import TrainConfig, train_classifier
from ..nn.transforms import weak_augment
from .base import ModelTaglet, ModuleInput, Taglet, TrainingModule

__all__ = ["TransferConfig", "TransferModule"]


@dataclass
class TransferConfig:
    """Hyperparameters of the two fine-tuning phases (Appendix A.3, scaled down)."""

    aux_epochs: int = 12
    aux_lr: float = 0.02
    aux_batch_size: int = 128
    target_epochs: int = 30
    target_lr: float = 0.01
    target_batch_size: int = 32
    momentum: float = 0.9
    use_augmentation: bool = True

    def aux_train_config(self, seed: int) -> TrainConfig:
        return TrainConfig(epochs=self.aux_epochs, batch_size=self.aux_batch_size,
                           lr=self.aux_lr, momentum=self.momentum,
                           augment=weak_augment() if self.use_augmentation else None,
                           seed=seed)

    def target_train_config(self, seed: int) -> TrainConfig:
        return TrainConfig(epochs=self.target_epochs, batch_size=self.target_batch_size,
                           lr=self.target_lr, momentum=self.momentum,
                           scheduler="multistep",
                           milestones=(self.target_epochs * 2 // 3,
                                       self.target_epochs * 5 // 6),
                           augment=weak_augment() if self.use_augmentation else None,
                           seed=seed)


class TransferModule(TrainingModule):
    """Fine-tune on selected auxiliary data, then on the labeled target data."""

    name = "transfer"

    def __init__(self, config: Optional[TransferConfig] = None):
        self.config = config or TransferConfig()

    def train(self, data: ModuleInput) -> Taglet:
        data.validate()
        rng = np.random.default_rng(data.seed)
        auxiliary = data.auxiliary

        if auxiliary is not None and not auxiliary.is_empty():
            # Intermediate phase: fine-tune the backbone on R (Eq. 1).
            model = ClassificationModel.from_backbone(
                data.backbone, num_classes=auxiliary.num_aux_classes, rng=rng)
            train_classifier(model, auxiliary.features, auxiliary.labels,
                             self.config.aux_train_config(data.seed))
            # Target phase: swap the head and fine-tune on X (Eq. 2).
            model.replace_head(data.num_classes, rng=rng)
        else:
            # No auxiliary data available: plain fine-tuning of the backbone.
            model = ClassificationModel.from_backbone(
                data.backbone, num_classes=data.num_classes, rng=rng)

        train_classifier(model, data.labeled_features, data.labeled_labels,
                         self.config.target_train_config(data.seed))
        return ModelTaglet(self.name, model)
