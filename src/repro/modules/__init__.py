"""``repro.modules`` — the training modules that produce taglets.

Four modules, as in the paper: Transfer (sequential fine-tuning on auxiliary
then target data), Multi-task (joint training), FixMatch (semi-supervised
consistency training warm-started from auxiliary data), and ZSL-KG
(zero-shot classification from the knowledge graph).
"""

from .base import ModelTaglet, ModuleInput, Taglet, TrainingModule
from .fixmatch import FixMatchConfig, FixMatchModule
from .multitask import MultiTaskConfig, MultiTaskModule
from .transfer import TransferConfig, TransferModule
from .zsl_kg import GraphClassEncoder, ZslKgConfig, ZslKgModule, ZslKgTaglet

__all__ = [
    "ModuleInput", "Taglet", "ModelTaglet", "TrainingModule",
    "TransferModule", "TransferConfig",
    "MultiTaskModule", "MultiTaskConfig",
    "FixMatchModule", "FixMatchConfig",
    "ZslKgModule", "ZslKgConfig", "ZslKgTaglet", "GraphClassEncoder",
    "DEFAULT_MODULES",
]

#: The default module set of the paper's main experiments.
DEFAULT_MODULES = ("multitask", "transfer", "fixmatch", "zsl_kg")
