"""The distillation stage: training the servable end model (paper Section 3.3).

The taglet ensemble pseudo-labels the unlabeled target data; the end model is
then a single backbone + head fine-tuned on the union of pseudo-labeled and
labeled data with the soft cross-entropy loss of Eq. 7.  Only this model is
served in production, which is why its size is that of one backbone rather
than the whole ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..backbones.backbone import ClassificationModel, PretrainedBackbone
from ..modules.base import ModelTaglet
from ..nn import functional as F
from ..nn.tensor import get_default_dtype
from ..nn.training import TrainConfig, train_soft_classifier
from ..nn.transforms import weak_augment

__all__ = ["EndModelConfig", "EndModel", "train_end_model"]


@dataclass
class EndModelConfig:
    """End-model training recipe (Appendix A.3, scaled down)."""

    epochs: int = 25
    batch_size: int = 128
    lr: float = 3e-3
    optimizer: str = "adam"
    weight_decay: float = 1e-4
    use_augmentation: bool = True
    #: if True the pseudo labels are hardened to one-hot before training
    #: (an ablation of the soft-label design choice; the paper uses soft labels)
    harden_pseudo_labels: bool = False


class EndModel(ModelTaglet):
    """The servable distilled classifier.

    This is the artifact the whole pipeline exists to produce; the
    deployment layer (:mod:`repro.serve`) exports it — via the properties
    below — as a versioned on-disk artifact and serves it behind the
    micro-batching engine.
    """

    def __init__(self, model: ClassificationModel):
        super().__init__("end_model", model)

    def num_parameters(self) -> int:
        return self.model.num_parameters()

    @property
    def backbone_spec(self):
        """Architecture/provenance of the underlying encoder (exported to
        the servable manifest so the model can be rebuilt without code)."""
        return self.model.encoder.spec

    @property
    def dtype(self) -> np.dtype:
        """The dtype the end model was trained under."""
        return self.model.head.weight.data.dtype

    def state_dict(self):
        """The weights a servable artifact persists."""
        return self.model.state_dict()


def train_end_model(backbone: PretrainedBackbone,
                    labeled_features: np.ndarray, labeled_labels: np.ndarray,
                    pseudo_features: np.ndarray, pseudo_probabilities: np.ndarray,
                    num_classes: int,
                    config: Optional[EndModelConfig] = None,
                    seed: int = 0) -> EndModel:
    """Distill the ensemble's knowledge into a single servable model.

    ``pseudo_features`` / ``pseudo_probabilities`` are the unlabeled examples
    and their soft pseudo labels from the taglet ensemble; labeled examples
    are included with one-hot targets, so the loss is exactly Eq. 7 over
    ``P ∪ X``.
    """
    config = config or EndModelConfig()
    labeled_features = np.asarray(labeled_features, dtype=get_default_dtype())
    labeled_labels = np.asarray(labeled_labels, dtype=np.int64)
    pseudo_features = np.asarray(pseudo_features, dtype=get_default_dtype())
    pseudo_probabilities = np.asarray(pseudo_probabilities, dtype=get_default_dtype())

    if len(labeled_features) == 0:
        raise ValueError("the end model requires labeled data")
    if len(pseudo_features) != len(pseudo_probabilities):
        raise ValueError("pseudo features/probabilities length mismatch")

    if config.harden_pseudo_labels and len(pseudo_probabilities):
        hard = pseudo_probabilities.argmax(axis=1)
        pseudo_probabilities = F.one_hot(hard, num_classes)

    labeled_soft = F.one_hot(labeled_labels, num_classes)
    if len(pseudo_features):
        features = np.concatenate([pseudo_features, labeled_features])
        soft_targets = np.concatenate([pseudo_probabilities, labeled_soft])
    else:
        features, soft_targets = labeled_features, labeled_soft

    rng = np.random.default_rng(seed)
    model = ClassificationModel.from_backbone(backbone, num_classes=num_classes,
                                              rng=rng)
    train_config = TrainConfig(
        epochs=config.epochs, batch_size=config.batch_size, lr=config.lr,
        optimizer=config.optimizer, weight_decay=config.weight_decay,
        scheduler="multistep", milestones=(config.epochs * 2 // 3,),
        augment=weak_augment() if config.use_augmentation else None,
        seed=seed)
    train_soft_classifier(model, features, soft_targets, train_config)
    return EndModel(model)
