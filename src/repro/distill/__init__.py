"""``repro.distill`` — training the single servable end model."""

from .end_model import EndModel, EndModelConfig, train_end_model

__all__ = ["EndModel", "EndModelConfig", "train_end_model"]
