"""Tests for the workspace assembly."""

import numpy as np
import pytest

from repro.workspace import WorkspaceSpec, build_workspace


class TestWorkspace:
    def test_tiny_workspace_is_complete(self, tiny_workspace):
        assert len(tiny_workspace.graph) > 0
        assert tiny_workspace.scads.scads.num_images() > 0
        assert set(tiny_workspace.available_datasets()) == {
            "fmd", "officehome_product", "officehome_clipart", "grocery_store",
            "cifar_demo"}

    def test_shared_embeddings_between_world_and_scads(self, tiny_workspace):
        """The world's semantic component and SCADS embeddings come from the
        same concept vectors (the key coupling for the reproduction)."""
        assert "plastic" in tiny_workspace.text_embeddings
        assert "plastic" in tiny_workspace.scads.embedding

    def test_oov_grocery_classes_aligned_on_demand(self, tiny_workspace):
        tiny_workspace.dataset("grocery_store")
        assert "oatghurt" in tiny_workspace.scads.scads.graph
        assert "oatghurt" in tiny_workspace.scads.embedding

    def test_make_task_split_shapes(self, tiny_workspace):
        split = tiny_workspace.make_task_split("officehome_product", shots=1,
                                               split_seed=1)
        assert split.shots == 1
        assert split.split_seed == 1
        assert len(split.labeled_features) == 65

    def test_build_workspace_scale_validation(self):
        with pytest.raises(ValueError):
            build_workspace(scale="gigantic")

    def test_spec_presets(self):
        small = WorkspaceSpec.small(seed=1)
        full = WorkspaceSpec.full(seed=1)
        assert full.graph.num_filler_concepts > small.graph.num_filler_concepts
        assert small.seed == 1
