"""Tests for the visual domain shifts."""

import numpy as np
import pytest

from repro.synth import (ClipartDomain, NaturalDomain, ProductDomain,
                         SmartphoneDomain, build_domain, DOMAIN_NAMES)


class TestDomains:
    def test_natural_is_identity(self):
        images = np.random.default_rng(0).normal(size=(5, 8))
        np.testing.assert_allclose(NaturalDomain()(images), images)

    def test_product_is_affine(self):
        domain = ProductDomain(dim=8, seed=0)
        images = np.random.default_rng(0).normal(size=(4, 8))
        out = domain(images)
        # Affine map: difference of outputs equals gain * difference of inputs.
        np.testing.assert_allclose(out[0] - out[1], domain.gain * (images[0] - images[1]))

    def test_clipart_mixes_features(self):
        domain = ClipartDomain(dim=8, seed=1)
        images = np.zeros((1, 8))
        images[0, 0] = 1.0
        out = domain(images) - domain(np.zeros((1, 8)))
        # A single active feature spreads across several output features.
        assert (np.abs(out) > 1e-6).sum() > 1

    def test_clipart_is_stronger_shift_than_product(self):
        rng = np.random.default_rng(0)
        images = rng.normal(size=(50, 16))
        product_delta = np.linalg.norm(ProductDomain(16)(images) - images, axis=1).mean()
        clipart_delta = np.linalg.norm(ClipartDomain(16)(images) - images, axis=1).mean()
        assert clipart_delta > product_delta

    def test_smartphone_smooths(self):
        domain = SmartphoneDomain(dim=16, seed=0, window=3, gain=1.0)
        spiky = np.zeros((1, 16))
        spiky[0, 8] = 3.0
        out = domain(spiky) - domain(np.zeros((1, 16)))
        assert out[0, 8] < 3.0
        assert out[0, 7] > 0.0

    def test_determinism(self):
        images = np.random.default_rng(1).normal(size=(3, 8))
        a = ClipartDomain(8, seed=5)(images)
        b = ClipartDomain(8, seed=5)(images)
        np.testing.assert_allclose(a, b)

    def test_build_domain_factory(self):
        for name in DOMAIN_NAMES:
            domain = build_domain(name, dim=8)
            assert domain(np.zeros((2, 8))).shape == (2, 8)
        with pytest.raises(ValueError):
            build_domain("oil_painting", dim=8)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            NaturalDomain()(np.zeros(8))
        with pytest.raises(ValueError):
            SmartphoneDomain(dim=8, window=0)
