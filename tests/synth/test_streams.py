"""Tests for arrival schedules and streaming-pool helpers."""

import numpy as np
import pytest

from repro.synth import ArrivalSchedule, chunk_indices, subsample_indices


class TestArrivalSchedule:
    def test_phases_partition_all_classes(self):
        schedule = ArrivalSchedule(num_phases=3, seed=0)
        phases = schedule.phases(10)
        assert len(phases) == 3
        seen = np.concatenate(phases)
        assert sorted(seen.tolist()) == list(range(10))
        lengths = {len(phase) for phase in phases}
        assert lengths <= {3, 4}  # near-even split

    def test_phases_sorted_within_phase(self):
        for phase in ArrivalSchedule(num_phases=4, seed=1).phases(12):
            assert np.all(np.diff(phase) > 0)

    def test_cumulative_grows_to_everything(self):
        schedule = ArrivalSchedule(num_phases=3, seed=2)
        cumulative = schedule.cumulative(9)
        assert len(cumulative) == 3
        for earlier, later in zip(cumulative, cumulative[1:]):
            assert set(earlier.tolist()) < set(later.tolist())
        assert cumulative[-1].tolist() == list(range(9))

    def test_deterministic_by_seed(self):
        a = ArrivalSchedule(num_phases=3, seed=5).phases(10)
        b = ArrivalSchedule(num_phases=3, seed=5).phases(10)
        c = ArrivalSchedule(num_phases=3, seed=6).phases(10)
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)
        assert any(not np.array_equal(left, right)
                   for left, right in zip(a, c))

    def test_too_many_phases_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSchedule(num_phases=11).phases(10)

    def test_nonpositive_phases_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSchedule(num_phases=0).phases(5)


class TestChunkIndices:
    def test_chunks_partition_range(self):
        chunks = chunk_indices(20, num_chunks=3, seed=0)
        assert len(chunks) == 3
        seen = np.concatenate(chunks)
        assert sorted(seen.tolist()) == list(range(20))

    def test_deterministic(self):
        a = chunk_indices(15, 4, seed=3)
        b = chunk_indices(15, 4, seed=3)
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)


class TestSubsampleIndices:
    def test_fraction_keeps_expected_count(self):
        kept = subsample_indices(100, fraction=0.25, seed=0)
        assert len(kept) == 25
        assert np.all(np.diff(kept) > 0)  # sorted, unique

    def test_full_fraction_keeps_everything(self):
        assert subsample_indices(7, fraction=1.0).tolist() == list(range(7))

    def test_tiny_fraction_keeps_at_least_one(self):
        assert len(subsample_indices(50, fraction=0.001)) == 1

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            subsample_indices(10, fraction=0.0)
        with pytest.raises(ValueError):
            subsample_indices(10, fraction=1.5)
