"""Tests for the synthetic visual world."""

import numpy as np
import pytest

from repro.kg import GraphSpec, KnowledgeGraph, Relation, build_concept_graph
from repro.synth import VisualWorld, WorldSpec


@pytest.fixture(scope="module")
def graph():
    return build_concept_graph(GraphSpec(num_filler_concepts=100, seed=0))


@pytest.fixture(scope="module")
def world(graph):
    return VisualWorld(graph, WorldSpec(image_dim=16, seed=0))


class TestPrototypes:
    def test_every_concept_has_a_prototype(self, graph, world):
        for concept in graph.concepts[:50]:
            assert world.prototype(concept).shape == (16,)

    def test_unknown_concept_raises(self, world):
        with pytest.raises(KeyError):
            world.prototype("not_a_concept")

    def test_semantic_relatedness_implies_visual_relatedness(self, world):
        """The core SCADS assumption: graph-close concepts look alike."""
        close = world.prototype_distance("plastic", "cling_film")
        far = np.mean([world.prototype_distance("plastic", f"filler_{i:05d}")
                       for i in range(20)])
        assert close < far

    def test_siblings_closer_than_cross_domain(self, world):
        sibling = world.prototype_distance("plastic", "stone")
        cross = world.prototype_distance("plastic", "keyboard")
        assert sibling < cross * 1.5  # materials are at least comparably close

    def test_deterministic_given_seed(self, graph):
        a = VisualWorld(graph, WorldSpec(image_dim=8, seed=3))
        b = VisualWorld(graph, WorldSpec(image_dim=8, seed=3))
        np.testing.assert_allclose(a.prototype("plastic"), b.prototype("plastic"))

    def test_contains(self, world):
        assert "plastic" in world
        assert "missing_concept" not in world


class TestSampling:
    def test_sample_shapes(self, world):
        images = world.sample_images("plastic", 7, rng=np.random.default_rng(0))
        assert images.shape == (7, 16)
        assert world.sample_images("plastic", 0).shape == (0, 16)

    def test_negative_count_rejected(self, world):
        with pytest.raises(ValueError):
            world.sample_images("plastic", -1)

    def test_images_cluster_around_prototype(self, world):
        rng = np.random.default_rng(0)
        own = world.sample_images("plastic", 50, rng=rng)
        other_proto = world.prototype("keyboard")
        own_proto = world.prototype("plastic")
        dist_own = np.linalg.norm(own - own_proto, axis=1).mean()
        dist_other = np.linalg.norm(own - other_proto, axis=1).mean()
        assert dist_own < dist_other

    def test_domain_changes_appearance(self, world):
        rng_state = np.random.default_rng(0)
        natural = world.sample_images("plastic", 5, domain="natural", rng=rng_state)
        rng_state = np.random.default_rng(0)
        clipart = world.sample_images("plastic", 5, domain="clipart", rng=rng_state)
        assert not np.allclose(natural, clipart)

    def test_domain_cached_and_consistent(self, world):
        assert world.domain("clipart") is world.domain("clipart")

    def test_sample_dataset(self, world):
        features, labels = world.sample_dataset({"plastic": 0, "stone": 1}, 4,
                                                rng=np.random.default_rng(0))
        assert features.shape == (8, 16)
        np.testing.assert_array_equal(np.bincount(labels), [4, 4])

    def test_sample_dataset_empty(self, world):
        features, labels = world.sample_dataset({}, 5)
        assert features.shape[0] == 0 and labels.shape[0] == 0


class TestExtensibility:
    def test_add_concept_prototype_blends_anchors(self, graph):
        world = VisualWorld(graph, WorldSpec(image_dim=16, seed=0))
        prototype = world.add_concept_prototype("oatghurt",
                                                anchors=["yoghurt", "carton"],
                                                jitter=0.0, seed=0)
        expected = (world.prototype("yoghurt") + world.prototype("carton")) / 2
        np.testing.assert_allclose(prototype, expected, atol=1e-9)
        assert "oatghurt" in world

    def test_add_concept_prototype_requires_anchors(self, world):
        with pytest.raises(ValueError):
            world.add_concept_prototype("nothing", anchors=[])

    def test_add_concept_prototype_weights_validated(self, world):
        with pytest.raises(ValueError):
            world.add_concept_prototype("bad", anchors=["plastic"], weights=[0.5, 0.5])


class TestSemanticCoupling:
    def test_shared_embeddings_drive_prototypes(self, graph):
        """Two worlds built from the same embeddings produce the same semantic
        component, while different embeddings produce different prototypes."""
        from repro.kg import generate_text_embeddings

        shared = generate_text_embeddings(graph, dim=32, seed=7)
        world_a = VisualWorld(graph, WorldSpec(image_dim=16, seed=1),
                              semantic_embeddings=shared)
        world_b = VisualWorld(graph, WorldSpec(image_dim=16, seed=1),
                              semantic_embeddings=shared)
        np.testing.assert_allclose(world_a.prototype("plastic"),
                                   world_b.prototype("plastic"))
