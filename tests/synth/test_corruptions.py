"""Property tests for the severity-graded input corruptions.

The scenario grid's corruption axis is only meaningful if the corruptions
themselves are (a) bit-deterministic under a fixed seed — so recorded floors
are reproducible — and (b) actually graded: distortion and downstream
classifier damage must grow with severity.  These tests pin both properties
for every corruption kind.
"""

import numpy as np
import pytest

from repro.synth import (CORRUPTION_NAMES, MAX_SEVERITY, Corruption,
                         GaussianNoiseCorruption, MixingCorruption,
                         OcclusionCorruption, build_corruption)

DIM = 24


@pytest.fixture()
def images(rng):
    return rng.normal(size=(40, DIM))


def _all_kind_severity_pairs():
    return [(kind, severity) for kind in CORRUPTION_NAMES
            for severity in range(MAX_SEVERITY + 1)]


class TestDeterminism:
    @pytest.mark.parametrize("kind,severity", _all_kind_severity_pairs())
    def test_same_instance_is_pure(self, kind, severity, images):
        corruption = build_corruption(kind, DIM, severity, seed=3)
        first = corruption(images)
        second = corruption(images)
        np.testing.assert_array_equal(first, second)

    @pytest.mark.parametrize("kind", CORRUPTION_NAMES)
    def test_equal_specs_are_bit_identical(self, kind, images):
        a = build_corruption(kind, DIM, severity=3, seed=7)
        b = build_corruption(kind, DIM, severity=3, seed=7)
        np.testing.assert_array_equal(a(images), b(images))

    @pytest.mark.parametrize("kind", CORRUPTION_NAMES)
    def test_different_seeds_differ(self, kind, images):
        a = build_corruption(kind, DIM, severity=3, seed=0)
        b = build_corruption(kind, DIM, severity=3, seed=1)
        assert not np.array_equal(a(images), b(images))

    def test_kinds_draw_independent_streams(self, images):
        # The rng is keyed on the corruption kind, so two kinds with the
        # same seed must not share their random draws.
        noise = GaussianNoiseCorruption(DIM, severity=2, seed=0)
        mixing = MixingCorruption(DIM, severity=2, seed=0)
        assert not np.array_equal(noise(images), mixing(images))


class TestShapeAndDtype:
    @pytest.mark.parametrize("kind,severity", _all_kind_severity_pairs())
    def test_preserves_shape_and_dtype(self, kind, severity, images):
        corrupted = build_corruption(kind, DIM, severity)(images)
        assert corrupted.shape == images.shape
        assert corrupted.dtype == np.float64

    @pytest.mark.parametrize("kind", CORRUPTION_NAMES)
    def test_input_left_untouched(self, kind, images):
        original = images.copy()
        build_corruption(kind, DIM, severity=4)(images)
        np.testing.assert_array_equal(images, original)

    @pytest.mark.parametrize("kind", CORRUPTION_NAMES)
    def test_severity_zero_is_identity_copy(self, kind, images):
        corruption = build_corruption(kind, DIM, severity=0)
        corrupted = corruption(images)
        np.testing.assert_array_equal(corrupted, images)
        assert corrupted is not images  # a copy, never an alias

    @pytest.mark.parametrize("kind", CORRUPTION_NAMES)
    def test_empty_batch(self, kind):
        corrupted = build_corruption(kind, DIM, severity=3)(
            np.zeros((0, DIM)))
        assert corrupted.shape == (0, DIM)


class TestSeverityGrading:
    @pytest.mark.parametrize("kind", CORRUPTION_NAMES)
    def test_distortion_strictly_grows_with_severity(self, kind, images):
        # The rng is deliberately NOT keyed on severity: every level scales
        # the same draw, so mean distortion is exactly monotone.
        distortions = []
        for severity in range(MAX_SEVERITY + 1):
            corrupted = build_corruption(kind, DIM, severity, seed=5)(images)
            distortions.append(
                float(np.linalg.norm(corrupted - images, axis=1).mean()))
        assert distortions[0] == 0.0
        for lower, higher in zip(distortions, distortions[1:]):
            assert higher > lower

    @pytest.mark.parametrize("kind", CORRUPTION_NAMES)
    def test_accuracy_degrades_monotonically(self, kind):
        # A nearest-centroid classifier on well-separated Gaussian blobs:
        # clean accuracy is perfect and each severity step may only take
        # accuracy down (within one resolvable step of the 400-sample grid).
        rng = np.random.default_rng(11)
        num_classes, per_class = 4, 100
        centroids = rng.normal(size=(num_classes, DIM)) * 0.8
        labels = np.repeat(np.arange(num_classes), per_class)
        clean = centroids[labels] + 0.1 * rng.normal(
            size=(num_classes * per_class, DIM))

        accuracies = []
        for severity in range(MAX_SEVERITY + 1):
            corrupted = build_corruption(kind, DIM, severity, seed=2)(clean)
            distances = np.linalg.norm(
                corrupted[:, None, :] - centroids[None, :, :], axis=2)
            accuracies.append(
                float((distances.argmin(axis=1) == labels).mean()))

        assert accuracies[0] == 1.0
        tolerance = 1.0 / (num_classes * per_class)
        for lower, higher in zip(accuracies[1:], accuracies):
            assert lower <= higher + tolerance
        assert accuracies[-1] < accuracies[0]


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown corruption"):
            build_corruption("motion_blur", DIM, severity=1)

    @pytest.mark.parametrize("severity", [-1, MAX_SEVERITY + 1])
    def test_severity_out_of_range(self, severity):
        with pytest.raises(ValueError, match="severity"):
            GaussianNoiseCorruption(DIM, severity=severity)

    def test_nonpositive_dim(self):
        with pytest.raises(ValueError, match="dim"):
            OcclusionCorruption(0, severity=1)

    def test_dim_mismatch(self, images):
        with pytest.raises(ValueError, match="dim"):
            MixingCorruption(DIM + 1, severity=2)(
                np.zeros((3, DIM)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            GaussianNoiseCorruption(DIM, severity=1)(np.zeros(DIM))

    def test_is_domain_shift(self):
        assert isinstance(build_corruption("occlusion", DIM, 2), Corruption)
        assert build_corruption("mixing", DIM, 2).kind == "mixing"
