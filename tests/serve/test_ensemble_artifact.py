"""Tests for schema-v2 ensemble artifacts and the ServableEnsemble."""

import json
import os
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.modules.base import Taglet
from repro.nn import default_dtype
from repro.serve import (ArtifactError, BatchingConfig, SCHEMA_VERSION,
                         Servable, ServableEnsemble, ServableModel, Server,
                         export_end_model, export_ensemble, load_servable,
                         read_manifest, start_http_server)
from repro.serve.artifact import (FORMAT_END_MODEL, FORMAT_ENSEMBLE,
                                  MANIFEST_NAME)
from repro.serve.batching import run_at_quantum

from .conftest import CLASS_NAMES, NUM_CLASSES, make_end_model, make_ensemble


def quantized_offline_votes(ensemble, features, quantum):
    """Offline ``TagletEnsemble`` voting at the serving batch quantum."""
    return run_at_quantum(
        lambda rows: ensemble.predict_proba(rows, batch_size=None),
        np.asarray(features, dtype=np.float64), quantum)


class TestExport:
    def test_manifest_layout(self, ensemble_dir, ensemble):
        manifest = read_manifest(ensemble_dir)
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["format"] == FORMAT_ENSEMBLE
        assert manifest["class_names"] == CLASS_NAMES
        assert manifest["num_members"] == len(ensemble.taglets)
        assert manifest["metrics"]["test_accuracy"] == 0.87
        kinds = [entry["kind"] for entry in manifest["members"]]
        assert kinds == ["model", "model", "zsl_kg"]
        assert manifest["members"][-1]["logit_scale"] == 3.0
        for entry in manifest["members"]:
            assert os.path.exists(os.path.join(ensemble_dir,
                                               entry["weights_file"]))
            assert {"shape", "dtype"} <= set(
                next(iter(entry["weights"].values())))

    def test_member_names_preserved(self, servable_ensemble, ensemble):
        assert servable_ensemble.member_names == ensemble.names

    def test_rejects_non_model_taglet(self, tmp_path):
        class OpaqueTaglet(Taglet):
            def predict_proba(self, features, batch_size=256):
                return np.full((len(features), NUM_CLASSES), 1 / NUM_CLASSES)

        from repro.ensemble import TagletEnsemble
        with pytest.raises(TypeError, match="model-backed"):
            export_ensemble(TagletEnsemble([OpaqueTaglet("opaque")]),
                            str(tmp_path / "bad"), class_names=CLASS_NAMES)

    def test_rejects_class_name_mismatch(self, tmp_path, ensemble):
        with pytest.raises(ValueError, match="class names"):
            export_ensemble(ensemble, str(tmp_path / "bad"),
                            class_names=["just_one"])

    def test_bare_ensemble_requires_class_names(self, tmp_path, ensemble):
        with pytest.raises(ValueError, match="class_names"):
            export_ensemble(ensemble, str(tmp_path / "bad"))


class TestRoundTrip:
    def test_loads_as_servable_ensemble(self, servable_ensemble, ensemble):
        assert isinstance(servable_ensemble, ServableEnsemble)
        assert isinstance(servable_ensemble, Servable)
        assert servable_ensemble.num_members == len(ensemble.taglets)
        assert servable_ensemble.num_classes == NUM_CLASSES
        assert servable_ensemble.compiled        # lock-free member forwards

    def test_full_batch_votes_bit_identical_to_offline(self, servable_ensemble,
                                                       ensemble, features):
        offline = ensemble.predict_proba(features, batch_size=None)
        served = servable_ensemble.predict_proba(features)
        assert np.array_equal(served, offline)

    def test_quantized_votes_bit_identical_to_offline(self, servable_ensemble,
                                                      ensemble, features):
        offline = quantized_offline_votes(ensemble, features, 16)
        quantized = servable_ensemble.predict_proba(features, batch_size=16)
        assert np.array_equal(quantized, offline)

    def test_member_probabilities_match_offline_members(self, servable_ensemble,
                                                        ensemble, features):
        offline = ensemble.member_probabilities(features)
        served = servable_ensemble.member_probabilities(features)
        assert set(served) == set(offline)
        # Full-array member forwards match the offline taglets exactly
        # (offline members default to chunked inference; compare unchunked).
        for name, taglet in zip(ensemble.names, ensemble.taglets):
            expected = taglet.predict_proba(features, batch_size=None)
            assert np.array_equal(served[name], expected)

    def test_float32_members_round_trip(self, tmp_path, features):
        with default_dtype("float32"):
            ensemble = make_ensemble(seed=300)
            offline = ensemble.predict_proba(
                np.asarray(features, dtype=np.float32), batch_size=None)
            path = export_ensemble(ensemble, str(tmp_path / "f32"),
                                   class_names=CLASS_NAMES)
        servable = load_servable(path)
        manifest = read_manifest(path)
        assert {entry["dtype"] for entry in manifest["members"]} == {"float32"}
        # Votes are float64 (Eq. 6 runs in float64 offline too) even though
        # every member forward runs in float32.
        served = servable.predict_proba(features)
        assert served.dtype == np.float64
        assert np.array_equal(served, offline)

    def test_fingerprint_covers_the_serving_recipe(self, tmp_path, features):
        """Regression: the fingerprint keys hot-swap detection and cache
        salts, so an ensemble re-exported with only a retuned logit_scale
        (identical member weights) must fingerprint differently."""
        from repro.ensemble import TagletEnsemble
        from repro.modules.zsl_kg import ZslKgTaglet

        from .conftest import make_model

        model = make_model(seed=700)
        paths = []
        for scale in (2.0, 4.0):
            ensemble = TagletEnsemble([ZslKgTaglet("zsl_kg", model,
                                                   logit_scale=scale)])
            path = str(tmp_path / f"scale-{scale}")
            export_ensemble(ensemble, path, class_names=CLASS_NAMES)
            paths.append(path)
        first, second = (load_servable(p) for p in paths)
        # Same weights, different recipe -> different votes, so the
        # fingerprints must differ or a hot swap would serve stale caches.
        assert first.fingerprint != second.fingerprint
        assert not np.array_equal(first.predict_proba(features[:4]),
                                  second.predict_proba(features[:4]))

    def test_describe_is_json_serializable(self, servable_ensemble):
        description = servable_ensemble.describe()
        assert json.dumps(description)
        assert description["format"] == FORMAT_ENSEMBLE
        assert description["num_members"] == 3
        assert description["fingerprint"] == servable_ensemble.fingerprint


class TestSchemaCompat:
    def test_schema_v1_end_model_still_loads(self, artifact_dir, features):
        """Schema-1 artifacts (pre-ensemble exports) must keep loading."""
        manifest_path = os.path.join(artifact_dir, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["schema_version"] == SCHEMA_VERSION
        manifest["schema_version"] = 1           # what old exports wrote
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        servable = load_servable(artifact_dir)
        assert isinstance(servable, ServableModel)
        assert servable.predict_proba(features).shape == (len(features),
                                                          NUM_CLASSES)

    def test_unknown_schema_version_rejected(self, ensemble_dir):
        manifest_path = os.path.join(ensemble_dir, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["schema_version"] = SCHEMA_VERSION + 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactError, match="schema version"):
            load_servable(ensemble_dir)

    def test_ensemble_under_schema_v1_rejected(self, ensemble_dir):
        manifest_path = os.path.join(ensemble_dir, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["schema_version"] = 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactError, match="schema version 2"):
            load_servable(ensemble_dir)

    def test_missing_member_key_rejected(self, ensemble_dir):
        manifest_path = os.path.join(ensemble_dir, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        del manifest["members"][1]["weights_digest"]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactError, match="member 1"):
            load_servable(ensemble_dir)

    def test_unknown_member_kind_rejected(self, ensemble_dir):
        manifest_path = os.path.join(ensemble_dir, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["members"][0]["kind"] = "mystery"
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactError, match="unknown\\s+kind"):
            load_servable(ensemble_dir)

    def test_zsl_member_without_logit_scale_rejected(self, ensemble_dir):
        """A zsl_kg member missing its logit scale would silently serve
        un-scaled votes; the manifest must be rejected instead."""
        manifest_path = os.path.join(ensemble_dir, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["members"][-1]["kind"] == "zsl_kg"
        del manifest["members"][-1]["logit_scale"]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactError, match="logit_scale"):
            load_servable(ensemble_dir)

    def test_tampered_member_weights_fail_digest(self, ensemble_dir):
        manifest = read_manifest(ensemble_dir)
        weights_path = os.path.join(ensemble_dir,
                                    manifest["members"][0]["weights_file"])
        archive = np.load(weights_path)
        tampered = {name: archive[name].copy() for name in archive.files}
        first = next(iter(tampered))
        tampered[first] = tampered[first] + 1.0
        np.savez(weights_path, **tampered)
        with pytest.raises(ArtifactError, match="digest"):
            load_servable(ensemble_dir)

    def test_end_model_artifacts_unchanged_by_v2(self, tmp_path, features):
        """An end model exported under schema 2 reads exactly like before."""
        path = export_end_model(make_end_model(seed=5), str(tmp_path / "em"),
                                class_names=CLASS_NAMES)
        manifest = read_manifest(path)
        assert manifest["schema_version"] == 2
        assert manifest["format"] == FORMAT_END_MODEL
        assert isinstance(load_servable(path), ServableModel)


class TestServedEnsemble:
    """The registry, server, and HTTP endpoint serve ``ensemble@version``
    references exactly like end models."""

    @pytest.fixture()
    def server(self, ensemble_dir, artifact_dir):
        app = Server(batching=BatchingConfig(max_batch_size=16,
                                             max_latency_ms=20))
        app.load("ensemble", ensemble_dir)
        app.load("default", artifact_dir)
        yield app
        app.close()

    def test_served_bit_identical_to_offline_voting(self, server, ensemble,
                                                    features):
        """The acceptance criterion: served ensemble predictions are
        bit-identical to offline ``TagletEnsemble`` voting at the serving
        batch quantum."""
        offline = quantized_offline_votes(ensemble, features, 16)
        futures = [server.submit(row, model="ensemble") for row in features]
        served = np.stack([f.result(timeout=30) for f in futures])
        assert np.array_equal(served, offline)

    def test_predict_response(self, server, servable_ensemble, features):
        response = server.predict(features[:3], model="ensemble@1",
                                  return_probabilities=True)
        assert response["model"] == "ensemble"
        expected = servable_ensemble.predict_proba(features[:3],
                                                   batch_size=16)
        assert response["predictions"] == expected.argmax(axis=1).tolist()
        assert np.array_equal(np.asarray(response["probabilities"]), expected)

    def test_wrong_width_fails_alone_on_the_ensemble(self, server, features):
        with pytest.raises(ValueError, match="features per row"):
            server.predict(np.ones(5), model="ensemble")
        # The batcher is still healthy afterwards.
        assert server.predict(features[0], model="ensemble")["predictions"]

    def test_http_round_trip(self, server, ensemble, features):
        httpd, _ = start_http_server(server, port=0)
        try:
            port = httpd.server_address[1]
            body = json.dumps({"model": "ensemble", "priority": 3,
                               "inputs": features[:4].tolist(),
                               "return_probabilities": True}).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/predict", data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = json.loads(response.read())
            offline = quantized_offline_votes(ensemble, features[:4], 16)
            assert np.array_equal(np.asarray(payload["probabilities"]),
                                  offline)
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/models", timeout=10) as r:
                models = json.loads(r.read())
            summary = models["ensemble"]["versions"]["1"]
            assert summary["format"] == FORMAT_ENSEMBLE
            assert summary["num_members"] == 3
        finally:
            httpd.shutdown()


class TestControllerHook:
    """``ControllerConfig.export_ensemble_path`` — train-to-deploy for the
    whole ensemble (quality-over-latency deployments)."""

    def test_hook_exports_a_loadable_ensemble(self, trained_export):
        result, split, path = trained_export
        servable = load_servable(path + "-ensemble")
        assert isinstance(servable, ServableEnsemble)
        assert servable.member_names == result.ensemble.names

    def test_served_bit_identical_to_pipeline_ensemble(self, trained_export):
        result, split, path = trained_export
        servable = load_servable(path + "-ensemble")
        offline = quantized_offline_votes(result.ensemble,
                                          split.test_features, 32)
        served = servable.predict_proba(split.test_features, batch_size=32)
        assert np.array_equal(served, offline)

    def test_manifest_records_ensemble_accuracy(self, trained_export):
        result, split, path = trained_export
        manifest = read_manifest(path + "-ensemble")
        offline = result.ensemble_accuracy(split.test_features,
                                           split.test_labels)
        assert manifest["metrics"]["test_accuracy"] == pytest.approx(offline)
        assert manifest["task_name"] == result.task_name
