"""Tests for the capacity model: calibration, prediction, inversion,
and model-driven admission control (the 429 path end to end)."""

from __future__ import annotations

import json
import math
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (AdmissionController, BatchingConfig, CapacityModel,
                         Overloaded, SLO, Server, ServiceModel,
                         calibrate_service_model, make_http_server)
from repro.serve.capacity import (LATENCY_ERROR_BOUND,
                                  THROUGHPUT_ERROR_BOUND)

BASE_S = 0.002
PER_ROW_S = 0.0002


def sleepy_predict(rows: np.ndarray) -> np.ndarray:
    """A forward with an exactly known affine cost law (sleep releases the
    GIL like a BLAS call, so timings are clean even on one core)."""
    rows = np.atleast_2d(rows)
    time.sleep(BASE_S + PER_ROW_S * len(rows))
    return np.full((len(rows), 3), 1.0 / 3.0)


@pytest.fixture(scope="module")
def service() -> ServiceModel:
    return calibrate_service_model(sleepy_predict, input_dim=4,
                                   batch_sizes=(1, 4, 16), repeats=3,
                                   probe_requests=64)


class TestCalibration:
    def test_recovers_the_affine_law(self, service):
        assert service.base_s == pytest.approx(BASE_S, rel=0.5)
        assert service.per_row_s == pytest.approx(PER_ROW_S, rel=0.5)

    def test_forward_prediction_matches_measurement(self, service):
        for batch_size, measured in service.measurements.items():
            assert service.forward_s(batch_size) == pytest.approx(
                measured, rel=0.35)

    def test_overhead_is_measured_and_small(self, service):
        # Dispatch overhead is real but far below the forward cost.
        assert 0.0 <= service.overhead_s < BASE_S

    def test_round_trips_through_dict(self, service):
        clone = ServiceModel.from_dict(
            json.loads(json.dumps(service.as_dict())))
        assert clone.base_s == pytest.approx(service.base_s)
        assert clone.per_row_s == pytest.approx(service.per_row_s)
        assert clone.overhead_s == pytest.approx(service.overhead_s)
        assert clone.measurements == {
            int(k): pytest.approx(v)
            for k, v in service.measurements.items()}


class TestCapacityModel:
    def model(self, **kwargs) -> CapacityModel:
        kwargs.setdefault("cpus", 1)
        return CapacityModel(ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S,
                                          overhead_s=1e-5), **kwargs)

    def test_batching_raises_capacity(self):
        model = self.model()
        small = model.capacity(BatchingConfig(max_batch_size=1))
        large = model.capacity(BatchingConfig(max_batch_size=64))
        # Amortizing the per-call base cost is the whole point of batching.
        assert large > 2 * small

    def test_workers_beyond_cpus_add_nothing(self):
        model = self.model(cpus=1)
        one = model.capacity(BatchingConfig(max_batch_size=8, num_workers=1))
        two = model.capacity(BatchingConfig(max_batch_size=8, num_workers=2))
        assert two == pytest.approx(one)

    def test_workers_scale_capacity_given_cores(self):
        model = self.model(cpus=4)
        one = model.capacity(BatchingConfig(max_batch_size=8, num_workers=1))
        two = model.capacity(BatchingConfig(max_batch_size=8, num_workers=2))
        assert two > 1.5 * one

    def test_replicas_pool_like_workers(self):
        doubled = CapacityModel(
            ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S), replicas=2,
            cpus=8)
        single = CapacityModel(
            ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S), replicas=1,
            cpus=8)
        config = BatchingConfig(max_batch_size=8)
        assert doubled.capacity(config) > 1.5 * single.capacity(config)

    def test_unsaturated_prediction(self):
        model = self.model()
        config = BatchingConfig(max_batch_size=16, max_latency_ms=2.0)
        capacity = model.capacity(config)
        prediction = model.predict(config, arrival_rate=capacity * 0.3)
        assert prediction.throughput == pytest.approx(capacity * 0.3)
        assert prediction.shed_rate == 0.0
        assert prediction.utilization == pytest.approx(0.3)
        assert 1.0 <= prediction.batch_fill <= 16.0
        assert 0 < prediction.p50_ms <= prediction.p99_ms
        assert math.isfinite(prediction.p99_ms)

    def test_saturated_prediction_sheds_the_excess(self):
        model = self.model()
        config = BatchingConfig(max_batch_size=16, max_latency_ms=2.0)
        capacity = model.capacity(config)
        prediction = model.predict(config, arrival_rate=capacity * 2.0)
        assert prediction.throughput == pytest.approx(capacity)
        assert prediction.shed_rate == pytest.approx(0.5, abs=0.01)
        # Unbounded queue under overload: latency diverges.
        assert prediction.p99_ms == float("inf")

    def test_bounded_queue_bounds_saturated_latency(self):
        model = self.model()
        config = BatchingConfig(max_batch_size=16, max_latency_ms=2.0,
                                max_queue_size=64)
        capacity = model.capacity(config)
        prediction = model.predict(config, arrival_rate=capacity * 2.0)
        assert math.isfinite(prediction.p99_ms)
        # A full bounded queue drains in about depth/capacity seconds.
        assert prediction.p99_ms == pytest.approx(
            64 / capacity * 1000.0, rel=0.5)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="arrival_rate"):
            self.model().predict(BatchingConfig(), 0.0)

    def test_error_bounds_are_documented(self):
        description = self.model().describe()
        assert description["error_bounds"]["throughput"] \
            == THROUGHPUT_ERROR_BOUND
        assert description["error_bounds"]["latency"] == LATENCY_ERROR_BOUND


class TestAutotune:
    def model(self) -> CapacityModel:
        return CapacityModel(ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S,
                                          overhead_s=1e-5), cpus=1)

    def test_returned_config_meets_the_slo(self):
        model = self.model()
        slo = SLO(p99_ms=50.0)
        config, prediction = model.autotune(slo, arrival_rate=300.0)
        assert prediction.p99_ms <= slo.p99_ms
        assert prediction.shed_rate == 0.0
        # The prediction really is the returned config's operating point.
        again = model.predict(config, 300.0)
        assert again.p99_ms == pytest.approx(prediction.p99_ms)

    def test_prefers_cheaper_configs(self):
        model = self.model()
        lax, _ = model.autotune(SLO(p99_ms=10_000.0), arrival_rate=10.0)
        # A laughably lax SLO at trivial load needs one worker and the
        # smallest batch the grid offers.
        assert lax.num_workers == 1
        assert lax.max_batch_size == 1

    def test_tight_slo_needs_bigger_batches_than_lax(self):
        model = self.model()
        # At high load a batch of 1 cannot keep up: the grid must move.
        config, _ = model.autotune(SLO(p99_ms=100.0), arrival_rate=1500.0)
        assert config.max_batch_size > 1

    def test_impossible_slo_raises_with_best_achievable(self):
        with pytest.raises(ValueError, match="no config"):
            self.model().autotune(SLO(p99_ms=0.001), arrival_rate=100.0)

    def test_min_throughput_objective(self):
        model = self.model()
        config, prediction = model.autotune(
            SLO(min_throughput=1000.0), arrival_rate=100.0)
        assert prediction.capacity >= 1000.0


class TestAdmissionController:
    def controller(self, max_delay_ms=50.0) -> AdmissionController:
        model = CapacityModel(
            ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S), cpus=1)
        return AdmissionController(
            model, BatchingConfig(max_batch_size=16, max_latency_ms=2.0),
            max_delay_ms=max_delay_ms)

    def test_empty_queue_admits(self):
        controller = self.controller()
        controller.admit(queue_depth=0)
        assert controller.admitted == 1
        assert controller.shed == 0

    def test_deep_queue_sheds_with_429_semantics(self):
        controller = self.controller(max_delay_ms=10.0)
        depth = int(controller.capacity_req_per_sec)  # ~1 s of backlog
        with pytest.raises(Overloaded, match="admission budget"):
            controller.admit(queue_depth=depth)
        assert controller.shed == 1

    def test_hopeless_deadline_sheds_before_queueing(self):
        controller = self.controller(max_delay_ms=None)
        depth = int(controller.capacity_req_per_sec)  # ~1 s predicted wait
        with pytest.raises(Overloaded, match="deadline"):
            controller.admit(queue_depth=depth, deadline_ms=50.0)

    def test_generous_deadline_is_admitted(self):
        controller = self.controller(max_delay_ms=None)
        controller.admit(queue_depth=10, deadline_ms=60_000.0)
        assert controller.admitted == 1

    def test_already_expired_deadline_is_not_shed_as_retryable(self):
        """A spent deadline must NOT surface as 429 — a retry cannot help
        a stale request.  Admission passes it through so the batcher's
        submit-time expiry raises the honest 504 (`DeadlineExceeded`)."""
        controller = self.controller(max_delay_ms=None)
        controller.admit(queue_depth=0, deadline_ms=-1.0)   # no Overloaded
        controller.admit(queue_depth=0, deadline_ms=0.0)
        assert controller.admitted == 2
        assert controller.shed == 0

    def test_predicted_wait_is_linear_in_depth(self):
        controller = self.controller()
        one = controller.predicted_wait_ms(1)
        assert controller.predicted_wait_ms(10) == pytest.approx(10 * one)

    def test_slo_derives_the_budget(self):
        model = CapacityModel(
            ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S), cpus=1)
        controller = AdmissionController(
            model, BatchingConfig(max_batch_size=16, max_latency_ms=2.0),
            slo=SLO(p99_ms=100.0))
        assert controller.max_delay_ms is not None
        assert 0 < controller.max_delay_ms < 100.0


class TestServerIntegration:
    def test_submit_passes_the_admission_gate(self, servable):
        model = CapacityModel(
            ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S), cpus=1)
        admission = AdmissionController(model, BatchingConfig(),
                                        max_delay_ms=1000.0)
        with Server(admission=admission) as server:
            server.register("default", servable)
            rows = np.zeros(servable.input_dim)
            server.submit(rows).result(timeout=10)
        assert admission.admitted == 1

    def test_forced_shed_raises_overloaded_synchronously(self, servable):
        model = CapacityModel(
            ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S), cpus=1)
        # A negative budget sheds everything: the degenerate end of the
        # dial, which makes the refusal path deterministic to test.
        admission = AdmissionController(model, BatchingConfig(),
                                        max_delay_ms=-1.0)
        with Server(admission=admission) as server:
            server.register("default", servable)
            with pytest.raises(Overloaded):
                server.submit(np.zeros(servable.input_dim))
        assert admission.shed == 1
        # The shed request never reached the batcher.
        stats = server.stats()
        assert all(entry["requests"] == 0 for entry in stats.values())

    def test_capacity_payload_reports_model_and_gate(self, servable):
        model = CapacityModel(
            ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S), cpus=1)
        admission = AdmissionController(model, BatchingConfig(),
                                        max_delay_ms=25.0)
        with Server(admission=admission) as server:
            server.register("default", servable)
            payload = server.capacity()
        assert payload["queue_depth"] == 0
        assert payload["model"]["service"]["base_s"] == pytest.approx(BASE_S)
        assert payload["admission"]["max_delay_ms"] == 25.0
        assert payload["capacity_req_per_sec"] > 0

    def test_capacity_payload_without_model_is_explicit(self, servable):
        with Server() as server:
            server.register("default", servable)
            payload = server.capacity()
        assert payload["model"] is None
        assert payload["admission"] is None


class TestCapacityOverHttp:
    @pytest.fixture()
    def gated_server(self, servable):
        model = CapacityModel(
            ServiceModel(base_s=BASE_S, per_row_s=PER_ROW_S), cpus=1)
        admission = AdmissionController(model, BatchingConfig(),
                                        max_delay_ms=-1.0)  # shed everything
        server = Server(admission=admission)
        server.register("default", servable)
        httpd = make_http_server(server, port=0)
        import threading
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        yield f"http://{host}:{port}", server
        httpd.shutdown()
        server.close()

    def test_get_capacity_route(self, gated_server):
        url, _ = gated_server
        with urllib.request.urlopen(f"{url}/capacity", timeout=10) as response:
            payload = json.loads(response.read())
        assert payload["admission"]["max_delay_ms"] == -1.0
        assert payload["model"]["error_bounds"]["throughput"] \
            == THROUGHPUT_ERROR_BOUND

    def test_shed_request_maps_to_http_429(self, gated_server, servable):
        url, _ = gated_server
        body = json.dumps(
            {"inputs": [0.0] * servable.input_dim}).encode("utf-8")
        request = urllib.request.Request(
            f"{url}/predict", data=body,
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 429
        assert "shedding" in json.loads(excinfo.value.read())["error"]
