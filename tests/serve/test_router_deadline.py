"""Regression tests for the router's deadline/backoff accounting.

The bugs these pin down: retry backoff used to sleep unconditionally — a
request with ``deadline_ms=50`` could burn 20+40 ms asleep and be retried
already-expired — and a replica answering 200 *after* the client's
deadline used to be returned as a success.  Both now surface the honest
``DeadlineExceeded`` (HTTP 504): backoff sleeps are capped at the
remaining deadline and fail fast before sleeping when none remains, and
late 200s are suppressed.  This file also covers the 429 retry path
(admission sheds are retryable; a fully-shedding fleet surfaces
``Overloaded``, not a routing error) — together with
``test_traffic.py``, the tier-1 assertion that no request ever completes
successfully after its own deadline, on the routed path.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.serve import (DeadlineExceeded, Overloaded, Router, RouterConfig,
                         make_http_server)

INPUT = np.zeros(4)


class _StubApp:
    """A minimal replica app: answers ``predict`` per configured behavior.

    Serves through the stock HTTP handler, so the wire behavior (status
    codes, error bodies) is exactly what a real replica would produce.
    """

    def __init__(self, behavior: str = "ok", delay_s: float = 0.0):
        self.behavior = behavior
        self.delay_s = delay_s
        self.calls = 0
        self._lock = threading.Lock()

    def predict(self, inputs, model="default", return_probabilities=False,
                timeout=None, priority=0, deadline_ms=None):
        with self._lock:
            self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.behavior == "shed":
            raise Overloaded("stub shedding: over admission budget")
        return {"model": "default", "version": "1", "predictions": [0],
                "labels": ["class_0"]}

    # the rest of the app surface, for health probes and stats merges
    def health(self):
        return {"status": "ok", "draining": False, "queue_depth": 0,
                "workers": {"alive": 1, "expected": 1}, "models": ["default@1"]}

    def models(self):
        return {"default": {"latest": "1", "versions": {}}}

    def stats(self):
        return {}

    def describe(self):
        return {}


@pytest.fixture()
def serve_stub():
    """Start stub replicas on ephemeral ports; yields the factory."""
    httpds = []

    def start(app: _StubApp):
        httpd = make_http_server(app, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        httpds.append(httpd)
        return httpd.server_address[:2]

    yield start
    for httpd in httpds:
        httpd.shutdown()


def dead_port() -> int:
    """A port that was just listening and no longer is."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestBackoffDeadlineCap:
    def test_no_replica_fails_fast_within_the_deadline(self):
        """10 attempts x 200 ms uncapped backoff would sleep ~2 s; the
        50 ms deadline must cut that to a prompt 504."""
        router = Router(RouterConfig(max_attempts=10, retry_backoff_ms=200,
                                     retry_backoff_cap_ms=400))
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded, match="deadline"):
            router.predict(INPUT, deadline_ms=50.0)
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0, f"backoff ignored the deadline ({elapsed:.2f}s)"
        router.close()

    def test_dead_replica_fails_fast_within_the_deadline(self):
        router = Router(RouterConfig(max_attempts=10, retry_backoff_ms=200,
                                     retry_backoff_cap_ms=400,
                                     request_timeout=5.0))
        router.add_replica("dead", "127.0.0.1", dead_port(),
                           models=["default"])
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            router.predict(INPUT, deadline_ms=60.0)
        assert time.perf_counter() - started < 1.0
        router.close()

    def test_expired_deadline_raises_before_any_sleep(self):
        router = Router(RouterConfig(max_attempts=5, retry_backoff_ms=500))
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            router.predict(INPUT, deadline_ms=-1.0)
        assert time.perf_counter() - started < 0.4
        router.close()

    def test_no_deadline_keeps_the_old_retry_patience(self):
        """Without a deadline the bounded backoff still runs its course —
        the fix must not make deadline-less requests give up early."""
        router = Router(RouterConfig(max_attempts=3, retry_backoff_ms=20,
                                     retry_backoff_cap_ms=40))
        with pytest.raises(Exception) as excinfo:
            router.predict(INPUT)
        assert not isinstance(excinfo.value, DeadlineExceeded)
        router.close()


class TestLateResponseSuppression:
    def test_200_past_deadline_surfaces_504(self, serve_stub):
        """A replica that answers successfully but *late* must not be
        reported as a success: no request ever completes after its own
        deadline, router path included."""
        host, port = serve_stub(_StubApp("ok", delay_s=0.15))
        router = Router(RouterConfig(max_attempts=2, retry_backoff_ms=1,
                                     request_timeout=10.0))
        router.add_replica("slow", host, port, models=["default"])
        with pytest.raises(DeadlineExceeded, match="late"):
            router.predict(INPUT, deadline_ms=60.0)
        assert router.stats()["_router"]["late_responses"] == 1
        router.close()

    def test_in_time_response_is_served(self, serve_stub):
        host, port = serve_stub(_StubApp("ok"))
        router = Router(RouterConfig(max_attempts=2, retry_backoff_ms=1,
                                     request_timeout=10.0))
        router.add_replica("fast", host, port, models=["default"])
        response = router.predict(INPUT, deadline_ms=10_000.0)
        assert response["predictions"] == [0]
        assert router.stats()["_router"]["late_responses"] == 0
        router.close()


class TestAdmissionShedFailover:
    def test_shedding_replica_fails_over_to_healthy_one(self, serve_stub):
        shedder = _StubApp("shed")
        healthy = _StubApp("ok")
        router = Router(RouterConfig(max_attempts=4, retry_backoff_ms=1,
                                     request_timeout=10.0))
        for replica_id, app in (("a", shedder), ("b", healthy)):
            host, port = serve_stub(app)
            router.add_replica(replica_id, host, port, models=["default"])
        # Whatever the picker's order, every request must land: a 429 is
        # retryable and the healthy replica absorbs the failover.
        for _ in range(8):
            assert router.predict(INPUT)["predictions"] == [0]
        assert healthy.calls == 8        # every success came from the healthy one
        router.close()

    def test_fleetwide_shedding_surfaces_overloaded(self, serve_stub):
        host, port = serve_stub(_StubApp("shed"))
        router = Router(RouterConfig(max_attempts=3, retry_backoff_ms=1,
                                     request_timeout=10.0))
        router.add_replica("a", host, port, models=["default"])
        with pytest.raises(Overloaded, match="shedding"):
            router.predict(INPUT)
        router.close()
