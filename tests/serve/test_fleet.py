"""Multi-process fleet serving: routing, balancing, failure, hot swap.

Two layers of coverage:

* **Router unit tests** — least-outstanding/round-robin picking and
  reference resolution against hand-built replica tables, no processes.
* **Live fleet tests** — real ``multiprocessing`` worker processes behind
  the router, asserting the scale-out invariants: served predictions stay
  bit-identical to offline inference through routing, load balancing,
  replica death + retry, and rolling hot-swap; killing a replica under
  load causes zero client-visible request failures; the replacement comes
  back on the same port.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (BatchingConfig, FleetConfig, ModelNotFound,
                         ReplicaSpec, Router, RouterConfig, ServingFleet,
                         export_end_model, load_servable, make_http_server,
                         replicated_specs, sharded_specs)

from .conftest import CLASS_NAMES, SPEC, make_end_model

QUANTUM = 16


def fast_fleet_config() -> FleetConfig:
    """Small quanta and tight probe intervals for quick, deterministic tests."""
    return FleetConfig(
        batching=BatchingConfig(max_batch_size=QUANTUM, max_latency_ms=1.0,
                                cache_size=0),
        router=RouterConfig(health_interval=0.1, probe_timeout=5.0,
                            request_timeout=30.0))


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Two versions of one model (different weights) plus a second model."""
    base = tmp_path_factory.mktemp("fleet-artifacts")
    paths = {}
    for key, seed in (("v1", 0), ("v2", 17), ("other", 42)):
        path = str(base / key)
        export_end_model(make_end_model(seed=seed), path,
                         class_names=CLASS_NAMES)
        paths[key] = path
    return paths


@pytest.fixture(scope="module")
def inputs():
    return np.random.default_rng(3).normal(size=(48, SPEC.input_dim))


def offline_proba(path: str, rows: np.ndarray) -> np.ndarray:
    return load_servable(path).predict_proba(rows, batch_size=QUANTUM)


# --------------------------------------------------------------------- #
# Router unit tests (no processes)
# --------------------------------------------------------------------- #
class TestRouterPicking:
    def _router_with(self, loads) -> Router:
        router = Router(RouterConfig())
        for replica_id, outstanding in loads.items():
            handle = router.add_replica(replica_id, "127.0.0.1", 1,
                                        models=["m"])
            handle.outstanding = outstanding
        return router

    def test_least_outstanding_wins(self):
        router = self._router_with({"a": 3, "b": 0, "c": 2})
        picked = router._pick("m", exclude=set())
        assert picked.id == "b"

    def test_round_robin_breaks_ties(self):
        # _pick increments outstanding, so release between picks to keep
        # the tie alive and observe pure rotation.
        router = self._router_with({"a": 0, "b": 0})
        seen = []
        for _ in range(4):
            handle = router._pick("m", exclude=set())
            seen.append(handle.id)
            router._release(handle)
        assert seen in (["a", "b", "a", "b"], ["b", "a", "b", "a"])

    def test_draining_and_unhealthy_excluded(self):
        router = self._router_with({"a": 0, "b": 5})
        router.set_draining("a", True)
        assert router._pick("m", exclude=set()).id == "b"
        router.set_healthy("b", False)
        assert router._pick("m", exclude=set()) is None

    def test_shard_ownership_filters_candidates(self):
        router = Router(RouterConfig())
        router.add_replica("a", "127.0.0.1", 1, models=["left"])
        router.add_replica("b", "127.0.0.1", 2, models=["right"])
        assert router._pick("left", exclude=set()).id == "a"
        assert router._pick("right", exclude=set()).id == "b"
        assert router._pick("nowhere", exclude=set()) is None

    def test_unknown_model_raises_model_not_found(self):
        router = Router(RouterConfig(max_attempts=3, retry_backoff_ms=1))
        router.add_replica("a", "127.0.0.1", 1, models=["m"])
        with pytest.raises(ModelNotFound):
            router.predict(np.zeros(4), model="elsewhere")

    def test_respawned_replica_keeps_counters(self):
        router = Router(RouterConfig())
        handle = router.add_replica("a", "127.0.0.1", 1, models=["m"])
        handle.served = 7
        handle.transport_failures = 2
        replacement = router.add_replica("a", "127.0.0.1", 9, models=["m"])
        assert replacement.served == 7
        assert replacement.transport_failures == 2
        assert router.replica("a").port == 9


# --------------------------------------------------------------------- #
# Live fleets
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def fleet(artifacts):
    """A 2-replica fleet serving ``m`` (v1 weights), shared read-only."""
    specs = replicated_specs([("m", artifacts["v1"])], 2)
    fleet = ServingFleet(specs, fast_fleet_config())
    fleet.start()
    yield fleet
    fleet.close()


class TestFleetServing:
    def test_bit_identical_to_offline_through_router(self, fleet, artifacts,
                                                     inputs):
        offline = offline_proba(artifacts["v1"], inputs)
        served = np.stack([
            np.asarray(fleet.router.predict(row, model="m",
                                            return_probabilities=True)
                       ["probabilities"][0])
            for row in inputs])
        assert np.array_equal(served, offline)

    def test_load_balances_across_replicas(self, fleet, inputs):
        before = {replica_id: fleet.router.replica(replica_id).served
                  for replica_id in fleet.replica_ids()}
        for row in inputs:
            fleet.router.predict(row, model="m")
        gained = {replica_id: fleet.router.replica(replica_id).served
                  - before[replica_id] for replica_id in before}
        assert sum(gained.values()) == len(inputs)
        assert all(count > 0 for count in gained.values()), gained

    def test_draining_replica_receives_no_new_requests(self, fleet, inputs):
        drained = fleet.replica_ids()[0]
        fleet.router.set_draining(drained, True)
        try:
            before = fleet.router.replica(drained).served
            for row in inputs[:12]:
                fleet.router.predict(row, model="m")
            assert fleet.router.replica(drained).served == before
        finally:
            fleet.router.set_draining(drained, False)

    def test_health_reports_fleet_and_manifest(self, fleet):
        health = fleet.health()
        assert health["status"] == "ok"
        assert sorted(health["replicas"]) == fleet.replica_ids()
        assert health["models"] == ["m@1"]

    def test_stats_aggregate_across_replicas(self, fleet, inputs):
        for row in inputs[:8]:
            fleet.router.predict(row, model="m")
        stats = fleet.stats()
        assert stats["m@1"]["requests"] >= 8
        router_stats = stats["_router"]
        assert router_stats["requests"] >= 8
        assert sorted(router_stats["replicas"]) == fleet.replica_ids()

    def test_http_front_end_same_client_api(self, fleet, artifacts, inputs):
        httpd = make_http_server(fleet.router, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        port = httpd.server_address[1]
        base = f"http://127.0.0.1:{port}"
        try:
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as r:
                health = json.loads(r.read())
            assert health["status"] == "ok" and len(health["replicas"]) == 2
            with urllib.request.urlopen(f"{base}/models", timeout=10) as r:
                assert "m" in json.loads(r.read())
            body = json.dumps({"model": "m", "inputs": inputs[:3].tolist(),
                               "return_probabilities": True}).encode()
            request = urllib.request.Request(
                f"{base}/predict", data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as r:
                response = json.loads(r.read())
            offline = offline_proba(artifacts["v1"], inputs[:3])
            assert np.array_equal(np.asarray(response["probabilities"]),
                                  offline)
            assert response["predictions"] == offline.argmax(axis=1).tolist()
            # The error mapping holds through the router: unknown -> 404,
            # malformed -> 400, and the admin plane is NOT exposed here.
            for payload, status in (
                    ({"model": "missing", "inputs": [[0.0] * SPEC.input_dim]},
                     404),
                    ({"model": "m", "inputs": [[1.0, 2.0]]}, 400)):
                request = urllib.request.Request(
                    f"{base}/predict", data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"})
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=30)
                assert excinfo.value.code == status
            admin = urllib.request.Request(
                f"{base}/admin/drain", data=b"{}",
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(admin, timeout=10)
            assert excinfo.value.code == 404
        finally:
            httpd.shutdown()


class TestFleetResilience:
    def test_kill_replica_under_load_zero_client_failures(self, artifacts,
                                                          inputs):
        offline = offline_proba(artifacts["v1"], inputs)
        specs = replicated_specs([("m", artifacts["v1"])], 2)
        with ServingFleet(specs, fast_fleet_config()) as fleet:
            victim = fleet.replica_ids()[0]
            port_before = dict(fleet.addresses())[victim][1]
            errors: list = []
            mismatches: list = []
            killed = threading.Event()

            def client(indices):
                for i in indices:
                    try:
                        response = fleet.router.predict(
                            inputs[i], model="m", return_probabilities=True)
                        if not np.array_equal(
                                np.asarray(response["probabilities"][0]),
                                offline[i]):
                            mismatches.append(i)
                    except Exception as error:  # noqa: BLE001
                        errors.append((i, error))
                    if i == 8:
                        killed.set()

            def chaos():
                assert killed.wait(timeout=30)
                fleet.kill_replica(victim)

            threads = [threading.Thread(target=chaos)] + [
                threading.Thread(target=client,
                                 args=(range(k, len(inputs), 4),))
                for k in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            # The robustness bar: a replica dying under load is invisible
            # to clients — no failures, no changed bits.
            assert not errors, errors[:3]
            assert not mismatches
            # ...and the single respawn path replaced it on the SAME port.
            assert fleet.router.wait_healthy(2, timeout=30)
            assert dict(fleet.addresses())[victim][1] == port_before
            assert fleet.processes_alive() == {replica_id: True
                                               for replica_id
                                               in fleet.replica_ids()}
            assert fleet.router.replica(victim).respawns >= 1

    def test_sharded_fleet_partitions_model_space(self, artifacts, inputs):
        specs = sharded_specs([("left", artifacts["v1"]),
                               ("right", artifacts["other"])], 2)
        assert [spec.names() for spec in specs] == [["left"], ["right"]]
        with ServingFleet(specs, fast_fleet_config()) as fleet:
            left = offline_proba(artifacts["v1"], inputs[:4])
            right = offline_proba(artifacts["other"], inputs[:4])
            assert not np.array_equal(left, right)
            for name, expected in (("left", left), ("right", right)):
                served = np.stack([
                    np.asarray(fleet.router.predict(
                        row, model=name, return_probabilities=True)
                        ["probabilities"][0])
                    for row in inputs[:4]])
                assert np.array_equal(served, expected)
            with pytest.raises(ModelNotFound):
                fleet.router.predict(inputs[0], model="nowhere")


class TestRollingSwap:
    def test_swap_under_traffic_serves_old_or_new_never_errors(
            self, artifacts, inputs):
        """The hot-swap-racing-retries contract: while a rolling swap
        marches across the fleet, every request routed (or retried) onto a
        mid-swap replica gets the OLD or the NEW version's bit-exact
        output — never an error, never a mixed batch."""
        old = offline_proba(artifacts["v1"], inputs)
        new = offline_proba(artifacts["v2"], inputs)
        assert not np.array_equal(old, new)
        specs = replicated_specs([("m", artifacts["v1"])], 2)
        with ServingFleet(specs, fast_fleet_config()) as fleet:
            errors: list = []
            bad_rows: list = []
            versions_seen: set = set()
            stop = threading.Event()

            def client():
                i = 0
                while not stop.is_set():
                    i = (i + 1) % len(inputs)
                    try:
                        response = fleet.router.predict(
                            inputs[i], model="m", return_probabilities=True)
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)
                        continue
                    row = np.asarray(response["probabilities"][0])
                    versions_seen.add(response["version"])
                    if not (np.array_equal(row, old[i])
                            or np.array_equal(row, new[i])):
                        bad_rows.append(i)

            threads = [threading.Thread(target=client) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                swapped = fleet.rolling_swap("m", artifacts["v2"])
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=60)
            assert not errors, errors[:3]
            assert not bad_rows
            assert set(swapped) == set(fleet.replica_ids())
            assert set(swapped.values()) == {"2"}
            # After the swap the whole fleet serves the new weights...
            served = np.stack([
                np.asarray(fleet.router.predict(row, model="m",
                                                return_probabilities=True)
                           ["probabilities"][0])
                for row in inputs[:8]])
            assert np.array_equal(served, new[:8])
            # ...and the old version stays addressable explicitly.
            pinned = fleet.router.predict(inputs[0], model="m@1",
                                          return_probabilities=True)
            assert np.array_equal(np.asarray(pinned["probabilities"][0]),
                                  old[0])
