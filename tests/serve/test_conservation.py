"""Counter-conservation property tests.

The accounting law the batcher promises (and ``GET /stats`` exposes):
once every future has resolved,

    requests == served + expired + shed + errors

— every accepted request lands in exactly one terminal bucket.
``rejected`` requests fail synchronously at submit and never count into
``requests``; with the cache enabled, ``cache_hits + cache_misses``
partition the single-row lookups.  The law is exercised under concurrent
submit / expiry / shed / close traffic, against both 1-worker and
2-worker batchers.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve import BatchingConfig, MicroBatcher

pytestmark = pytest.mark.parametrize("num_workers", [1, 2])


def conserved(stats: dict) -> bool:
    return stats["requests"] == (stats["served"] + stats["expired"]
                                 + stats["shed"] + stats["errors"])


def chaotic_predict(rows: np.ndarray) -> np.ndarray:
    """A forward that is slow enough to queue traffic and fails on a
    marked input — errors must land in their bucket, not vanish."""
    rows = np.atleast_2d(rows)
    time.sleep(0.001)
    if (rows[:, 0] > 1e5).any():
        raise RuntimeError("poisoned batch")
    return rows.copy()


def run_chaos(config: BatchingConfig, close_drain: bool,
              poison: bool = False) -> dict:
    """Hammer a batcher from 4 threads with mixed deadlines, then close it
    mid-traffic and return the final counters."""
    batcher = MicroBatcher(chaotic_predict, config, input_dim=3)
    futures = []
    futures_lock = threading.Lock()
    rejected = [0]

    def client(worker_index: int) -> None:
        rng = np.random.default_rng(worker_index)
        for i in range(60):
            kind = i % 6
            row = np.full(3, float(worker_index * 1000 + i))
            deadline = None
            if kind == 1:
                deadline = 0.0001          # doomed: expires at submit
            elif kind == 2:
                deadline = 2.0             # tight: may expire queued
            if poison and kind == 3:
                row = np.full(3, 1e9)      # blows up the forward
            if kind == 4:
                # Wrong width: rejected synchronously, alone.
                try:
                    batcher.submit(np.zeros(7))
                except ValueError:
                    with futures_lock:
                        rejected[0] += 1
                continue
            try:
                future = batcher.submit(row, priority=int(rng.integers(3)),
                                        deadline_ms=deadline)
            except Exception:
                continue               # ShuttingDown during close: raced
            with futures_lock:
                futures.append(future)

    threads = [threading.Thread(target=client, args=(k,)) for k in range(4)]
    for thread in threads:
        thread.start()
    time.sleep(0.05)
    # Close in the middle of the submission storm: late submits race the
    # shutdown, queued requests are drained or shed — the law must hold
    # either way.
    closer = threading.Thread(target=lambda: batcher.close(drain=close_drain))
    closer.start()
    for thread in threads:
        thread.join()
    closer.join()
    for future in futures:
        try:
            future.result(timeout=30)
        except Exception:
            pass                       # the *kind* of failure is counted
    stats = batcher.stats()
    stats["_rejected_seen"] = rejected[0]
    return stats


class TestConservationUnderChaos:
    def test_concurrent_submit_expiry_and_drain_close(self, num_workers):
        config = BatchingConfig(max_batch_size=8, max_latency_ms=1.0,
                                cache_size=0, num_workers=num_workers)
        stats = run_chaos(config, close_drain=True)
        assert conserved(stats), stats
        assert stats["expired"] > 0          # the doomed deadlines fired
        assert stats["served"] > 0
        assert stats["rejected"] == stats["_rejected_seen"]

    def test_abrupt_close_sheds_instead_of_hanging(self, num_workers):
        config = BatchingConfig(max_batch_size=8, max_latency_ms=1.0,
                                cache_size=0, num_workers=num_workers)
        stats = run_chaos(config, close_drain=False)
        assert conserved(stats), stats

    def test_forward_errors_land_in_their_bucket(self, num_workers):
        config = BatchingConfig(max_batch_size=4, max_latency_ms=1.0,
                                cache_size=0, num_workers=num_workers)
        stats = run_chaos(config, close_drain=True, poison=True)
        assert conserved(stats), stats
        assert stats["errors"] > 0

    def test_cache_hits_and_misses_partition_lookups(self, num_workers):
        """With the cache on and no deadlines, every single-row submit is
        exactly one lookup: hits + misses == requests — and hits are
        served without touching the conservation law."""
        config = BatchingConfig(max_batch_size=8, max_latency_ms=1.0,
                                cache_size=256, num_workers=num_workers)
        with MicroBatcher(chaotic_predict, config) as batcher:
            rng = np.random.default_rng(0)
            distinct = rng.normal(size=(10, 3))
            # Round one populates the cache (all misses)...
            for future in [batcher.submit(row) for row in distinct]:
                future.result(timeout=30)
            # ...and every replay afterwards must hit it.
            futures = [batcher.submit(distinct[i % 10]) for i in range(190)]
            for future in futures:
                future.result(timeout=30)
            stats = batcher.stats()
        assert conserved(stats), stats
        assert stats["cache_hits"] + stats["cache_misses"] \
            == stats["requests"] == 200
        assert stats["cache_hits"] == 190
        assert stats["served"] == 200
